//! Deterministic metric registry keyed on logical time.
//!
//! The health plane extends the trace discipline (PR 5) from per-execution
//! traces to service-lifetime telemetry: every metric is keyed on *logical*
//! time only — epoch, round, party — never wall clocks, so a registry built
//! under `StepRunner` and one built under `ParRunner` at any thread count
//! are byte-identical. Three metric kinds cover the beacon's health story:
//!
//! * **counters** — monotone `u64` sums (merge = addition);
//! * **gauges** — last-writer-wins by [`LogicalTime`]; the merge is a
//!   semilattice join (max by `(time, value)`), so it is associative,
//!   commutative, and idempotent regardless of shard arrival order;
//! * **histograms** — log2-bucketed `u64` distributions (merge =
//!   componentwise addition).
//!
//! All three merges are associative and commutative, so sharded executors
//! may combine partial registries in any grouping and arrive at the same
//! state — the property tests in the workspace root assert exactly this.
//!
//! # Examples
//!
//! ```
//! use dprbg_metrics::{LogicalTime, Registry};
//!
//! let mut r = Registry::new();
//! r.counter_add("coins_served_total", &[("consumer", "1")], 3);
//! r.gauge_set("reservoir_level", &[], LogicalTime::new(7, 0, 0), 12);
//! r.histogram_observe("epoch_rounds", &[], 9);
//! let bytes = r.to_bytes();
//! assert_eq!(Registry::from_bytes(&bytes).unwrap(), r);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A point in protocol-logical time: `(epoch, round, party)`, ordered
/// lexicographically. Party `0` denotes service-wide (no single party).
///
/// This is the only notion of "when" the health plane knows — there is no
/// wall clock anywhere in the registry, upholding the determinism lint.
// lint: snapshot-abi(v2, b6c85cbb6916d2db)
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LogicalTime {
    /// Beacon epoch (service-lifetime monotone).
    pub epoch: u64,
    /// Protocol round within the epoch (0 when not round-scoped).
    pub round: u64,
    /// 1-based party id, or 0 for service-wide observations.
    pub party: u32,
}

impl LogicalTime {
    /// Construct a logical timestamp.
    pub fn new(epoch: u64, round: u64, party: u32) -> Self {
        LogicalTime { epoch, round, party }
    }

    /// Service-wide timestamp at the start of `epoch`.
    pub fn at_epoch(epoch: u64) -> Self {
        LogicalTime { epoch, round: 0, party: 0 }
    }
}

/// A metric's identity: its name plus a canonically sorted label set.
///
/// Labels are sorted by `(key, value)` at construction, so two ids built
/// from the same labels in different orders compare (and serialize) equal.
// lint: snapshot-abi(v2, 7356aed71bc7f9a7)
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MetricId {
    pub(crate) name: String,
    pub(crate) labels: Vec<(String, String)>,
}

impl MetricId {
    /// Build an id from a name and unordered labels.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> Self {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricId { name: name.to_string(), labels }
    }

    /// The metric name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The canonically sorted `(key, value)` label pairs.
    pub fn labels(&self) -> &[(String, String)] {
        &self.labels
    }
}

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i >= 1`
/// holds values in `[2^(i-1), 2^i - 1]`, up to `i = 64` for `u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucketed `u64` histogram with exact count and sum.
///
/// Merging is componentwise addition, hence associative and commutative
/// with the zero histogram as identity.
// lint: snapshot-abi(v2, bd9a272081925c91)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Histogram {
    pub(crate) buckets: [u64; HISTOGRAM_BUCKETS],
    pub(crate) count: u64,
    pub(crate) sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum: 0 }
    }
}

impl Histogram {
    /// The empty histogram (merge identity).
    pub fn new() -> Self {
        Histogram::default()
    }

    /// The bucket index a value lands in: 0 for 0, else `64 - lz(v)`.
    pub fn bucket_index(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Occupancy of bucket `i` (panics if `i >= HISTOGRAM_BUCKETS`).
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// The non-empty buckets as `(index, count)` pairs, ascending.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (usize, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c != 0)
            .map(|(i, &c)| (i, c))
    }

    /// Componentwise addition (associative, commutative, zero-identity).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += *b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }
}

/// A metric's current state: one of the three supported kinds.
// lint: snapshot-abi(v2, f2e08e3f55ce65e4)
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MetricValue {
    /// Monotone sum; merge is addition.
    Counter(u64),
    /// Last-writer-wins by logical time; merge is max by `(at, value)`.
    Gauge {
        /// Logical time of the winning write.
        at: LogicalTime,
        /// The value written at `at`.
        value: u64,
    },
    /// Log2-bucketed distribution; merge is componentwise addition.
    /// Boxed: a histogram is ~40× the size of the other variants, and
    /// most registry entries are counters or gauges.
    Histogram(Box<Histogram>),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge { .. } => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// Why a serialized registry blob failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryDecodeError {
    /// The blob ended before the declared content did.
    Truncated,
    /// A field held a value the format does not allow.
    Malformed(&'static str),
}

impl fmt::Display for RegistryDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryDecodeError::Truncated => write!(f, "registry blob truncated"),
            RegistryDecodeError::Malformed(what) => {
                write!(f, "registry blob malformed: {what}")
            }
        }
    }
}

impl std::error::Error for RegistryDecodeError {}

/// A deterministic registry of named metrics.
///
/// Metrics live in a `BTreeMap` keyed by [`MetricId`], so iteration and
/// serialization order are canonical — byte-identical registries are equal
/// registries and vice versa.
// lint: snapshot-abi(v2, 92818d9ef4ae8fec)
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Registry {
    pub(crate) metrics: BTreeMap<MetricId, MetricValue>,
}

impl Registry {
    /// The empty registry (merge identity).
    pub fn new() -> Self {
        Registry::default()
    }

    /// Number of distinct metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the registry holds no metrics.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Iterate metrics in canonical (id) order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricId, &MetricValue)> {
        self.metrics.iter()
    }

    /// Add `delta` to a counter, creating it at zero if absent.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a non-counter kind.
    pub fn counter_add(&mut self, name: &str, labels: &[(&str, &str)], delta: u64) {
        let id = MetricId::new(name, labels);
        match self
            .metrics
            .entry(id)
            .or_insert(MetricValue::Counter(0))
        {
            MetricValue::Counter(v) => *v += delta,
            other => panic!(
                "metric `{name}` recorded as counter but registered as {}",
                other.kind()
            ),
        }
    }

    /// Write a gauge observation at logical time `at`.
    ///
    /// The stored value is the semilattice join: a write only lands if its
    /// `(at, value)` pair exceeds the current one, which makes replays and
    /// shard merges order-independent.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a non-gauge kind.
    pub fn gauge_set(&mut self, name: &str, labels: &[(&str, &str)], at: LogicalTime, value: u64) {
        let id = MetricId::new(name, labels);
        match self
            .metrics
            .entry(id)
            .or_insert(MetricValue::Gauge { at, value })
        {
            MetricValue::Gauge { at: cur_at, value: cur } => {
                if (at, value) > (*cur_at, *cur) {
                    *cur_at = at;
                    *cur = value;
                }
            }
            other => panic!(
                "metric `{name}` recorded as gauge but registered as {}",
                other.kind()
            ),
        }
    }

    /// Record one histogram observation.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a non-histogram kind.
    pub fn histogram_observe(&mut self, name: &str, labels: &[(&str, &str)], value: u64) {
        let id = MetricId::new(name, labels);
        match self
            .metrics
            .entry(id)
            .or_insert(MetricValue::Histogram(Box::new(Histogram::new())))
        {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!(
                "metric `{name}` recorded as histogram but registered as {}",
                other.kind()
            ),
        }
    }

    /// A counter's current value (0 if absent).
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a non-counter kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.get(&MetricId::new(name, labels)) {
            None => 0,
            Some(MetricValue::Counter(v)) => *v,
            Some(other) => panic!(
                "metric `{name}` read as counter but registered as {}",
                other.kind()
            ),
        }
    }

    /// A gauge's current `(at, value)` pair, if the metric exists.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a non-gauge kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Option<(LogicalTime, u64)> {
        match self.metrics.get(&MetricId::new(name, labels)) {
            None => None,
            Some(MetricValue::Gauge { at, value }) => Some((*at, *value)),
            Some(other) => panic!(
                "metric `{name}` read as gauge but registered as {}",
                other.kind()
            ),
        }
    }

    /// A histogram's current state, if the metric exists.
    ///
    /// # Panics
    ///
    /// Panics if the metric exists with a non-histogram kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.metrics.get(&MetricId::new(name, labels)) {
            None => None,
            Some(MetricValue::Histogram(h)) => Some(h),
            Some(other) => panic!(
                "metric `{name}` read as histogram but registered as {}",
                other.kind()
            ),
        }
    }

    /// Merge another registry into this one, kind by kind.
    ///
    /// Each kind's merge is associative and commutative (counters and
    /// histograms add, gauges join by `(at, value)`), so sharded partial
    /// registries combine to the same state in any grouping.
    ///
    /// # Panics
    ///
    /// Panics if the same metric id carries different kinds — that is a
    /// programming error, in the spirit of [`crate::CostReport::merge`].
    pub fn merge(&mut self, other: &Registry) {
        for (id, theirs) in &other.metrics {
            match self.metrics.entry(id.clone()) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(theirs.clone());
                }
                std::collections::btree_map::Entry::Occupied(mut slot) => {
                    match (slot.get_mut(), theirs) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += *b,
                        (
                            MetricValue::Gauge { at: a_at, value: a },
                            MetricValue::Gauge { at: b_at, value: b },
                        ) => {
                            if (*b_at, *b) > (*a_at, *a) {
                                *a_at = *b_at;
                                *a = *b;
                            }
                        }
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                        (mine, theirs) => panic!(
                            "cannot merge metric `{}`: {} vs {}",
                            id.name(),
                            mine.kind(),
                            theirs.kind()
                        ),
                    }
                }
            }
        }
    }

    pub(crate) fn insert(
        &mut self,
        id: MetricId,
        value: MetricValue,
    ) -> Result<(), RegistryDecodeError> {
        // Canonical order doubles as a duplicate check: every insert must
        // strictly follow the current maximum id.
        if let Some((last, _)) = self.metrics.iter().next_back() {
            if *last >= id {
                return Err(RegistryDecodeError::Malformed("metric order"));
            }
        }
        self.metrics.insert(id, value);
        Ok(())
    }

    /// Serialize to the canonical little-endian byte form.
    ///
    /// Equal registries produce equal bytes and vice versa; the beacon
    /// snapshot embeds this blob verbatim.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        put_u32(&mut out, self.metrics.len() as u32);
        for (id, value) in &self.metrics {
            put_str(&mut out, &id.name);
            put_u32(&mut out, id.labels.len() as u32);
            for (k, v) in &id.labels {
                put_str(&mut out, k);
                put_str(&mut out, v);
            }
            match value {
                MetricValue::Counter(v) => {
                    out.push(0);
                    put_u64(&mut out, *v);
                }
                MetricValue::Gauge { at, value } => {
                    out.push(1);
                    put_u64(&mut out, at.epoch);
                    put_u64(&mut out, at.round);
                    put_u32(&mut out, at.party);
                    put_u64(&mut out, *value);
                }
                MetricValue::Histogram(h) => {
                    out.push(2);
                    put_u64(&mut out, h.count);
                    put_u64(&mut out, h.sum);
                    let nonzero: Vec<(usize, u64)> = h.nonzero_buckets().collect();
                    put_u32(&mut out, nonzero.len() as u32);
                    for (i, c) in nonzero {
                        out.push(i as u8);
                        put_u64(&mut out, c);
                    }
                }
            }
        }
        out
    }

    /// Decode a blob produced by [`Registry::to_bytes`]. Total: every
    /// malformed input is an error, never a panic, and trailing bytes are
    /// rejected.
    pub fn from_bytes(bytes: &[u8]) -> Result<Registry, RegistryDecodeError> {
        let mut cur = Cursor { bytes, pos: 0 };
        let count = cur.u32()?;
        let mut reg = Registry::new();
        for _ in 0..count {
            let name = cur.string()?;
            let n_labels = cur.u32()?;
            let mut labels = Vec::new();
            for _ in 0..n_labels {
                let k = cur.string()?;
                let v = cur.string()?;
                labels.push((k, v));
            }
            if labels.windows(2).any(|w| w[0] > w[1]) {
                return Err(RegistryDecodeError::Malformed("label order"));
            }
            let value = match cur.u8()? {
                0 => MetricValue::Counter(cur.u64()?),
                1 => {
                    let epoch = cur.u64()?;
                    let round = cur.u64()?;
                    let party = cur.u32()?;
                    let value = cur.u64()?;
                    MetricValue::Gauge { at: LogicalTime { epoch, round, party }, value }
                }
                2 => {
                    let count = cur.u64()?;
                    let sum = cur.u64()?;
                    let nonzero = cur.u32()?;
                    let mut h = Histogram::new();
                    let mut total = 0u64;
                    let mut last: Option<u8> = None;
                    for _ in 0..nonzero {
                        let i = cur.u8()?;
                        if usize::from(i) >= HISTOGRAM_BUCKETS {
                            return Err(RegistryDecodeError::Malformed("bucket index"));
                        }
                        if last.is_some_and(|l| l >= i) {
                            return Err(RegistryDecodeError::Malformed("bucket order"));
                        }
                        last = Some(i);
                        let c = cur.u64()?;
                        if c == 0 {
                            return Err(RegistryDecodeError::Malformed("empty bucket"));
                        }
                        h.buckets[usize::from(i)] = c;
                        total = total
                            .checked_add(c)
                            .ok_or(RegistryDecodeError::Malformed("bucket overflow"))?;
                    }
                    if total != count {
                        return Err(RegistryDecodeError::Malformed("histogram count"));
                    }
                    h.count = count;
                    h.sum = sum;
                    MetricValue::Histogram(Box::new(h))
                }
                _ => return Err(RegistryDecodeError::Malformed("metric kind")),
            };
            reg.insert(MetricId { name, labels }, value)?;
        }
        if cur.pos != bytes.len() {
            return Err(RegistryDecodeError::Malformed("trailing bytes"));
        }
        Ok(reg)
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Cursor<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], RegistryDecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(RegistryDecodeError::Truncated)?;
        let s = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, RegistryDecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, RegistryDecodeError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, RegistryDecodeError> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }

    fn string(&mut self) -> Result<String, RegistryDecodeError> {
        let len = self.u32()? as usize;
        let b = self.take(len)?;
        String::from_utf8(b.to_vec())
            .map_err(|_| RegistryDecodeError::Malformed("utf-8 string"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counter_add("epochs_total", &[("outcome", "committed")], 5);
        r.counter_add("epochs_total", &[("outcome", "skipped")], 2);
        r.gauge_set("reservoir_level", &[], LogicalTime::new(3, 0, 0), 9);
        r.histogram_observe("epoch_rounds", &[], 0);
        r.histogram_observe("epoch_rounds", &[], 1);
        r.histogram_observe("epoch_rounds", &[], 7);
        r.histogram_observe("epoch_rounds", &[], 1024);
        r
    }

    #[test]
    fn bucket_index_is_log2() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        // Bucket i >= 1 holds [2^(i-1), 2^i - 1].
        for i in 1..64 {
            assert_eq!(Histogram::bucket_index(1u64 << (i - 1)), i);
            assert_eq!(Histogram::bucket_index((1u64 << i) - 1), i);
        }
    }

    #[test]
    fn label_order_does_not_matter() {
        let a = MetricId::new("m", &[("a", "1"), ("b", "2")]);
        let b = MetricId::new("m", &[("b", "2"), ("a", "1")]);
        assert_eq!(a, b);
    }

    #[test]
    fn gauge_join_ignores_stale_writes() {
        let mut r = Registry::new();
        r.gauge_set("g", &[], LogicalTime::new(5, 2, 0), 10);
        r.gauge_set("g", &[], LogicalTime::new(4, 9, 3), 99);
        assert_eq!(r.gauge("g", &[]), Some((LogicalTime::new(5, 2, 0), 10)));
        r.gauge_set("g", &[], LogicalTime::new(5, 3, 0), 7);
        assert_eq!(r.gauge("g", &[]), Some((LogicalTime::new(5, 3, 0), 7)));
    }

    #[test]
    fn merge_combines_all_kinds() {
        let mut a = sample();
        let mut b = Registry::new();
        b.counter_add("epochs_total", &[("outcome", "committed")], 3);
        b.gauge_set("reservoir_level", &[], LogicalTime::new(4, 0, 0), 2);
        b.histogram_observe("epoch_rounds", &[], 7);
        b.counter_add("rollbacks_total", &[], 1);
        a.merge(&b);
        assert_eq!(a.counter("epochs_total", &[("outcome", "committed")]), 8);
        assert_eq!(a.counter("rollbacks_total", &[]), 1);
        assert_eq!(a.gauge("reservoir_level", &[]), Some((LogicalTime::new(4, 0, 0), 2)));
        let h = a.histogram("epoch_rounds", &[]).unwrap();
        assert_eq!(h.count(), 5);
        assert_eq!(h.bucket(Histogram::bucket_index(7)), 2);
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = sample();
        let before = a.clone();
        a.merge(&Registry::new());
        assert_eq!(a, before);
        let mut e = Registry::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    #[should_panic(expected = "cannot merge metric")]
    fn merge_rejects_kind_mismatch() {
        let mut a = Registry::new();
        a.counter_add("m", &[], 1);
        let mut b = Registry::new();
        b.histogram_observe("m", &[], 1);
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "registered as counter")]
    fn recording_rejects_kind_mismatch() {
        let mut a = Registry::new();
        a.counter_add("m", &[], 1);
        a.gauge_set("m", &[], LogicalTime::default(), 1);
    }

    #[test]
    fn bytes_round_trip() {
        let r = sample();
        let bytes = r.to_bytes();
        let back = Registry::from_bytes(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn empty_round_trip() {
        let bytes = Registry::new().to_bytes();
        assert_eq!(Registry::from_bytes(&bytes).unwrap(), Registry::new());
    }

    #[test]
    fn every_truncation_is_an_error_never_a_panic() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                Registry::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} decoded"
            );
        }
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            Registry::from_bytes(&bytes),
            Err(RegistryDecodeError::Malformed("trailing bytes"))
        );
    }

    #[test]
    fn unsorted_metrics_are_rejected() {
        // Two single-metric registries concatenated out of order.
        let mut a = Registry::new();
        a.counter_add("zzz", &[], 1);
        let mut b = Registry::new();
        b.counter_add("aaa", &[], 1);
        let mut bytes = vec![2, 0, 0, 0];
        bytes.extend_from_slice(&a.to_bytes()[4..]);
        bytes.extend_from_slice(&b.to_bytes()[4..]);
        assert_eq!(
            Registry::from_bytes(&bytes),
            Err(RegistryDecodeError::Malformed("metric order"))
        );
    }

    #[test]
    fn histogram_count_mismatch_is_rejected() {
        let mut r = Registry::new();
        r.histogram_observe("h", &[], 5);
        let mut bytes = r.to_bytes();
        // The histogram `count` field sits right after name/labels/tag:
        // 4 + 1 + 4 + 1 bytes in, for a single unlabeled metric "h".
        let count_at = 4 + (4 + 1) + 4 + 1;
        bytes[count_at] = 42;
        assert_eq!(
            Registry::from_bytes(&bytes),
            Err(RegistryDecodeError::Malformed("histogram count"))
        );
    }
}
