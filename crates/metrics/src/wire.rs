//! Wire-size accounting.
//!
//! The paper counts communication in *bits* of payload (e.g. Lemma 2: "2n
//! messages, each of size k, for a total of 2nk bits"). Messages in this
//! workspace are typed in-memory values, so instead of serializing we compute
//! each message's wire size analytically through [`WireSize`]: a field
//! element of GF(2^k) is ⌈k/8⌉ bytes, a vector is the sum of its elements,
//! and so on. The simulator charges [`crate::comm`] with these figures.

/// Number of bytes a value would occupy on the wire.
///
/// Implementations should mirror a minimal natural encoding (no framing or
/// type tags), matching the paper's payload-bit counting.
pub trait WireSize {
    /// The encoded size of `self` in bytes.
    fn wire_bytes(&self) -> usize;
}

impl WireSize for () {
    fn wire_bytes(&self) -> usize {
        0
    }
}

impl WireSize for bool {
    fn wire_bytes(&self) -> usize {
        1
    }
}

macro_rules! int_wire {
    ($($t:ty),*) => {$(
        impl WireSize for $t {
            fn wire_bytes(&self) -> usize {
                std::mem::size_of::<$t>()
            }
        }
    )*};
}
int_wire!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: WireSize> WireSize for Vec<T> {
    fn wire_bytes(&self) -> usize {
        self.iter().map(WireSize::wire_bytes).sum()
    }
}

impl<T: WireSize> WireSize for [T] {
    fn wire_bytes(&self) -> usize {
        self.iter().map(WireSize::wire_bytes).sum()
    }
}

impl<T: WireSize> WireSize for Option<T> {
    fn wire_bytes(&self) -> usize {
        1 + self.as_ref().map_or(0, WireSize::wire_bytes)
    }
}

impl<T: WireSize, U: WireSize> WireSize for (T, U) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes()
    }
}

impl<T: WireSize, U: WireSize, V: WireSize> WireSize for (T, U, V) {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes() + self.1.wire_bytes() + self.2.wire_bytes()
    }
}

impl<T: WireSize + ?Sized> WireSize for &T {
    fn wire_bytes(&self) -> usize {
        (**self).wire_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives() {
        assert_eq!(().wire_bytes(), 0);
        assert_eq!(true.wire_bytes(), 1);
        assert_eq!(0u8.wire_bytes(), 1);
        assert_eq!(0u64.wire_bytes(), 8);
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u32, 2, 3].wire_bytes(), 12);
        assert_eq!(Some(7u16).wire_bytes(), 3);
        assert_eq!(None::<u16>.wire_bytes(), 1);
        assert_eq!((1u8, 2u32).wire_bytes(), 5);
        let s: &[u8] = &[1, 2, 3];
        assert_eq!(s.wire_bytes(), 3);
    }
}
