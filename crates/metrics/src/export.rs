//! Registry exporters: JSON lines, Prometheus-style exposition, dashboard.
//!
//! All three render from the registry's canonical iteration order, so the
//! exports are as deterministic as the registry itself. The JSON-lines
//! format is the machine interchange form and round-trips losslessly
//! through [`from_json_lines`]; the exposition and dashboard forms are
//! one-way renderings for scrapers and humans.

use std::fmt;

use crate::registry::{Histogram, LogicalTime, MetricId, MetricValue, Registry};
use crate::report::Table;

/// Why a JSON-lines export failed to parse back into a [`Registry`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExportParseError {
    /// 1-based line the error was found on.
    pub line: usize,
    /// What was wrong with it.
    pub what: &'static str,
}

impl fmt::Display for ExportParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "health export line {}: {}", self.line, self.what)
    }
}

impl std::error::Error for ExportParseError {}

/// Render the registry as JSON lines: one self-contained object per
/// metric, in canonical id order.
///
/// # Examples
///
/// ```
/// use dprbg_metrics::{export, Registry};
/// let mut r = Registry::new();
/// r.counter_add("epochs_total", &[("outcome", "committed")], 5);
/// let lines = export::to_json_lines(&r);
/// assert_eq!(export::from_json_lines(&lines).unwrap(), r);
/// ```
pub fn to_json_lines(reg: &Registry) -> String {
    let mut out = String::new();
    for (id, value) in reg.iter() {
        out.push_str("{\"type\":\"");
        match value {
            MetricValue::Counter(_) => out.push_str("counter"),
            MetricValue::Gauge { .. } => out.push_str("gauge"),
            MetricValue::Histogram(_) => out.push_str("histogram"),
        }
        out.push_str("\",\"name\":");
        json_string(&mut out, id.name());
        out.push_str(",\"labels\":{");
        for (i, (k, v)) in id.labels().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_string(&mut out, k);
            out.push(':');
            json_string(&mut out, v);
        }
        out.push('}');
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!(",\"value\":{v}"));
            }
            MetricValue::Gauge { at, value } => {
                out.push_str(&format!(
                    ",\"epoch\":{},\"round\":{},\"party\":{},\"value\":{}",
                    at.epoch, at.round, at.party, value
                ));
            }
            MetricValue::Histogram(h) => {
                out.push_str(&format!(",\"count\":{},\"sum\":{},\"buckets\":[", h.count(), h.sum()));
                for (i, (idx, c)) in h.nonzero_buckets().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("[{idx},{c}]"));
                }
                out.push(']');
            }
        }
        out.push_str("}\n");
    }
    out
}

/// Parse a JSON-lines export back into a [`Registry`].
///
/// Total and lossless on anything [`to_json_lines`] emits: the decoded
/// registry re-renders to the identical string. Any malformed line is an
/// error, never a panic.
pub fn from_json_lines(s: &str) -> Result<Registry, ExportParseError> {
    let mut reg = Registry::new();
    for (i, line) in s.lines().enumerate() {
        let lineno = i + 1;
        let err = |what| ExportParseError { line: lineno, what };
        if line.trim().is_empty() {
            continue;
        }
        let json = parse_json(line).map_err(err)?;
        let obj = json.as_object().ok_or(err("not an object"))?;
        let kind = get_str(obj, "type").ok_or(err("missing type"))?;
        let name = get_str(obj, "name").ok_or(err("missing name"))?;
        let labels_json = get(obj, "labels")
            .and_then(Json::as_object)
            .ok_or(err("missing labels"))?;
        let mut labels = Vec::new();
        for (k, v) in labels_json {
            let v = v.as_str().ok_or(err("label value not a string"))?;
            labels.push((k.clone(), v.to_string()));
        }
        if labels.windows(2).any(|w| w[0] > w[1]) {
            return Err(err("label order"));
        }
        let value = match kind {
            "counter" => {
                MetricValue::Counter(get_u64(obj, "value").ok_or(err("missing value"))?)
            }
            "gauge" => MetricValue::Gauge {
                at: LogicalTime {
                    epoch: get_u64(obj, "epoch").ok_or(err("missing epoch"))?,
                    round: get_u64(obj, "round").ok_or(err("missing round"))?,
                    party: get_u64(obj, "party")
                        .and_then(|p| u32::try_from(p).ok())
                        .ok_or(err("missing party"))?,
                },
                value: get_u64(obj, "value").ok_or(err("missing value"))?,
            },
            "histogram" => {
                let count = get_u64(obj, "count").ok_or(err("missing count"))?;
                let sum = get_u64(obj, "sum").ok_or(err("missing sum"))?;
                let buckets = get(obj, "buckets")
                    .and_then(Json::as_array)
                    .ok_or(err("missing buckets"))?;
                let mut h = Histogram::new();
                let mut total = 0u64;
                let mut last: Option<usize> = None;
                for b in buckets {
                    let pair = b.as_array().ok_or(err("bucket not a pair"))?;
                    if pair.len() != 2 {
                        return Err(err("bucket not a pair"));
                    }
                    let idx = pair[0]
                        .as_u64()
                        .and_then(|i| usize::try_from(i).ok())
                        .filter(|&i| i < crate::registry::HISTOGRAM_BUCKETS)
                        .ok_or(err("bucket index"))?;
                    if last.is_some_and(|l| l >= idx) {
                        return Err(err("bucket order"));
                    }
                    last = Some(idx);
                    let c = pair[1].as_u64().filter(|&c| c > 0).ok_or(err("bucket count"))?;
                    h.buckets[idx] = c;
                    total = total.checked_add(c).ok_or(err("bucket overflow"))?;
                }
                if total != count {
                    return Err(err("histogram count"));
                }
                h.count = count;
                h.sum = sum;
                MetricValue::Histogram(Box::new(h))
            }
            _ => return Err(err("unknown metric type")),
        };
        reg.insert(MetricId { name: name.to_string(), labels }, value)
            .map_err(|_| err("metric order"))?;
    }
    Ok(reg)
}

/// Render the registry in Prometheus plain-text exposition style, with
/// logical-time labels on gauges and cumulative `le` buckets on
/// histograms (`le` bounds are the log2 bucket upper edges).
pub fn to_prometheus(reg: &Registry) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for (id, value) in reg.iter() {
        if last_name != Some(id.name()) {
            out.push_str(&format!("# TYPE {} {}\n", id.name(), match value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge { .. } => "gauge",
                MetricValue::Histogram(_) => "histogram",
            }));
            last_name = Some(id.name());
        }
        match value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{}{} {v}\n", id.name(), label_set(id, &[])));
            }
            MetricValue::Gauge { at, value } => {
                let time = [
                    ("epoch".to_string(), at.epoch.to_string()),
                    ("round".to_string(), at.round.to_string()),
                    ("party".to_string(), at.party.to_string()),
                ];
                out.push_str(&format!("{}{} {value}\n", id.name(), label_set(id, &time)));
            }
            MetricValue::Histogram(h) => {
                let mut cumulative = 0u64;
                for (idx, c) in h.nonzero_buckets() {
                    cumulative += c;
                    // Bucket upper edge: 0, 2^idx - 1, or u64::MAX at the top.
                    let le = match idx {
                        0 => 0,
                        64 => u64::MAX,
                        _ => (1u64 << idx) - 1,
                    };
                    let le = [("le".to_string(), le.to_string())];
                    out.push_str(&format!(
                        "{}_bucket{} {cumulative}\n",
                        id.name(),
                        label_set(id, &le)
                    ));
                }
                let inf = [("le".to_string(), "+Inf".to_string())];
                out.push_str(&format!(
                    "{}_bucket{} {}\n",
                    id.name(),
                    label_set(id, &inf),
                    h.count()
                ));
                out.push_str(&format!("{}_sum{} {}\n", id.name(), label_set(id, &[]), h.sum()));
                out.push_str(&format!(
                    "{}_count{} {}\n",
                    id.name(),
                    label_set(id, &[]),
                    h.count()
                ));
            }
        }
    }
    out
}

/// Render the registry as a human dashboard [`Table`].
///
/// One row per metric: its kind, headline value, and (for gauges) the
/// logical time of the last write.
pub fn dashboard(reg: &Registry, title: &str) -> Table {
    let mut t = Table::new(title, &["kind", "value", "logical time"]);
    for (id, value) in reg.iter() {
        let label = format!("{}{}", id.name(), label_set(id, &[]));
        match value {
            MetricValue::Counter(v) => {
                t.row(&label, &["counter".into(), v.to_string(), "-".into()]);
            }
            MetricValue::Gauge { at, value } => {
                t.row(&label, &[
                    "gauge".into(),
                    value.to_string(),
                    format!("e{} r{} p{}", at.epoch, at.round, at.party),
                ]);
            }
            MetricValue::Histogram(h) => {
                let mean = if h.count() == 0 { 0 } else { h.sum() / h.count() };
                t.row(&label, &[
                    "histogram".into(),
                    format!("n={} sum={} mean~{}", h.count(), h.sum(), mean),
                    "-".into(),
                ]);
            }
        }
    }
    t
}

/// `{k="v",...}` with extra pairs appended after the id's own labels;
/// empty string when there are no labels at all.
fn label_set(id: &MetricId, extra: &[(String, String)]) -> String {
    if id.labels().is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in id.labels().iter().chain(extra.iter()).enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("{k}=\"{v}\""));
    }
    out.push('}');
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough for the export's own output shape
// (objects, arrays, strings, unsigned integers), total on garbage.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Json {
    U64(u64),
    Str(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(o) => Some(o),
            _ => None,
        }
    }

    fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(a) => Some(a),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::U64(v) => Some(*v),
            _ => None,
        }
    }
}

fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn get_str<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a str> {
    get(obj, key).and_then(Json::as_str)
}

fn get_u64(obj: &[(String, Json)], key: &str) -> Option<u64> {
    get(obj, key).and_then(Json::as_u64)
}

fn parse_json(s: &str) -> Result<Json, &'static str> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let v = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err("trailing characters");
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\r' | b'\n') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, &'static str> {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&b':') {
                    return Err("expected ':'");
                }
                *pos += 1;
                let value = parse_value(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Object(fields));
                    }
                    _ => return Err("expected ',' or '}'"),
                }
            }
        }
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Array(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Array(items));
                    }
                    _ => return Err("expected ',' or ']'"),
                }
            }
        }
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(c) if c.is_ascii_digit() => {
            let start = *pos;
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
            std::str::from_utf8(&b[start..*pos])
                .ok()
                .and_then(|d| d.parse::<u64>().ok())
                .map(Json::U64)
                .ok_or("number out of range")
        }
        _ => Err("unexpected character"),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, &'static str> {
    if b.get(*pos) != Some(&b'"') {
        return Err("expected string");
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string"),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or("bad \\u escape")?;
                        *pos += 4;
                        out.push(char::from_u32(hex).ok_or("bad \\u escape")?);
                    }
                    _ => return Err("bad escape"),
                }
                *pos += 1;
            }
            Some(_) => {
                // Copy one whole UTF-8 scalar.
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|_| "bad utf-8")?;
                let c = rest.chars().next().ok_or("unterminated string")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counter_add("epochs_total", &[("outcome", "committed")], 5);
        r.counter_add("epochs_total", &[("outcome", "skipped")], 2);
        r.gauge_set("reservoir_level", &[], LogicalTime::new(3, 0, 0), 9);
        r.histogram_observe("epoch_rounds", &[], 0);
        r.histogram_observe("epoch_rounds", &[], 7);
        r.histogram_observe("epoch_rounds", &[], 1024);
        r
    }

    #[test]
    fn json_lines_round_trip_is_lossless() {
        let r = sample();
        let lines = to_json_lines(&r);
        let back = from_json_lines(&lines).unwrap();
        assert_eq!(back, r);
        // Canonical: re-rendering the decoded registry reproduces the
        // exact byte string.
        assert_eq!(to_json_lines(&back), lines);
    }

    #[test]
    fn json_lines_escape_awkward_labels() {
        let mut r = Registry::new();
        r.counter_add("m", &[("quote", "a\"b\\c\nd")], 1);
        let lines = to_json_lines(&r);
        assert_eq!(from_json_lines(&lines).unwrap(), r);
    }

    #[test]
    fn malformed_lines_are_errors_never_panics() {
        for bad in [
            "not json",
            "{\"type\":\"counter\"}",
            "{\"type\":\"blimp\",\"name\":\"m\",\"labels\":{},\"value\":1}",
            "{\"type\":\"counter\",\"name\":\"m\",\"labels\":{},\"value\":-1}",
            "{\"type\":\"histogram\",\"name\":\"m\",\"labels\":{},\"count\":9,\"sum\":0,\"buckets\":[[1,1]]}",
            "{\"type\":\"counter\",\"name\":\"m\",\"labels\":{},\"value\":1}garbage",
        ] {
            assert!(from_json_lines(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn truncated_json_is_an_error() {
        let lines = to_json_lines(&sample());
        let first = lines.lines().next().unwrap();
        for cut in 1..first.len() {
            if first.is_char_boundary(cut) {
                assert!(from_json_lines(&first[..cut]).is_err(), "cut at {cut} parsed");
            }
        }
    }

    #[test]
    fn prometheus_exposition_shape() {
        let s = to_prometheus(&sample());
        assert!(s.contains("# TYPE epochs_total counter"));
        assert!(s.contains("epochs_total{outcome=\"committed\"} 5"));
        assert!(s.contains("# TYPE reservoir_level gauge"));
        assert!(s.contains("reservoir_level{epoch=\"3\",round=\"0\",party=\"0\"} 9"));
        assert!(s.contains("# TYPE epoch_rounds histogram"));
        // Cumulative buckets: one obs at 0, one in (4,7], one in (512,1024].
        assert!(s.contains("epoch_rounds_bucket{le=\"0\"} 1"));
        assert!(s.contains("epoch_rounds_bucket{le=\"7\"} 2"));
        assert!(s.contains("epoch_rounds_bucket{le=\"2047\"} 3"));
        assert!(s.contains("epoch_rounds_bucket{le=\"+Inf\"} 3"));
        assert!(s.contains("epoch_rounds_sum 1031"));
        assert!(s.contains("epoch_rounds_count 3"));
    }

    #[test]
    fn type_header_appears_once_per_name() {
        let s = to_prometheus(&sample());
        assert_eq!(s.matches("# TYPE epochs_total").count(), 1);
    }

    #[test]
    fn dashboard_renders_every_metric() {
        let t = dashboard(&sample(), "beacon health");
        let s = t.render();
        assert!(s.contains("beacon health"));
        assert!(s.contains("epochs_total{outcome=\"committed\"}"));
        assert!(s.contains("reservoir_level"));
        assert!(s.contains("e3 r0 p0"));
        assert!(s.contains("n=3 sum=1031"));
    }
}
