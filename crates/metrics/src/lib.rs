#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Cost-model instrumentation for the `dprbg` workspace.
//!
//! The PODC '96 paper states all of its complexity results in an abstract
//! cost model (Section 2): computation is measured in *field additions*
//! (with a multiplication in GF(2^k) costing `O(k log k)` additions in the
//! specially constructed field, or `O(k^2)` naively), and communication is
//! measured in *messages* and *bits*. This crate provides the counters that
//! let every protocol in the workspace report its cost in exactly those
//! units, so the benchmark harness can regenerate the paper's claims
//! (Lemmas 2, 4, 6; Theorem 2; Corollaries 1–3) as measured tables.
//!
//! Counters are thread-local: in the thread-per-party simulator each party's
//! work accumulates in its own thread, and the runner collects per-party
//! [`CostSnapshot`]s which aggregate into a [`CostReport`].
//!
//! Since PR 10 the crate is also the workspace's *health plane*: a
//! deterministic [`Registry`] of named counters, gauges, and log2-bucketed
//! histograms keyed on logical time only (see [`LogicalTime`]), with
//! associative + commutative merge semantics and canonical byte/JSON/
//! Prometheus/dashboard exports (see [`export`]). The beacon service
//! instruments itself through it; LINTS.md's `registry-determinism` rule
//! keeps wall clocks and iteration nondeterminism out of this crate.
//!
//! # Examples
//!
//! ```
//! use dprbg_metrics::{ops, CostSnapshot};
//!
//! let before = CostSnapshot::capture();
//! ops::count_add(10);
//! ops::count_mul(3);
//! let spent = CostSnapshot::capture().since(&before);
//! assert_eq!(spent.field_adds, 10);
//! assert_eq!(spent.field_muls, 3);
//! ```

mod counters;
pub mod export;
mod registry;
mod report;
mod wire;

pub use counters::{comm, ops, CostSnapshot, OpsGuard};
pub use registry::{
    Histogram, LogicalTime, MetricId, MetricValue, Registry, RegistryDecodeError,
    HISTOGRAM_BUCKETS,
};
pub use report::{CommStats, CostReport, PartyCost, Table, TableRow};
pub use wire::WireSize;
