//! The Coin-Gen agreement graph and Gavril's clique approximation.
//!
//! Coin-Gen steps 4–6 (Fig. 5): each player builds a *directed* graph
//! `G'(V', E')` — "add a directed edge from j to k if F_j ≠ ⊥ and P_k's
//! share β_k is in S_j and satisfies F_j(k) = β_k" — symmetrizes it into
//! `G(V, E)` by keeping mutual edges, and then finds a clique of size at
//! least `n − 2t`:
//!
//! > "Due to the above, there is a clique of size at least n − t in G.
//! > Utilizing the protocol of Gabril ([15], p. 134), a clique can be
//! > found of size at least n − 2t."
//!
//! The approximation: if `G` contains a clique of size `n − t`, its
//! complement has a vertex cover of size ≤ `t`; any **maximal matching**
//! in the complement has ≤ `t` edges and its endpoint set (size ≤ `2t`)
//! covers every complement edge, so removing those endpoints leaves an
//! independent set of the complement — a clique of `G` — of size
//! ≥ `n − 2t`. The greedy matching is deterministic, so every party
//! computing on the same graph finds the same clique.

use dprbg_sim::PartyId;

/// A directed graph over parties `1..=n` (Coin-Gen's `G'`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiGraph {
    n: usize,
    adj: Vec<bool>,
}

impl DiGraph {
    /// An edgeless directed graph on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "graph needs at least one vertex");
        DiGraph { n, adj: vec![false; n * n] }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add the directed edge `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: PartyId, to: PartyId) {
        assert!((1..=self.n).contains(&from) && (1..=self.n).contains(&to));
        self.adj[(from - 1) * self.n + (to - 1)] = true;
    }

    /// Whether `from → to` is present.
    pub fn has_edge(&self, from: PartyId, to: PartyId) -> bool {
        (1..=self.n).contains(&from)
            && (1..=self.n).contains(&to)
            && self.adj[(from - 1) * self.n + (to - 1)]
    }

    /// Coin-Gen step 5: the undirected graph with `{j, k} ∈ E` iff both
    /// `j → k` and `k → j` are in `E'`.
    pub fn mutual(&self) -> Graph {
        let mut g = Graph::new(self.n);
        for j in 1..=self.n {
            for k in j + 1..=self.n {
                if self.has_edge(j, k) && self.has_edge(k, j) {
                    g.add_edge(j, k);
                }
            }
        }
        g
    }
}

/// An undirected graph over parties `1..=n` (Coin-Gen's `G`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    adj: Vec<bool>,
}

impl Graph {
    /// An edgeless graph on `n` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "graph needs at least one vertex");
        Graph { n, adj: vec![false; n * n] }
    }

    /// A complete graph on `n` vertices.
    pub fn complete(n: usize) -> Self {
        let mut g = Graph::new(n);
        for a in 1..=n {
            for b in a + 1..=n {
                g.add_edge(a, b);
            }
        }
        g
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Add the undirected edge `{a, b}` (self-loops are ignored).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, a: PartyId, b: PartyId) {
        assert!((1..=self.n).contains(&a) && (1..=self.n).contains(&b));
        if a == b {
            return;
        }
        self.adj[(a - 1) * self.n + (b - 1)] = true;
        self.adj[(b - 1) * self.n + (a - 1)] = true;
    }

    /// Whether `{a, b}` is an edge.
    pub fn has_edge(&self, a: PartyId, b: PartyId) -> bool {
        a != b
            && (1..=self.n).contains(&a)
            && (1..=self.n).contains(&b)
            && self.adj[(a - 1) * self.n + (b - 1)]
    }

    /// Whether `set` induces a clique.
    pub fn is_clique(&self, set: &[PartyId]) -> bool {
        set.iter().enumerate().all(|(i, &a)| {
            set[i + 1..].iter().all(|&b| self.has_edge(a, b))
        })
    }
}

/// Gavril's clique approximation.
///
/// Returns a clique of the graph, deterministically. If the graph contains
/// a clique of size `n − t` for some `t`, the returned clique has size at
/// least `n − 2t` — the guarantee Coin-Gen step 6 relies on (with the
/// `n − t` clique being the honest parties under an honest-dealer
/// majority).
///
/// The result is sorted by party id.
pub fn approx_clique(g: &Graph) -> Vec<PartyId> {
    let n = g.n();
    // Greedy maximal matching on the complement graph: scan pairs in
    // deterministic order, match any still-unmatched complement edge.
    let mut matched = vec![false; n + 1];
    for a in 1..=n {
        if matched[a] {
            continue;
        }
        for b in a + 1..=n {
            if !matched[b] && !g.has_edge(a, b) {
                matched[a] = true;
                matched[b] = true;
                break;
            }
        }
    }
    // Unmatched vertices form an independent set of the complement —
    // i.e. a clique of g (any non-adjacent unmatched pair would have been
    // matched by maximality).
    let clique: Vec<PartyId> = (1..=n).filter(|&v| !matched[v]).collect();
    debug_assert!(g.is_clique(&clique), "Gavril result must be a clique");
    clique
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_rng::prelude::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::{RngExt, SeedableRng};

    #[test]
    fn mutual_requires_both_directions() {
        let mut d = DiGraph::new(3);
        d.add_edge(1, 2);
        d.add_edge(2, 1);
        d.add_edge(1, 3); // one-way only
        let g = d.mutual();
        assert!(g.has_edge(1, 2));
        assert!(!g.has_edge(1, 3));
        assert!(!g.has_edge(2, 3));
    }

    #[test]
    fn complete_graph_returns_everything() {
        let g = Graph::complete(7);
        assert_eq!(approx_clique(&g), vec![1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    fn planted_clique_bound_holds() {
        // n = 7, t = 2: parties 3..=7 form the honest clique (size n−t=5);
        // the approximation must return a clique of size ≥ n−2t = 3.
        let n = 7;
        let t = 2;
        let mut g = Graph::new(n);
        for a in 3..=7 {
            for b in a + 1..=7 {
                g.add_edge(a, b);
            }
        }
        // Faulty parties connect arbitrarily.
        g.add_edge(1, 3);
        g.add_edge(2, 7);
        let c = approx_clique(&g);
        assert!(g.is_clique(&c));
        assert!(c.len() >= n - 2 * t, "clique too small: {c:?}");
    }

    #[test]
    fn empty_graph_yields_singleton_at_most() {
        let g = Graph::new(5);
        let c = approx_clique(&g);
        // Complement is complete: max matching leaves ≤ 1 unmatched.
        assert!(c.len() <= 1);
        assert!(g.is_clique(&c));
    }

    #[test]
    fn deterministic_across_calls() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10;
        let mut g = Graph::new(n);
        for a in 1..=n {
            for b in a + 1..=n {
                if rng.random::<bool>() {
                    g.add_edge(a, b);
                }
            }
        }
        assert_eq!(approx_clique(&g), approx_clique(&g));
    }

    #[test]
    fn self_loops_ignored() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn is_clique_checks_all_pairs() {
        let mut g = Graph::new(4);
        g.add_edge(1, 2);
        g.add_edge(2, 3);
        assert!(g.is_clique(&[1, 2]));
        assert!(!g.is_clique(&[1, 2, 3])); // missing 1-3
        assert!(g.is_clique(&[])); // vacuous
        assert!(g.is_clique(&[4]));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn prop_result_is_always_a_clique(seed: u64, n in 1usize..16) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            for a in 1..=n {
                for b in a + 1..=n {
                    if rng.random::<bool>() {
                        g.add_edge(a, b);
                    }
                }
            }
            let c = approx_clique(&g);
            prop_assert!(g.is_clique(&c));
        }

        #[test]
        fn prop_planted_clique_bound(seed: u64, n in 7usize..20, t_frac in 0usize..3) {
            // Plant a clique of size n − t; random extra edges; check the
            // n − 2t guarantee.
            let t = (n / 6).max(1) + t_frac.min(n / 6);
            prop_assume!(n > 2 * t);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut g = Graph::new(n);
            // Plant on parties t+1..=n.
            for a in t + 1..=n {
                for b in a + 1..=n {
                    g.add_edge(a, b);
                }
            }
            for a in 1..=t {
                for b in 1..=n {
                    if a != b && rng.random::<bool>() {
                        g.add_edge(a, b);
                    }
                }
            }
            let c = approx_clique(&g);
            prop_assert!(g.is_clique(&c));
            prop_assert!(c.len() >= n - 2 * t, "got {} want ≥ {}", c.len(), n - 2 * t);
        }
    }
}
