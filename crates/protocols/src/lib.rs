#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Distributed-computing substrate protocols for `dprbg`.
//!
//! Coin-Gen (Fig. 5 of the paper) leans on three classical components that
//! this crate implements from scratch:
//!
//! - [`GradecastMachine`] — **Grade-Cast** \[14\]: "the three level-outcome
//!   primitive … Each player outputs a value ν and a confidence value
//!   conf ∈ {0, 1, 2} indicating how certain (s)he is that the grade-cast
//!   was received by all players."
//! - [`PhaseKingMachine`] — a **deterministic Byzantine agreement** protocol
//!   ("for simplicity, we shall assume in this presentation that
//!   deterministic BA is carried out", §1.2): the two-round-per-phase
//!   phase-king protocol, correct for `n > 4t` (Coin-Gen's `n ≥ 6t + 1`
//!   comfortably satisfies it).
//! - [`approx_clique`] — **Gavril's approximation** (\[15\] p. 134):
//!   "Utilizing the protocol of Gabril, a clique can be found of size at
//!   least n − 2t" in a graph guaranteed to contain one of size `n − t`.
//!
//! [`reliable_broadcast_machine`] composes the two into the derived
//! primitive the paper motivates ("coins … execute Byzantine agreement,
//! and hence implement a broadcast channel", §4).
//!
//! Every protocol is a sans-IO [`dprbg_sim::RoundMachine`] written
//! against any wire type `M: Embeds<TheirMsg>`, so it runs standalone in
//! tests and embedded in Coin-Gen's composite wire enum, driven by
//! whichever executor the caller picks.

mod ba;
mod broadcast;
mod gradecast;
mod graph;

pub use ba::{BaMsg, PhaseKingMachine};
pub use broadcast::reliable_broadcast_machine;
pub use gradecast::{GcMsg, GradeOutput, GradecastMachine};
pub use graph::{approx_clique, DiGraph, Graph};
