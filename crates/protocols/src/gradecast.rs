//! Grade-Cast (Feldman–Micali [14]).
//!
//! "Grade-Cast is the three level-outcome primitive … [the sender sends]
//! his/her value to the rest of the players. In the next round everybody
//! echoes, and this is followed by another round of echos. Each player
//! outputs a value ν … and a confidence value conf ∈ {0, 1, 2} … A
//! confidence of 2 indicates that all other honest players have seen the
//! value ν." (§4 of the paper.)
//!
//! Guarantees for `n ≥ 3t + 1`:
//!
//! 1. **Honest sender** ⇒ every honest party outputs the sender's value
//!    with confidence 2.
//! 2. **Soft agreement** — if any honest party outputs confidence 2 for
//!    `v`, every honest party outputs `v` with confidence ≥ 1.
//! 3. **No two honest parties output confidence ≥ 1 for different
//!    values.**
//!
//! All `n` instances (one per sender) run in parallel in three rounds —
//! exactly how Coin-Gen step 7 uses them.

use std::marker::PhantomData;

use dprbg_metrics::WireSize;
use dprbg_sim::{Embeds, PartyId, RoundMachine, RoundView, Step};

/// Wire messages of the parallel grade-cast instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GcMsg<V> {
    /// Round 1: instance sender's value.
    Value(V),
    /// Round 2: echo of what was received from `instance`'s sender.
    Echo {
        /// The instance (sender id) being echoed.
        instance: PartyId,
        /// The echoed value.
        value: V,
    },
    /// Round 3: vote that ≥ n−t echoes supported `value` in `instance`.
    Vote {
        /// The instance (sender id) being voted on.
        instance: PartyId,
        /// The supported value.
        value: V,
    },
}

impl<V: WireSize> WireSize for GcMsg<V> {
    fn wire_bytes(&self) -> usize {
        match self {
            GcMsg::Value(v) => v.wire_bytes(),
            // Instance tags are log n bits; charge one byte.
            GcMsg::Echo { value, .. } | GcMsg::Vote { value, .. } => 1 + value.wire_bytes(),
        }
    }
}

/// One party's output for one grade-cast instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GradeOutput<V> {
    /// The received value, if any support materialized.
    pub value: Option<V>,
    /// Confidence ∈ {0, 1, 2}.
    pub confidence: u8,
}

impl<V> GradeOutput<V> {
    fn none() -> Self {
        GradeOutput { value: None, confidence: 0 }
    }
}

/// Count, among `(party, value)` pairs, the support for each distinct
/// value, counting at most one entry per party; return the best value with
/// its count.
fn best_supported<V: Clone + Eq>(entries: &[(PartyId, V)]) -> Option<(V, usize)> {
    let mut tally: Vec<(V, usize)> = Vec::new();
    let mut seen: Vec<PartyId> = Vec::new();
    for (p, v) in entries {
        if seen.contains(p) {
            continue; // a party only gets one voice per instance
        }
        seen.push(*p);
        match tally.iter_mut().find(|(tv, _)| tv == v) {
            Some((_, c)) => *c += 1,
            None => tally.push((v.clone(), 1)),
        }
    }
    tally.into_iter().max_by_key(|(_, c)| *c)
}

/// The `n` parallel grade-cast instances as a sans-IO round machine —
/// party `j` is the sender of instance `j`; the output is this party's
/// `n` [`GradeOutput`]s (index `j − 1` is instance `j`).
///
/// Each round call consumes the previous round's inbox and emits the next
/// round's sends, so no cross-round message storage is needed beyond the
/// phase tag. Exactly 3 rounds (`Continue`s); the `Done` call only tallies
/// votes. Requires `n ≥ 3t + 1` for the guarantees above; the threshold
/// `t` is `⌊(n − 1) / 3⌋`.
pub struct GradecastMachine<M, V> {
    my_value: Option<V>,
    phase: GcPhase,
    _wire: PhantomData<fn() -> M>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GcPhase {
    /// Round 1: senders distribute values.
    Send,
    /// Round 2: echo what each instance's sender said.
    Echo,
    /// Round 3: vote for values with ≥ n − t echo support.
    Vote,
    /// Tally votes into grades.
    Decide,
}

impl<M, V> GradecastMachine<M, V> {
    /// A machine grade-casting `my_value` in this party's own instance
    /// (`None` = originate nothing; the party still echoes and votes for
    /// the other instances).
    pub fn new(my_value: impl Into<Option<V>>) -> Self {
        GradecastMachine { my_value: my_value.into(), phase: GcPhase::Send, _wire: PhantomData }
    }
}

impl<M, V> RoundMachine<M> for GradecastMachine<M, V>
where
    M: Clone + WireSize + Embeds<GcMsg<V>>,
    V: Clone + Eq + WireSize,
{
    type Output = Vec<GradeOutput<V>>;

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output> {
        let n = view.n;
        let t = (n - 1) / 3;
        match self.phase {
            GcPhase::Send => {
                let mut out = view.outbox();
                if let Some(v) = self.my_value.take() {
                    out.send_to_all(M::wrap(GcMsg::Value(v)));
                }
                self.phase = GcPhase::Echo;
                Step::Continue(out)
            }
            GcPhase::Echo => {
                // received[j-1] = what instance j's sender told us.
                let mut received: Vec<Option<V>> = vec![None; n];
                for r in view.inbox.iter() {
                    if let Some(GcMsg::Value(v)) = r.msg.peek() {
                        if received[r.from - 1].is_none() {
                            received[r.from - 1] = Some(v.clone());
                        }
                    }
                }
                let mut out = view.outbox();
                for j in 1..=n {
                    if let Some(v) = &received[j - 1] {
                        out.send_to_all(M::wrap(GcMsg::Echo { instance: j, value: v.clone() }));
                    }
                }
                self.phase = GcPhase::Vote;
                Step::Continue(out)
            }
            GcPhase::Vote => {
                let mut echoes: Vec<Vec<(PartyId, V)>> = vec![Vec::new(); n];
                for r in view.inbox.iter() {
                    if let Some(GcMsg::Echo { instance, value }) = r.msg.peek() {
                        if (1..=n).contains(instance) {
                            echoes[instance - 1].push((r.from, value.clone()));
                        }
                    }
                }
                let mut out = view.outbox();
                for j in 1..=n {
                    if let Some((v, c)) = best_supported(&echoes[j - 1]) {
                        if c >= n - t {
                            out.send_to_all(M::wrap(GcMsg::Vote { instance: j, value: v }));
                        }
                    }
                }
                self.phase = GcPhase::Decide;
                Step::Continue(out)
            }
            GcPhase::Decide => {
                let mut votes: Vec<Vec<(PartyId, V)>> = vec![Vec::new(); n];
                for r in view.inbox.iter() {
                    if let Some(GcMsg::Vote { instance, value }) = r.msg.peek() {
                        if (1..=n).contains(instance) {
                            votes[instance - 1].push((r.from, value.clone()));
                        }
                    }
                }
                Step::Done(
                    (0..n)
                        .map(|idx| match best_supported(&votes[idx]) {
                            Some((v, c)) if c >= n - t => {
                                GradeOutput { value: Some(v), confidence: 2 }
                            }
                            Some((v, c)) if c > t => GradeOutput { value: Some(v), confidence: 1 },
                            _ => GradeOutput::none(),
                        })
                        .collect(),
                )
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.phase {
            GcPhase::Send => "gradecast/send",
            GcPhase::Echo => "gradecast/echo",
            GcPhase::Vote => "gradecast/vote",
            GcPhase::Decide => "gradecast/decide",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, StepRunner};

    type V = u64;
    type M = GcMsg<V>;

    fn honest(value: V) -> BoxedMachine<M, Vec<GradeOutput<V>>> {
        Box::new(GradecastMachine::new(value))
    }

    #[test]
    fn all_honest_full_confidence() {
        let n = 4;
        let fleet: Vec<_> = (1..=n).map(|id| honest(id as u64 * 100)).collect();
        let res = StepRunner::new(n, 1).run(fleet);
        for outputs in res.unwrap_all() {
            for (j, out) in outputs.iter().enumerate() {
                assert_eq!(out.confidence, 2);
                assert_eq!(out.value, Some((j as u64 + 1) * 100));
            }
        }
    }

    #[test]
    fn equivocating_sender_cannot_split_high_confidence() {
        // Parties 1–2 send different values to different parties in round
        // 0 and echo inconsistently; honest parties must never end with
        // confidence >= 1 on different values for instance 1.
        let n = 7;
        let plan = FaultPlan::first_t(n, 2);
        let machines = plan.machines::<M, Vec<GradeOutput<V>>>(
            |_| honest(5),
            |_| {
                Box::new(from_fn(|view: RoundView<'_, M>| match view.round {
                    0 => {
                        // Equivocate: half get 111, half get 222.
                        let mut out = view.outbox();
                        for to in 1..=view.n {
                            let v = if to <= view.n / 2 { 111 } else { 222 };
                            out.send(to, GcMsg::Value(v));
                        }
                        Step::Continue(out)
                    }
                    1 => {
                        // Echo garbage for our own instance, split again.
                        let mut out = view.outbox();
                        for to in 1..=view.n {
                            let v = if to % 2 == 0 { 111 } else { 222 };
                            out.send(to, GcMsg::Echo { instance: 1, value: v });
                        }
                        Step::Continue(out)
                    }
                    2 => Step::Continue(view.outbox()),
                    _ => Step::Done(vec![]),
                }))
            },
        );
        let res = StepRunner::new(n, 2).run(machines);
        let mut graded: Vec<(Option<V>, u8)> = Vec::new();
        for id in plan.honest() {
            let outs = res.outputs[id - 1].as_ref().unwrap();
            graded.push((outs[0].value, outs[0].confidence));
        }
        // Property 3: all confidence >= 1 values agree.
        let confident: Vec<V> = graded
            .iter()
            .filter(|(_, c)| *c >= 1)
            .map(|(v, _)| v.unwrap())
            .collect();
        assert!(
            confident.windows(2).all(|w| w[0] == w[1]),
            "honest parties graded different values: {graded:?}"
        );
    }

    #[test]
    fn confidence_two_implies_all_honest_see_value() {
        // Faulty parties echo/vote selectively; whenever an honest party
        // reaches confidence 2 on an honest instance, everyone honest has
        // confidence >= 1 with the same value.
        let n = 7;
        let plan = FaultPlan::first_t(n, 2);
        let machines = plan.machines::<M, Vec<GradeOutput<V>>>(
            |id| honest(id as u64),
            |_| {
                Box::new(from_fn(|view: RoundView<'_, M>| match view.round {
                    // Silent in rounds 0-1, vote garbage in round 2.
                    0 | 1 => Step::Continue(view.outbox()),
                    2 => {
                        let mut out = view.outbox();
                        for to in 1..=view.n {
                            out.send(to, GcMsg::Vote { instance: 3, value: 999 });
                        }
                        Step::Continue(out)
                    }
                    _ => Step::Done(vec![]),
                }))
            },
        );
        let res = StepRunner::new(n, 3).run(machines);
        for j in plan.honest() {
            // Instance j had an honest sender: everyone must grade (j, 2).
            for id in plan.honest() {
                let outs = res.outputs[id - 1].as_ref().unwrap();
                assert_eq!(outs[j - 1].confidence, 2, "instance {j} at party {id}");
                assert_eq!(outs[j - 1].value, Some(j as u64));
            }
        }
    }

    #[test]
    fn silent_sender_gets_zero_confidence() {
        let n = 4;
        let plan = FaultPlan::explicit(n, vec![2]);
        let machines = plan.machines::<M, Vec<GradeOutput<V>>>(
            |id| honest(id as u64),
            |_| {
                Box::new(from_fn(|view: RoundView<'_, M>| {
                    if view.round < 3 {
                        Step::Continue(view.outbox())
                    } else {
                        Step::Done(vec![])
                    }
                }))
            },
        );
        let res = StepRunner::new(n, 4).run(machines);
        for id in plan.honest() {
            let outs = res.outputs[id - 1].as_ref().unwrap();
            assert_eq!(outs[1].confidence, 0, "silent instance at party {id}");
            assert_eq!(outs[1].value, None);
        }
    }

    #[test]
    fn duplicate_voices_counted_once() {
        let entries = vec![(1, 7u64), (1, 7), (1, 7), (2, 7), (3, 9)];
        let (v, c) = best_supported(&entries).unwrap();
        assert_eq!((v, c), (7, 2));
        assert_eq!(best_supported::<u64>(&[]), None);
    }

    #[test]
    fn takes_exactly_three_rounds() {
        let n = 4;
        let fleet: Vec<_> = (1..=n).map(|id| honest(id as u64)).collect();
        let res = StepRunner::new(n, 5).run(fleet);
        assert_eq!(res.report.comm.rounds, 3);
    }
}
