//! Reliable broadcast from grade-cast + Byzantine agreement.
//!
//! The paper's motivation runs in this direction: "Coins are often used
//! as a source of randomness to execute Byzantine agreement, and hence
//! implement a broadcast channel" (§4). This module closes that loop as
//! a library primitive: once BA is available, a single sender's value can
//! be *reliably broadcast* over point-to-point channels —
//!
//! 1. the sender grade-casts `v`;
//! 2. everyone runs BA with input "my confidence was 2";
//! 3. if BA decides 1, output the grade-cast value (grade-cast property 2
//!    guarantees every honest party holds the same value with confidence
//!    ≥ 1 once any honest party had confidence 2); otherwise output ⊥.
//!
//! Guarantees (`n > 4t`, from the phase-king bound):
//! - **Validity**: an honest sender's value is delivered by all.
//! - **Agreement**: all honest parties deliver the same
//!   `Option<V>` — even under a Byzantine sender.
//!
//! This is how the §3 protocols' "broadcast channel facility" assumption
//! can be discharged in the §4 model, at the cost of one grade-cast and
//! one BA per broadcast.

use dprbg_metrics::WireSize;
use dprbg_sim::{Embeds, MachineExt, PartyId, RoundMachine};

use crate::ba::{BaMsg, PhaseKingMachine};
use crate::gradecast::{GcMsg, GradeOutput, GradecastMachine};

/// Reliable broadcast as a composition of round machines: grade-cast,
/// [`then`](MachineExt::then) BA on "my confidence was 2",
/// [`map`](MachineExt::map)ped to the delivered value. The sequencing is
/// pure combinator plumbing — no transport code.
///
/// All parties construct the machine together in the same round, with
/// `my_value` `Some` only at the `sender`. Takes `3 + 2(t + 1)` rounds
/// (grade-cast + phase-king). The output is the delivered value, `None`
/// meaning "sender disqualified" (identical at every honest party).
pub fn reliable_broadcast_machine<M, V>(
    sender: PartyId,
    my_value: Option<V>,
    t: usize,
) -> impl RoundMachine<M, Output = Option<V>> + Send
where
    M: Clone + WireSize + Embeds<GcMsg<V>> + Embeds<BaMsg>,
    V: Clone + Eq + WireSize + Send + 'static,
{
    GradecastMachine::new(my_value).then(move |graded: Vec<GradeOutput<V>>| {
        let grade = graded[sender - 1].clone();
        let conf2 = grade.confidence == 2;
        PhaseKingMachine::new(conf2, t)
            .map(move |delivered: bool| if delivered { grade.value } else { None })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::{RngExt, SeedableRng};
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, ParRunner, RoundView, Step, StepRunner};

    /// Composite wire type for the broadcast: grade-cast + BA traffic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Wire {
        Gc(GcMsg<u64>),
        Ba(BaMsg),
    }

    impl WireSize for Wire {
        fn wire_bytes(&self) -> usize {
            match self {
                Wire::Gc(m) => m.wire_bytes(),
                Wire::Ba(m) => m.wire_bytes(),
            }
        }
    }

    impl Embeds<GcMsg<u64>> for Wire {
        fn wrap(inner: GcMsg<u64>) -> Self {
            Wire::Gc(inner)
        }
        fn peek(&self) -> Option<&GcMsg<u64>> {
            match self {
                Wire::Gc(m) => Some(m),
                _ => None,
            }
        }
    }

    impl Embeds<BaMsg> for Wire {
        fn wrap(inner: BaMsg) -> Self {
            Wire::Ba(inner)
        }
        fn peek(&self) -> Option<&BaMsg> {
            match self {
                Wire::Ba(m) => Some(m),
                _ => None,
            }
        }
    }

    fn fleet(n: usize, sender: PartyId, value: u64, t: usize) -> Vec<BoxedMachine<Wire, Option<u64>>> {
        (1..=n)
            .map(|id| {
                let v = (id == sender).then_some(value);
                Box::new(reliable_broadcast_machine::<Wire, u64>(sender, v, t))
                    as BoxedMachine<Wire, Option<u64>>
            })
            .collect()
    }

    #[test]
    fn honest_sender_delivers_to_all() {
        let n = 7;
        for out in StepRunner::new(n, 1).run(fleet(n, 3, 0xB40ADCA57, 1)).unwrap_all() {
            assert_eq!(out, Some(0xB40ADCA57));
        }
    }

    #[test]
    fn equivocating_sender_yields_agreement_anyway() {
        let n = 9;
        let t = 2;
        let plan = FaultPlan::explicit(n, vec![1]);
        let deadline = (3 + 2 * (t + 1)) as u64;
        let machines = plan.machines::<Wire, Option<Option<u64>>>(
            |_| {
                Box::new(
                    reliable_broadcast_machine::<Wire, u64>(1, None, t).map(Some),
                )
            },
            |_| {
                Box::new(from_fn(move |view: RoundView<'_, Wire>| match view.round {
                    0 => {
                        // Split round 0, then stay silent.
                        let mut out = view.outbox();
                        for to in 1..=view.n {
                            out.send(
                                to,
                                Wire::Gc(GcMsg::Value(if to % 2 == 0 { 7 } else { 8 })),
                            );
                        }
                        Step::Continue(out)
                    }
                    r if r < deadline => Step::Continue(view.outbox()),
                    _ => Step::Done(None),
                }))
            },
        );
        let res = StepRunner::new(n, 2).run(machines);
        let outs: Vec<Option<u64>> = plan
            .honest()
            .map(|id| res.outputs[id - 1].as_ref().unwrap().unwrap())
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "honest parties disagree: {outs:?}"
        );
    }

    #[test]
    fn executors_agree_on_outputs_and_costs() {
        // The same broadcast fleet on the single-threaded StepRunner and
        // the work-stealing ParRunner: outputs, cost report, and round
        // profile must all be bit-identical.
        let n = 7;
        let t = 1;
        let seed = 0xB0;
        let stepped = StepRunner::new(n, seed).run(fleet(n, 4, 777, t));
        let par = ParRunner::new(n, seed).with_threads(4).run(fleet(n, 4, 777, t));
        assert_eq!(stepped.outputs, par.outputs);
        assert_eq!(stepped.report, par.report);
        assert_eq!(stepped.rounds, par.rounds);
        assert_eq!(stepped.outputs[0], Some(Some(777)));
        // 3 gradecast rounds + 2(t+1) BA rounds.
        assert_eq!(stepped.report.comm.rounds as usize, 3 + 2 * (t + 1));
    }

    #[test]
    fn silent_sender_delivers_bottom_everywhere() {
        let n = 7;
        // Sender 5 never speaks (every party passes None).
        let machines: Vec<BoxedMachine<Wire, Option<u64>>> = (1..=n)
            .map(|_| {
                Box::new(reliable_broadcast_machine::<Wire, u64>(5, None, 1))
                    as BoxedMachine<Wire, Option<u64>>
            })
            .collect();
        for out in StepRunner::new(n, 3).run(machines).unwrap_all() {
            assert_eq!(out, None);
        }
    }

    #[test]
    fn random_fault_sweep_keeps_agreement_and_validity() {
        let mut rng = StdRng::seed_from_u64(0xBC);
        for trial in 0..10u64 {
            let n = 9;
            let sender = rng.random_range(1..=n as u64) as usize;
            let bad = loop {
                let b = rng.random_range(1..=n as u64) as usize;
                if b != sender {
                    break b;
                }
            };
            let plan = FaultPlan::explicit(n, vec![bad]);
            let machines = plan.machines::<Wire, Option<Option<u64>>>(
                |id| {
                    let v = (id == sender).then_some(42 + trial);
                    Box::new(reliable_broadcast_machine::<Wire, u64>(sender, v, 2).map(Some))
                },
                |_| {
                    Box::new(from_fn(move |view: RoundView<'_, Wire>| {
                        // Random byzantine noise for a few rounds.
                        let round = view.round as usize;
                        if round >= 6 {
                            return Step::Done(None);
                        }
                        let mut out = view.outbox();
                        for to in 1..=view.n {
                            if (to + round) % 3 == 0 {
                                out.send(
                                    to,
                                    Wire::Gc(GcMsg::Echo { instance: sender, value: 999 }),
                                );
                            }
                        }
                        Step::Continue(out)
                    }))
                },
            );
            let res = StepRunner::new(n, 700 + trial).run(machines);
            for id in plan.honest() {
                assert_eq!(
                    res.outputs[id - 1].as_ref().unwrap().unwrap(),
                    Some(42 + trial),
                    "trial {trial}: validity at party {id} (sender {sender}, bad {bad})"
                );
            }
        }
    }
}
