//! Reliable broadcast from grade-cast + Byzantine agreement.
//!
//! The paper's motivation runs in this direction: "Coins are often used
//! as a source of randomness to execute Byzantine agreement, and hence
//! implement a broadcast channel" (§4). This module closes that loop as
//! a library primitive: once BA is available, a single sender's value can
//! be *reliably broadcast* over point-to-point channels —
//!
//! 1. the sender grade-casts `v`;
//! 2. everyone runs BA with input "my confidence was 2";
//! 3. if BA decides 1, output the grade-cast value (grade-cast property 2
//!    guarantees every honest party holds the same value with confidence
//!    ≥ 1 once any honest party had confidence 2); otherwise output ⊥.
//!
//! Guarantees (`n > 4t`, from the phase-king bound):
//! - **Validity**: an honest sender's value is delivered by all.
//! - **Agreement**: all honest parties deliver the same
//!   `Option<V>` — even under a Byzantine sender.
//!
//! This is how the §3 protocols' "broadcast channel facility" assumption
//! can be discharged in the §4 model, at the cost of one grade-cast and
//! one BA per broadcast.

use dprbg_metrics::WireSize;
use dprbg_sim::{drive_blocking, Embeds, MachineExt, PartyCtx, PartyId, RoundMachine};

use crate::ba::{BaMsg, PhaseKingMachine};
use crate::gradecast::{GcMsg, GradeOutput, GradecastMachine};

/// Reliable broadcast as a composition of round machines: grade-cast,
/// [`then`](MachineExt::then) BA on "my confidence was 2",
/// [`map`](MachineExt::map)ped to the delivered value. The sequencing is
/// pure combinator plumbing — no transport code.
///
/// `my_value` must be `Some` only at the `sender` (the blocking shim
/// [`reliable_broadcast`] derives this from the ctx id; machine callers
/// decide per party at construction time).
pub fn reliable_broadcast_machine<M, V>(
    sender: PartyId,
    my_value: Option<V>,
    t: usize,
) -> impl RoundMachine<M, Output = Option<V>> + Send
where
    M: Clone + WireSize + Embeds<GcMsg<V>> + Embeds<BaMsg>,
    V: Clone + Eq + WireSize + Send + 'static,
{
    GradecastMachine::new(my_value).then(move |graded: Vec<GradeOutput<V>>| {
        let grade = graded[sender - 1].clone();
        let conf2 = grade.confidence == 2;
        PhaseKingMachine::new(conf2, t)
            .map(move |delivered: bool| if delivered { grade.value } else { None })
    })
}

/// Reliably broadcast `value_if_sender` from `sender` to everyone.
///
/// All parties call this together; only the `sender` passes `Some`.
/// Takes `3 + 2(t + 1)` rounds (grade-cast + phase-king). Returns the
/// delivered value, `None` meaning "sender disqualified" (identical at
/// every honest party). Blocking shim over
/// [`reliable_broadcast_machine`].
pub fn reliable_broadcast<M, V>(
    ctx: &mut PartyCtx<M>,
    sender: PartyId,
    value_if_sender: Option<V>,
    t: usize,
) -> Option<V>
where
    M: Clone + Send + WireSize + Embeds<GcMsg<V>> + Embeds<BaMsg> + 'static,
    V: Clone + Eq + WireSize + Send + 'static,
{
    let mine = if ctx.id() == sender { value_if_sender } else { None };
    drive_blocking(ctx, reliable_broadcast_machine(sender, mine, t))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_sim::{run_network, Behavior, FaultPlan};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::{RngExt, SeedableRng};

    /// Composite wire type for the broadcast: grade-cast + BA traffic.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Wire {
        Gc(GcMsg<u64>),
        Ba(BaMsg),
    }

    impl WireSize for Wire {
        fn wire_bytes(&self) -> usize {
            match self {
                Wire::Gc(m) => m.wire_bytes(),
                Wire::Ba(m) => m.wire_bytes(),
            }
        }
    }

    impl Embeds<GcMsg<u64>> for Wire {
        fn wrap(inner: GcMsg<u64>) -> Self {
            Wire::Gc(inner)
        }
        fn peek(&self) -> Option<&GcMsg<u64>> {
            match self {
                Wire::Gc(m) => Some(m),
                _ => None,
            }
        }
    }

    impl Embeds<BaMsg> for Wire {
        fn wrap(inner: BaMsg) -> Self {
            Wire::Ba(inner)
        }
        fn peek(&self) -> Option<&BaMsg> {
            match self {
                Wire::Ba(m) => Some(m),
                _ => None,
            }
        }
    }

    #[test]
    fn honest_sender_delivers_to_all() {
        let n = 7;
        let t = 1;
        let behaviors: Vec<Behavior<Wire, Option<u64>>> = (1..=n)
            .map(|id| {
                Box::new(move |ctx: &mut PartyCtx<Wire>| {
                    let v = (id == 3).then_some(0xB40ADCA57);
                    reliable_broadcast::<Wire, u64>(ctx, 3, v, t)
                }) as Behavior<_, _>
            })
            .collect();
        for out in run_network(n, 1, behaviors).unwrap_all() {
            assert_eq!(out, Some(0xB40ADCA57));
        }
    }

    #[test]
    fn equivocating_sender_yields_agreement_anyway() {
        let n = 9;
        let t = 2;
        let plan = FaultPlan::explicit(n, vec![1]);
        let behaviors = plan.behaviors::<Wire, Option<Option<u64>>>(
            |_| {
                Box::new(move |ctx| {
                    Some(reliable_broadcast::<Wire, u64>(ctx, 1, None, 2))
                })
            },
            |_| {
                Box::new(|ctx| {
                    let n = ctx.n();
                    // Split round 1, then stay silent.
                    for to in 1..=n {
                        ctx.send(to, Wire::Gc(GcMsg::Value(if to % 2 == 0 { 7 } else { 8 })));
                    }
                    // Burn the remaining gradecast + BA rounds.
                    for _ in 0..(3 + 2 * (2 + 1)) {
                        let _ = ctx.next_round();
                    }
                    None
                })
            },
        );
        let res = run_network(n, 2, behaviors);
        let outs: Vec<Option<u64>> = plan
            .honest()
            .map(|id| res.outputs[id - 1].as_ref().unwrap().unwrap())
            .collect();
        assert!(
            outs.windows(2).all(|w| w[0] == w[1]),
            "honest parties disagree: {outs:?}"
        );
        let _ = t;
    }

    #[test]
    fn machine_form_matches_blocking_shim_across_executors() {
        // The same broadcast, once as blocking behaviors on the threaded
        // runner and once as machines on the single-threaded StepRunner:
        // outputs, cost report, and round profile must all agree.
        use dprbg_sim::{BoxedMachine, StepRunner};
        let n = 7;
        let t = 1;
        let seed = 0xB0;
        let blocking: Vec<Behavior<Wire, Option<u64>>> = (1..=n)
            .map(|id| {
                Box::new(move |ctx: &mut PartyCtx<Wire>| {
                    let v = (id == 4).then_some(777);
                    reliable_broadcast::<Wire, u64>(ctx, 4, v, t)
                }) as Behavior<_, _>
            })
            .collect();
        let machines: Vec<BoxedMachine<Wire, Option<u64>>> = (1..=n)
            .map(|id| {
                let v = (id == 4).then_some(777u64);
                Box::new(reliable_broadcast_machine::<Wire, u64>(4, v, t)) as BoxedMachine<_, _>
            })
            .collect();
        let threaded = run_network(n, seed, blocking);
        let stepped = StepRunner::new(n, seed).run(machines);
        assert_eq!(threaded.outputs, stepped.outputs);
        assert_eq!(threaded.report, stepped.report);
        assert_eq!(threaded.rounds, stepped.rounds);
        assert_eq!(stepped.outputs[0], Some(Some(777)));
        // 3 gradecast rounds + 2(t+1) BA rounds.
        assert_eq!(stepped.report.comm.rounds as usize, 3 + 2 * (t + 1));
    }

    #[test]
    fn silent_sender_delivers_bottom_everywhere() {
        let n = 7;
        let behaviors: Vec<Behavior<Wire, Option<u64>>> = (1..=n)
            .map(|_| {
                Box::new(move |ctx: &mut PartyCtx<Wire>| {
                    // Sender 5 never speaks (passes None).
                    reliable_broadcast::<Wire, u64>(ctx, 5, None, 1)
                }) as Behavior<_, _>
            })
            .collect();
        for out in run_network(n, 3, behaviors).unwrap_all() {
            assert_eq!(out, None);
        }
    }

    #[test]
    fn random_fault_sweep_keeps_agreement_and_validity() {
        let mut rng = StdRng::seed_from_u64(0xBC);
        for trial in 0..10u64 {
            let n = 9;
            let _t = 2;
            let sender = rng.random_range(1..=n);
            let bad = loop {
                let b = rng.random_range(1..=n);
                if b != sender {
                    break b;
                }
            };
            let plan = FaultPlan::explicit(n, vec![bad]);
            let behaviors = plan.behaviors::<Wire, Option<Option<u64>>>(
                |_| {
                    Box::new(move |ctx| {
                        let v = (ctx.id() == sender).then_some(42 + trial);
                        Some(reliable_broadcast::<Wire, u64>(ctx, sender, v, 2))
                    })
                },
                |_| {
                    Box::new(move |ctx| {
                        // Random byzantine noise for a few rounds.
                        for round in 0..6 {
                            let n = ctx.n();
                            for to in 1..=n {
                                if (to + round) % 3 == 0 {
                                    ctx.send(
                                        to,
                                        Wire::Gc(GcMsg::Echo {
                                            instance: sender,
                                            value: 999,
                                        }),
                                    );
                                }
                            }
                            let _ = ctx.next_round();
                        }
                        None
                    })
                },
            );
            let res = run_network(n, 700 + trial, behaviors);
            for id in plan.honest() {
                assert_eq!(
                    res.outputs[id - 1].as_ref().unwrap().unwrap(),
                    Some(42 + trial),
                    "trial {trial}: validity at party {id} (sender {sender}, bad {bad})"
                );
            }
        }
    }
}
