//! Deterministic Byzantine agreement: the phase-king protocol.
//!
//! Coin-Gen step 10 "run[s] any BA protocol", and the paper assumes
//! deterministic BA "for simplicity" (§1.2). We implement the simple
//! two-round-per-phase **phase-king** protocol (Berman–Garay–Perry
//! family): `t + 1` phases, each with a *suggest* round (everyone
//! exchanges its current bit) and a *king* round (the phase's king
//! tie-breaks for parties without overwhelming support).
//!
//! This variant is correct for `n > 4t`; the paper's §4 model has
//! `n ≥ 6t + 1`, which satisfies it with room to spare. Properties:
//!
//! - **Validity**: if every honest party inputs `b`, every honest party
//!   outputs `b`.
//! - **Agreement**: all honest parties output the same bit.
//! - **Termination**: exactly `2(t + 1)` rounds.

use std::marker::PhantomData;

use dprbg_metrics::WireSize;
use dprbg_sim::{Embeds, PartyId, RoundMachine, RoundView, Step};

/// Phase-king wire messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BaMsg {
    /// Suggest round: the sender's current bit.
    Suggest(bool),
    /// King round: the king's tie-breaking bit.
    King(bool),
}

impl WireSize for BaMsg {
    fn wire_bytes(&self) -> usize {
        1
    }
}

/// Phase-king Byzantine agreement as a sans-IO round machine.
///
/// Each call consumes one round's inbox and emits the next round's sends:
/// the first call sends the initial suggestion, then the machine
/// alternates *suggest-tally / king-send* and *king-tally / next-suggest*
/// calls until phase `t + 1` completes — exactly `2(t + 1)` rounds, where
/// `t = t_bound` is the largest tolerable fault count (callers with a
/// stronger model — e.g. Coin-Gen's `n ≥ 6t + 1` — may pass their own
/// smaller `t_bound`; the round count and king schedule follow it).
///
/// # Panics
///
/// The first round call panics unless `n > 4 · t_bound`.
pub struct PhaseKingMachine<M> {
    t: usize,
    v: bool,
    /// Current phase, 1-based; the phase's king is party `phase`.
    phase: usize,
    /// Whether this phase saw ≥ n − t support for `v`.
    strong: bool,
    stage: BaStage,
    _wire: PhantomData<fn() -> M>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BaStage {
    /// First call: send the initial suggestion (empty inbox).
    Start,
    /// Inbox holds suggest messages; tally and (if king) send the king bit.
    Suggests,
    /// Inbox holds the king message; adopt it if weak, then either start
    /// the next phase or finish.
    Kings,
}

impl<M> PhaseKingMachine<M> {
    /// A machine entering agreement on `input`, tolerating up to `t_bound`
    /// faults.
    pub fn new(input: bool, t_bound: usize) -> Self {
        PhaseKingMachine {
            t: t_bound,
            v: input,
            phase: 1,
            strong: false,
            stage: BaStage::Start,
            _wire: PhantomData,
        }
    }

    fn suggest(&self, view: &RoundView<'_, M>) -> Step<M, bool>
    where
        M: Clone + WireSize + Embeds<BaMsg>,
    {
        let mut out = view.outbox();
        out.send_to_all(M::wrap(BaMsg::Suggest(self.v)));
        Step::Continue(out)
    }
}

impl<M> RoundMachine<M> for PhaseKingMachine<M>
where
    M: Clone + WireSize + Embeds<BaMsg>,
{
    type Output = bool;

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, bool> {
        let n = view.n;
        let t = self.t;
        match self.stage {
            BaStage::Start => {
                assert!(n > 4 * t, "phase-king requires n > 4t");
                self.stage = BaStage::Suggests;
                self.suggest(&view)
            }
            BaStage::Suggests => {
                let mut heard: Vec<Option<bool>> = vec![None; n];
                for r in view.inbox.iter() {
                    if let Some(BaMsg::Suggest(b)) = r.msg.peek() {
                        if heard[r.from - 1].is_none() {
                            heard[r.from - 1] = Some(*b);
                        }
                    }
                }
                let ones = heard.iter().filter(|h| **h == Some(true)).count();
                let zeros = heard.iter().filter(|h| **h == Some(false)).count();
                // Strong support: ≥ n − t parties said the same thing.
                self.strong = if ones >= n - t {
                    self.v = true;
                    true
                } else if zeros >= n - t {
                    self.v = false;
                    true
                } else {
                    self.v = ones > zeros;
                    false
                };
                let king: PartyId = self.phase; // kings are parties 1, …, t+1
                let mut out = view.outbox();
                if view.id == king {
                    out.send_to_all(M::wrap(BaMsg::King(self.v)));
                }
                self.stage = BaStage::Kings;
                Step::Continue(out)
            }
            BaStage::Kings => {
                let king: PartyId = self.phase;
                if !self.strong {
                    // Adopt the king's bit (a silent/garbled king
                    // defaults to 0).
                    self.v = view
                        .inbox
                        .first_from(king)
                        .and_then(|r| match r.msg.peek() {
                            Some(BaMsg::King(b)) => Some(*b),
                            _ => None,
                        })
                        .unwrap_or(false);
                }
                if self.phase == t + 1 {
                    return Step::Done(self.v);
                }
                self.phase += 1;
                self.stage = BaStage::Suggests;
                self.suggest(&view)
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.stage {
            BaStage::Start => "ba/suggest",
            BaStage::Suggests => "ba/king",
            BaStage::Kings => "ba/adopt",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::{RngExt, SeedableRng};
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, MachineExt, StepRunner};

    fn honest(input: bool, t: usize) -> BoxedMachine<BaMsg, Option<bool>> {
        Box::new(PhaseKingMachine::new(input, t).map(Some))
    }

    #[test]
    fn validity_all_same_input() {
        for bit in [false, true] {
            let n = 5;
            let fleet: Vec<_> = (0..n).map(|_| honest(bit, 1)).collect();
            let res = StepRunner::new(n, 1).run(fleet);
            assert_eq!(res.unwrap_all(), vec![Some(bit); n]);
        }
    }

    #[test]
    fn agreement_mixed_inputs_no_faults() {
        let n = 5;
        let fleet: Vec<_> = (0..n).map(|i| honest(i % 2 == 0, 1)).collect();
        let res = StepRunner::new(n, 2).run(fleet).unwrap_all();
        assert!(res.windows(2).all(|w| w[0] == w[1]), "disagreement: {res:?}");
    }

    #[test]
    fn agreement_under_byzantine_king() {
        // Parties 1 and 2 (including the first king) equivocate maximally:
        // split suggestions on even rounds, split king bits on odd rounds.
        let n = 9;
        let t = 2;
        let plan = FaultPlan::first_t(n, t);
        let machines = plan.machines::<BaMsg, Option<bool>>(
            |id| honest(id % 2 == 0, t),
            |_| {
                Box::new(from_fn(move |view: RoundView<'_, BaMsg>| {
                    let r = view.round as usize;
                    if r >= 2 * (t + 1) {
                        return Step::Done(None);
                    }
                    let mut out = view.outbox();
                    for to in 1..=view.n {
                        if r % 2 == 0 {
                            out.send(to, BaMsg::Suggest(to % 2 == 0));
                        } else {
                            out.send(to, BaMsg::King(to % 3 == 0));
                        }
                    }
                    Step::Continue(out)
                }))
            },
        );
        let res = StepRunner::new(n, 3).run(machines);
        let honest_out: Vec<bool> =
            plan.honest().map(|id| res.outputs[id - 1].clone().unwrap().unwrap()).collect();
        assert!(
            honest_out.windows(2).all(|w| w[0] == w[1]),
            "honest disagreement: {honest_out:?}"
        );
    }

    #[test]
    fn validity_under_faults() {
        // All honest input `true`; t Byzantine parties push `false`.
        let n = 9;
        let t = 2;
        let plan = FaultPlan::explicit(n, vec![4, 8]);
        let machines = plan.machines::<BaMsg, Option<bool>>(
            |_| honest(true, t),
            |_| {
                Box::new(from_fn(move |view: RoundView<'_, BaMsg>| {
                    let r = view.round as usize;
                    if r >= 2 * (t + 1) {
                        return Step::Done(None);
                    }
                    let mut out = view.outbox();
                    if r % 2 == 0 {
                        out.send_to_all(BaMsg::Suggest(false));
                    } else {
                        out.send_to_all(BaMsg::King(false));
                    }
                    Step::Continue(out)
                }))
            },
        );
        let res = StepRunner::new(n, 4).run(machines);
        for id in plan.honest() {
            assert_eq!(res.outputs[id - 1], Some(Some(true)), "party {id} lost validity");
        }
    }

    #[test]
    fn silent_faults_default_safely() {
        let n = 5;
        let t = 1;
        let plan = FaultPlan::explicit(n, vec![1]); // the first king crashes
        let machines = plan.machines::<BaMsg, Option<bool>>(
            |id| honest(id >= 4, t),
            |_| Box::new(from_fn(|_view: RoundView<'_, BaMsg>| Step::Done(None))),
        );
        let res = StepRunner::new(n, 5).run(machines);
        let outs: Vec<bool> =
            plan.honest().map(|id| res.outputs[id - 1].clone().unwrap().unwrap()).collect();
        assert!(outs.windows(2).all(|w| w[0] == w[1]), "{outs:?}");
    }

    #[test]
    fn round_count_is_two_t_plus_one_phases() {
        let n = 5;
        let fleet: Vec<_> = (0..n).map(|_| honest(true, 1)).collect();
        let res = StepRunner::new(n, 6).run(fleet);
        assert_eq!(res.report.comm.rounds, 4); // 2 rounds × (t+1 = 2) phases
    }

    #[test]
    fn randomized_fault_sweep_keeps_agreement() {
        // Property-style sweep over random inputs and fault sets.
        let mut rng = StdRng::seed_from_u64(0xBA);
        for trial in 0..12u64 {
            let n = 9;
            let t = 2;
            let mut ids: Vec<usize> = (1..=n).collect();
            // Pick two random faulty parties.
            for i in 0..t {
                let j = rng.random_range(i as u64..n as u64) as usize;
                ids.swap(i, j);
            }
            let plan = FaultPlan::explicit(n, ids[..t].to_vec());
            let inputs: Vec<bool> = (0..n).map(|_| rng.random()).collect();
            let machines = plan.machines::<BaMsg, Option<bool>>(
                |id| honest(inputs[id - 1], t),
                |_| {
                    Box::new(from_fn(move |view: RoundView<'_, BaMsg>| {
                        let round = view.round as usize;
                        if round >= 2 * (t + 1) {
                            return Step::Done(None);
                        }
                        let mut out = view.outbox();
                        for to in 1..=view.n {
                            let bit = (to + round) % 2 == 0;
                            let msg = if round % 2 == 0 {
                                BaMsg::Suggest(bit)
                            } else {
                                BaMsg::King(bit)
                            };
                            out.send(to, msg);
                        }
                        Step::Continue(out)
                    }))
                },
            );
            let res = StepRunner::new(n, 100 + trial).run(machines);
            let outs: Vec<bool> =
                plan.honest().map(|id| res.outputs[id - 1].clone().unwrap().unwrap()).collect();
            assert!(
                outs.windows(2).all(|w| w[0] == w[1]),
                "trial {trial}: disagreement {outs:?} (faulty {:?})",
                plan.faulty().collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn rejects_insufficient_n() {
        // n = 4, t = 1 violates n > 4t: every machine's assertion fires
        // and the runner reports all outputs as failed.
        let fleet: Vec<_> = (0..4).map(|_| honest(true, 1)).collect();
        let res = StepRunner::new(4, 7).run(fleet);
        assert!(res.outputs.iter().all(Option::is_none));
    }
}
