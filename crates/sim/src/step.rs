//! The deterministic single-threaded executor.
//!
//! [`StepRunner`] drives one [`RoundMachine`] per party by interleaving
//! all `n` parties round-by-round on the calling thread: no OS threads,
//! no barriers, no locks. Round `r` calls every live machine once (in id
//! order), collects their outboxes through the canonical
//! [`Outbox::flush`](crate::machine::Outbox) expansion, then performs the
//! round flip — delivering every posted copy, sorted by
//! `(sender, send order)`.
//!
//! Per-party RNG derivation, sequence numbering, cost counting, and inbox
//! ordering are all fixed by the flush/flip contract, so a machine run
//! under this executor or [`ParRunner`](crate::ParRunner) from the same
//! master seed produces the same transcript and the same [`CostReport`].
//! The single-threaded form is what makes big-n sweeps tractable: a
//! committee-sampled Coin-Gen at n in the hundreds is a loop, not
//! hundreds of stacks.
//!
//! Cost attribution: the thread-local [`comm`]/ops counters are windowed
//! around each party's `round` call (including its outbox flush), so the
//! per-party ledger in the final report matches what each party's own
//! thread would have recorded.

use std::panic::{catch_unwind, AssertUnwindSafe};

use dprbg_metrics::{comm, CostReport, CostSnapshot, WireSize};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;
use dprbg_trace::{PartyTracer, Trace, TraceConfig};

use crate::adversary::{MsgFate, MsgHop, MsgTap};
use crate::machine::{BoxedMachine, RoundView, RunResult, Step};
use crate::router::{Inbox, PartyId, Received, RoundProfile};

/// Default cap on rounds before the runner declares non-termination.
const DEFAULT_MAX_ROUNDS: u64 = 1 << 20;

/// The deterministic single-threaded executor (see module docs).
pub struct StepRunner<M> {
    n: usize,
    seed: u64,
    tap: Option<Box<dyn MsgTap<M>>>,
    max_rounds: u64,
    trace: Option<TraceConfig>,
}

struct Slot<M, Out> {
    machine: BoxedMachine<M, Out>,
    rng: StdRng,
    seq: u32,
    round: u64,
    cost: CostSnapshot,
    done: bool,
}

impl<M: Clone + WireSize> StepRunner<M> {
    /// A runner for `n` parties, all randomness derived from `seed` with
    /// the same per-party derivation as the threaded runner.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "need at least one party");
        StepRunner { n, seed, tap: None, max_rounds: DEFAULT_MAX_ROUNDS, trace: None }
    }

    /// Install a per-message adversary at the message hop.
    pub fn with_tap(mut self, tap: impl MsgTap<M> + 'static) -> Self {
        self.tap = Some(Box::new(tap));
        self
    }

    /// Record a logical-time trace of the run (see `dprbg_trace`): one
    /// span per (party, round) carrying the phase name, flush totals,
    /// and the round's cost delta. The merged result lands in
    /// [`RunResult::trace`]. Without this call tracing is a no-op — the
    /// run loop only checks an `Option`.
    pub fn with_trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Override the non-termination backstop (default 2²⁰ rounds).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Drive every machine to completion and return the same
    /// [`RunResult`] shape the threaded runner produces. A machine that
    /// panics is contained (`None` output) and the rest keep running.
    ///
    /// # Panics
    ///
    /// Panics if the machine count differs from `n`, or if any machine is
    /// still running after the `max_rounds` backstop.
    pub fn run<Out>(mut self, machines: Vec<BoxedMachine<M, Out>>) -> RunResult<Out> {
        let n = self.n;
        assert_eq!(machines.len(), n, "need exactly one machine per party");
        let mut slots: Vec<Slot<M, Out>> = machines
            .into_iter()
            .enumerate()
            .map(|(idx, machine)| Slot {
                machine,
                rng: StdRng::seed_from_u64(
                    self.seed ^ ((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                ),
                seq: 0,
                round: 0,
                cost: CostSnapshot::default(),
                done: false,
            })
            .collect();
        let mut tracers: Option<Vec<PartyTracer>> =
            self.trace.map(|cfg| (1..=n).map(|id| PartyTracer::new(id, cfg)).collect());
        let mut outputs: Vec<Option<Out>> = (0..n).map(|_| None).collect();
        let mut ready: Vec<Inbox<M>> = (0..n).map(|_| Inbox::empty()).collect();
        let mut pending: Vec<Vec<Received<M>>> = (0..n).map(|_| Vec::new()).collect();
        let mut delayed: Vec<(u64, PartyId, Received<M>)> = Vec::new();
        let mut profile: Vec<RoundProfile> = Vec::new();
        let mut active = n;
        let mut generation: u64 = 0;

        while active > 0 {
            assert!(
                generation < self.max_rounds,
                "StepRunner exceeded {} rounds without terminating",
                self.max_rounds
            );
            for id in 1..=n {
                let slot = &mut slots[id - 1];
                if slot.done {
                    continue;
                }
                let inbox = std::mem::replace(&mut ready[id - 1], Inbox::empty());
                let round_now = slot.round;
                if let Some(tracers) = tracers.as_mut() {
                    tracers[id - 1].begin(round_now, slot.machine.phase_name());
                }
                let before = CostSnapshot::capture();
                let step = catch_unwind(AssertUnwindSafe(|| {
                    slot.machine.round(RoundView {
                        id,
                        n,
                        round: slot.round,
                        inbox: &inbox,
                        rng: &mut slot.rng,
                    })
                }));
                match step {
                    Ok(Step::Continue(outbox)) => {
                        assert_eq!(
                            outbox.n(),
                            n,
                            "outbox built for a different network size"
                        );
                        comm::count_rounds(1);
                        let tap = &mut self.tap;
                        let stats = outbox.flush(id, &mut slot.seq, |to, rcv| {
                            let rcv = match tap.as_deref_mut() {
                                None => rcv,
                                Some(tap) => {
                                    let fate = tap.intercept(MsgHop {
                                        from: rcv.from,
                                        to,
                                        round: generation,
                                        broadcast: rcv.broadcast,
                                        msg: &rcv.msg,
                                    });
                                    match fate {
                                        MsgFate::Deliver => rcv,
                                        MsgFate::Drop => return,
                                        MsgFate::Delay(extra) => {
                                            delayed.push((generation + 1 + extra, to, rcv));
                                            return;
                                        }
                                        MsgFate::Tamper(msg) => Received { msg, ..rcv },
                                    }
                                }
                            };
                            pending[to - 1].push(rcv);
                        });
                        if let Some(tracers) = tracers.as_mut() {
                            tracers[id - 1].flush(round_now, stats.messages, stats.bytes);
                        }
                        slot.round += 1;
                    }
                    Ok(Step::Done(out)) => {
                        outputs[id - 1] = Some(out);
                        slot.done = true;
                        active -= 1;
                    }
                    Err(_) => {
                        slot.done = true;
                        active -= 1;
                    }
                }
                let delta = CostSnapshot::capture().since(&before);
                slot.cost = slot.cost.plus(&delta);
                if let Some(tracers) = tracers.as_mut() {
                    tracers[id - 1].end(round_now, delta);
                }
            }
            if active == 0 {
                // Nobody is left to observe the next round; like the
                // threaded runner's final leave, the last pending sends
                // never flip and no profile entry is recorded for them.
                break;
            }
            generation += 1;
            let mut deliveries = 0;
            for (to0, queue) in pending.iter_mut().enumerate() {
                let mut msgs = std::mem::take(queue);
                let mut i = 0;
                while i < delayed.len() {
                    if delayed[i].0 <= generation && delayed[i].1 == to0 + 1 {
                        let (_, _, rcv) = delayed.swap_remove(i);
                        msgs.push(rcv);
                    } else {
                        i += 1;
                    }
                }
                msgs.sort_by_key(|r| (r.from, r.seq));
                deliveries += msgs.len();
                ready[to0] = Inbox::from_sorted(msgs);
            }
            profile.push(RoundProfile { deliveries, live_parties: active });
        }

        RunResult {
            outputs,
            report: CostReport::from_snapshots(slots.into_iter().map(|s| s.cost)),
            rounds: profile,
            trace: tracers
                .map(|ts| Trace::from_parties(ts.into_iter().map(PartyTracer::into_events))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::RoundMachine;

    /// Sends `id` to everyone in round 0, outputs the sorted senders seen
    /// in round 1.
    struct Gossip;

    impl RoundMachine<u64> for Gossip {
        type Output = Vec<u64>;
        fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, Vec<u64>> {
            if view.round == 0 {
                let mut out = view.outbox();
                out.send_to_all(view.id as u64);
                Step::Continue(out)
            } else {
                Step::Done(view.inbox.iter().map(|r| r.msg).collect())
            }
        }
    }

    fn gossip_fleet(n: usize) -> Vec<BoxedMachine<u64, Vec<u64>>> {
        (0..n).map(|_| Box::new(Gossip) as BoxedMachine<u64, Vec<u64>>).collect()
    }

    #[test]
    fn single_threaded_round_trip() {
        let res = StepRunner::new(4, 9).run(gossip_fleet(4));
        assert_eq!(res.report.comm.rounds, 1);
        assert_eq!(res.report.comm.messages, 16);
        assert_eq!(res.rounds.len(), 1);
        assert_eq!(res.rounds[0].deliveries, 16);
        assert_eq!(res.rounds[0].live_parties, 4);
        let expect: Vec<u64> = vec![1, 2, 3, 4];
        assert_eq!(res.unwrap_all(), vec![expect.clone(); 4]);
    }

    #[test]
    fn repeated_runs_are_byte_identical() {
        let a = StepRunner::new(5, 77).run(gossip_fleet(5));
        let b = StepRunner::new(5, 77).run(gossip_fleet(5));
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.report, b.report);
        assert_eq!(a.rounds, b.rounds);
    }

    #[test]
    fn panicking_machine_is_contained() {
        struct Bomb;
        impl RoundMachine<u64> for Bomb {
            type Output = Vec<u64>;
            fn round(&mut self, _view: RoundView<'_, u64>) -> Step<u64, Vec<u64>> {
                panic!("byzantine meltdown");
            }
        }
        let mut machines = gossip_fleet(3);
        machines[1] = Box::new(Bomb);
        let res = StepRunner::new(3, 1).run(machines);
        assert!(res.outputs[1].is_none());
        // The survivors see only each other (and themselves).
        assert_eq!(res.outputs[0], Some(vec![1, 3]));
        assert_eq!(res.outputs[2], Some(vec![1, 3]));
    }

    #[test]
    fn per_party_rng_derivation_is_stable() {
        struct Draw;
        impl RoundMachine<u64> for Draw {
            type Output = u64;
            fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, u64> {
                use dprbg_rng::RngExt;
                Step::Done(view.rng.random::<u64>())
            }
        }
        let fleet = || (0..3).map(|_| Box::new(Draw) as BoxedMachine<u64, u64>).collect();
        let a = StepRunner::new(3, 99).run(fleet()).unwrap_all();
        // Pin the exact derivation: seed ^ (id * golden-ratio constant).
        use dprbg_rng::{RngExt, SeedableRng};
        let expect: Vec<u64> = (1..=3u64)
            .map(|id| {
                StdRng::seed_from_u64(99 ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15)).random::<u64>()
            })
            .collect();
        assert_eq!(a, expect);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn max_rounds_backstop_fires() {
        struct Forever;
        impl RoundMachine<u64> for Forever {
            type Output = ();
            fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, ()> {
                Step::Continue(view.outbox())
            }
        }
        let machines = vec![Box::new(Forever) as BoxedMachine<u64, ()>];
        let _ = StepRunner::new(1, 0).with_max_rounds(8).run(machines);
    }

    #[test]
    #[should_panic(expected = "one machine per party")]
    fn machine_count_must_match() {
        let _ = StepRunner::new(3, 0).run(gossip_fleet(2));
    }
}
