//! The round-synchronous message router.
//!
//! One shared structure holds, under a single mutex, both the barrier state
//! (live-party count, arrivals, generation) and the message buffers
//! (`pending` accumulates sends of the current round, `ready` holds
//! deliveries of the round that just ended). Performing the buffer flip
//! *inside* the barrier release keeps the two perfectly atomic: a message
//! sent in round `r` is visible exactly at round `r + 1`, and parties that
//! leave mid-protocol can still complete a generation for the others.

use std::sync::{Condvar, Mutex};

use crate::adversary::{MsgFate, MsgHop, MsgTap};

/// A party identifier, 1-based to match the paper's `P_1 … P_n`.
pub type PartyId = usize;

/// A message as delivered to a recipient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received<M> {
    /// The sending party.
    pub from: PartyId,
    /// Whether it arrived via the ideal broadcast channel (§3 model) as
    /// opposed to a private point-to-point channel.
    pub broadcast: bool,
    /// Send-order sequence number within the sender's round (used for
    /// deterministic inbox ordering).
    pub seq: u32,
    /// The payload.
    pub msg: M,
}

/// Per-round delivery statistics, recorded at each barrier flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundProfile {
    /// Messages delivered at this round boundary (unicast copies and
    /// broadcast copies each count once per recipient here — this is the
    /// router's delivery view, not the cost model's send view).
    pub deliveries: usize,
    /// Parties still live when the round completed.
    pub live_parties: usize,
}

/// The messages a party receives at the start of a round, sorted by
/// (sender, send order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inbox<M> {
    msgs: Vec<Received<M>>,
}

impl<M> Inbox<M> {
    /// An inbox with nothing in it (what a machine's first round sees).
    pub fn empty() -> Self {
        Inbox { msgs: Vec::new() }
    }

    /// Build an inbox from messages already sorted by `(from, seq)`.
    pub(crate) fn from_sorted(msgs: Vec<Received<M>>) -> Self {
        Inbox { msgs }
    }

    /// All messages, in deterministic order.
    pub fn iter(&self) -> std::slice::Iter<'_, Received<M>> {
        self.msgs.iter()
    }

    /// Number of messages delivered.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Messages from one particular sender.
    pub fn from(&self, sender: PartyId) -> impl Iterator<Item = &Received<M>> {
        self.msgs.iter().filter(move |r| r.from == sender)
    }

    /// The first (and usually only) message from `sender`, if any.
    pub fn first_from(&self, sender: PartyId) -> Option<&Received<M>> {
        self.msgs.iter().find(|r| r.from == sender)
    }

    /// Only the messages that arrived over the ideal broadcast channel.
    pub fn broadcasts(&self) -> impl Iterator<Item = &Received<M>> {
        self.msgs.iter().filter(|r| r.broadcast)
    }

    /// Consume the inbox into its message vector.
    pub fn into_vec(self) -> Vec<Received<M>> {
        self.msgs
    }
}

impl<'a, M> IntoIterator for &'a Inbox<M> {
    type Item = &'a Received<M>;
    type IntoIter = std::slice::Iter<'a, Received<M>>;
    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

struct Inner<M> {
    /// Parties still participating in the barrier.
    active: usize,
    /// Parties that have arrived at the current barrier generation.
    arrived: usize,
    /// Barrier generation (== global round number).
    generation: u64,
    /// Messages queued during the current round, per recipient (0-based).
    pending: Vec<Vec<Received<M>>>,
    /// Messages deliverable this round, per recipient (0-based).
    ready: Vec<Vec<Received<M>>>,
    /// Adversarially delayed messages: `(deliver_at_generation, to, msg)`.
    delayed: Vec<(u64, PartyId, Received<M>)>,
    /// One entry per completed round: the delivery profile.
    profile: Vec<RoundProfile>,
}

impl<M> Inner<M> {
    /// Complete a barrier generation: deliver pending sends (plus any
    /// delayed messages that have come due) and wake everyone.
    fn flip(&mut self) {
        self.arrived = 0;
        self.generation += 1;
        let n = self.pending.len();
        self.ready = std::mem::replace(&mut self.pending, (0..n).map(|_| Vec::new()).collect());
        let due = self.generation;
        let mut i = 0;
        while i < self.delayed.len() {
            if self.delayed[i].0 <= due {
                let (_, to, rcv) = self.delayed.swap_remove(i);
                self.ready[to - 1].push(rcv);
            } else {
                i += 1;
            }
        }
        for q in &mut self.ready {
            q.sort_by_key(|r| (r.from, r.seq));
        }
        self.profile.push(RoundProfile {
            deliveries: self.ready.iter().map(Vec::len).sum(),
            live_parties: self.active,
        });
    }
}

pub(crate) struct Router<M> {
    inner: Mutex<Inner<M>>,
    /// Optional per-message adversary, consulted on every post.
    tap: Option<Mutex<Box<dyn MsgTap<M>>>>,
    cv: Condvar,
    n: usize,
}

impl<M> Router<M> {
    pub(crate) fn new(n: usize) -> Self {
        assert!(n >= 1, "need at least one party");
        Router {
            inner: Mutex::new(Inner {
                active: n,
                arrived: 0,
                generation: 0,
                pending: (0..n).map(|_| Vec::new()).collect(),
                ready: (0..n).map(|_| Vec::new()).collect(),
                delayed: Vec::new(),
                profile: Vec::new(),
            }),
            tap: None,
            cv: Condvar::new(),
            n,
        }
    }

    /// Install a per-message adversary before the run starts.
    pub(crate) fn with_tap(mut self, tap: Box<dyn MsgTap<M>>) -> Self {
        self.tap = Some(Mutex::new(tap));
        self
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }

    /// Queue a message for delivery to `to` at the next round boundary.
    ///
    /// This is the executor's **message hop**: if a tap is installed it
    /// sees every copy here and can drop, delay, or tamper with it.
    pub(crate) fn post(&self, to: PartyId, rcv: Received<M>) {
        debug_assert!((1..=self.n).contains(&to), "recipient out of range");
        let mut st = self.inner.lock().unwrap();
        let rcv = match &self.tap {
            None => rcv,
            Some(tap) => {
                let fate = tap.lock().unwrap().intercept(MsgHop {
                    from: rcv.from,
                    to,
                    round: st.generation,
                    broadcast: rcv.broadcast,
                    msg: &rcv.msg,
                });
                match fate {
                    MsgFate::Deliver => rcv,
                    MsgFate::Drop => return,
                    MsgFate::Delay(extra) => {
                        let deliver_at = st.generation + 1 + extra;
                        st.delayed.push((deliver_at, to, rcv));
                        return;
                    }
                    MsgFate::Tamper(msg) => Received { msg, ..rcv },
                }
            }
        };
        st.pending[to - 1].push(rcv);
    }

    /// Arrive at the round barrier; when every live party has arrived the
    /// round flips and this returns the caller's inbox for the new round.
    pub(crate) fn next_round(&self, id: PartyId) -> Inbox<M> {
        let mut st = self.inner.lock().unwrap();
        let gen = st.generation;
        st.arrived += 1;
        if st.arrived >= st.active {
            st.flip();
            self.cv.notify_all();
        } else {
            while st.generation == gen {
                st = self.cv.wait(st).unwrap();
            }
        }
        Inbox {
            msgs: std::mem::take(&mut st.ready[id - 1]),
        }
    }

    /// Permanently remove a party from the barrier (crash, or protocol
    /// completed). If it was the last straggler, the round completes for
    /// the others.
    pub(crate) fn leave(&self) {
        let mut st = self.inner.lock().unwrap();
        st.active -= 1;
        if st.active > 0 && st.arrived >= st.active {
            st.flip();
            self.cv.notify_all();
        }
    }

    /// How many parties are still participating.
    pub(crate) fn active(&self) -> usize {
        self.inner.lock().unwrap().active
    }

    /// The per-round delivery profile recorded so far.
    pub(crate) fn profile(&self) -> Vec<RoundProfile> {
        self.inner.lock().unwrap().profile.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn inbox_ordering_is_deterministic() {
        let router = Router::<u32>::new(1);
        router.post(
            1,
            Received { from: 2, broadcast: false, seq: 1, msg: 20 },
        );
        router.post(
            1,
            Received { from: 1, broadcast: false, seq: 0, msg: 10 },
        );
        router.post(
            1,
            Received { from: 2, broadcast: false, seq: 0, msg: 19 },
        );
        let inbox = router.next_round(1);
        let vals: Vec<u32> = inbox.iter().map(|r| r.msg).collect();
        assert_eq!(vals, vec![10, 19, 20]);
        assert_eq!(inbox.first_from(2).unwrap().msg, 19);
        assert_eq!(inbox.from(2).count(), 2);
    }

    #[test]
    fn messages_cross_round_boundary_once() {
        let router = Router::<u32>::new(1);
        router.post(1, Received { from: 1, broadcast: false, seq: 0, msg: 7 });
        let inbox = router.next_round(1);
        assert_eq!(inbox.len(), 1);
        // Next round: nothing new.
        let inbox = router.next_round(1);
        assert!(inbox.is_empty());
    }

    #[test]
    fn barrier_synchronizes_two_threads() {
        let router = Arc::new(Router::<u32>::new(2));
        let r2 = Arc::clone(&router);
        let handle = std::thread::spawn(move || {
            r2.post(1, Received { from: 2, broadcast: false, seq: 0, msg: 42 });
            let inbox = r2.next_round(2);
            inbox.iter().map(|r| r.msg).sum::<u32>()
        });
        router.post(2, Received { from: 1, broadcast: false, seq: 0, msg: 8 });
        let inbox = router.next_round(1);
        assert_eq!(inbox.first_from(2).unwrap().msg, 42);
        assert_eq!(handle.join().unwrap(), 8);
    }

    #[test]
    fn leaver_releases_waiters() {
        let router = Arc::new(Router::<u32>::new(2));
        let r2 = Arc::clone(&router);
        let handle = std::thread::spawn(move || {
            // Party 2 waits at the barrier…
            let _ = r2.next_round(2);
            r2.active()
        });
        // …while party 1 leaves instead of arriving.
        std::thread::sleep(std::time::Duration::from_millis(20));
        router.leave();
        assert_eq!(handle.join().unwrap(), 1);
    }

    #[test]
    fn broadcast_flag_preserved() {
        let router = Router::<u32>::new(1);
        router.post(1, Received { from: 1, broadcast: true, seq: 0, msg: 1 });
        router.post(1, Received { from: 1, broadcast: false, seq: 1, msg: 2 });
        let inbox = router.next_round(1);
        assert_eq!(inbox.broadcasts().count(), 1);
    }
}
