//! Round-delivery types shared by the executors.
//!
//! The executors enforce lock-step synchrony themselves (see
//! [`StepRunner`](crate::StepRunner) and [`ParRunner`](crate::ParRunner));
//! this module holds the vocabulary they share: party identifiers, the
//! [`Received`] envelope a delivery produces, the per-round
//! [`RoundProfile`], and the deterministic [`Inbox`] every machine reads
//! at a round boundary. A message sent in round `r` is visible exactly at
//! round `r + 1`, sorted by `(sender, send order)`.

/// A party identifier, 1-based to match the paper's `P_1 … P_n`.
pub type PartyId = usize;

/// A message as delivered to a recipient.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Received<M> {
    /// The sending party.
    pub from: PartyId,
    /// Whether it arrived via the ideal broadcast channel (§3 model) as
    /// opposed to a private point-to-point channel.
    pub broadcast: bool,
    /// Send-order sequence number within the sender's round (used for
    /// deterministic inbox ordering).
    pub seq: u32,
    /// The payload.
    pub msg: M,
}

/// Per-round delivery statistics, recorded at each round flip.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RoundProfile {
    /// Messages delivered at this round boundary (unicast copies and
    /// broadcast copies each count once per recipient here — this is the
    /// delivery view, not the cost model's send view).
    pub deliveries: usize,
    /// Parties still live when the round completed.
    pub live_parties: usize,
}

/// The messages a party receives at the start of a round, sorted by
/// (sender, send order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inbox<M> {
    msgs: Vec<Received<M>>,
}

impl<M> Inbox<M> {
    /// An inbox with nothing in it (what a machine's first round sees).
    pub fn empty() -> Self {
        Inbox { msgs: Vec::new() }
    }

    /// Build an inbox from a batch of deliveries, establishing the
    /// canonical `(from, seq)` order. Adapters that narrow or translate
    /// another inbox (committee subnets, multiplexed sub-protocols) build
    /// their synthetic inboxes through this.
    pub fn from_messages(mut msgs: Vec<Received<M>>) -> Self {
        msgs.sort_by_key(|r| (r.from, r.seq));
        Inbox { msgs }
    }

    /// Build an inbox from messages already sorted by `(from, seq)`.
    pub(crate) fn from_sorted(msgs: Vec<Received<M>>) -> Self {
        Inbox { msgs }
    }

    /// All messages, in deterministic order.
    pub fn iter(&self) -> std::slice::Iter<'_, Received<M>> {
        self.msgs.iter()
    }

    /// Number of messages delivered.
    pub fn len(&self) -> usize {
        self.msgs.len()
    }

    /// Whether nothing was delivered.
    pub fn is_empty(&self) -> bool {
        self.msgs.is_empty()
    }

    /// Messages from one particular sender.
    pub fn from(&self, sender: PartyId) -> impl Iterator<Item = &Received<M>> {
        self.msgs.iter().filter(move |r| r.from == sender)
    }

    /// The first (and usually only) message from `sender`, if any.
    pub fn first_from(&self, sender: PartyId) -> Option<&Received<M>> {
        self.msgs.iter().find(|r| r.from == sender)
    }

    /// Only the messages that arrived over the ideal broadcast channel.
    pub fn broadcasts(&self) -> impl Iterator<Item = &Received<M>> {
        self.msgs.iter().filter(|r| r.broadcast)
    }

    /// Consume the inbox into its message vector.
    pub fn into_vec(self) -> Vec<Received<M>> {
        self.msgs
    }
}

impl<'a, M> IntoIterator for &'a Inbox<M> {
    type Item = &'a Received<M>;
    type IntoIter = std::slice::Iter<'a, Received<M>>;
    fn into_iter(self) -> Self::IntoIter {
        self.msgs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inbox_ordering_is_deterministic() {
        let inbox = Inbox::from_messages(vec![
            Received { from: 2, broadcast: false, seq: 1, msg: 20 },
            Received { from: 1, broadcast: false, seq: 0, msg: 10 },
            Received { from: 2, broadcast: false, seq: 0, msg: 19 },
        ]);
        let vals: Vec<u32> = inbox.iter().map(|r| r.msg).collect();
        assert_eq!(vals, vec![10, 19, 20]);
        assert_eq!(inbox.first_from(2).unwrap().msg, 19);
        assert_eq!(inbox.from(2).count(), 2);
    }

    #[test]
    fn broadcast_flag_preserved() {
        let inbox = Inbox::from_messages(vec![
            Received { from: 1, broadcast: true, seq: 0, msg: 1 },
            Received { from: 1, broadcast: false, seq: 1, msg: 2 },
        ]);
        assert_eq!(inbox.broadcasts().count(), 1);
        assert_eq!(inbox.len(), 2);
    }

    #[test]
    fn empty_inbox_shape() {
        let inbox = Inbox::<u8>::empty();
        assert!(inbox.is_empty());
        assert_eq!(inbox.iter().count(), 0);
        assert!(inbox.first_from(1).is_none());
    }
}
