//! Adversary planning helpers.
//!
//! The paper's adversary controls up to `t` parties which "deviate
//! arbitrarily from the protocol, and even collude" (§2). In this
//! simulator, an adversarial party is simply a different
//! [`RoundMachine`](crate::RoundMachine) in the fleet; protocol crates
//! define attack-specific machines next to each protocol. This module
//! provides the generic pieces: a [`FaultPlan`] describing *which* parties
//! are corrupted, the machine every attack shares
//! ([`silent`](crate::silent) — crashing), and the **per-message hop**: a
//! [`MsgTap`] installed on an executor sees every individual envelope in
//! flight and may drop, delay, or tamper with it — a strictly finer
//! adversary surface than swapping out whole machines.

use crate::machine::BoxedMachine;
use crate::router::PartyId;

/// One message in flight, as shown to a [`MsgTap`] at the executor's
/// message hop — after the sender has been charged for it, before it is
/// queued for delivery.
#[derive(Debug)]
pub struct MsgHop<'a, M> {
    /// The sending party.
    pub from: PartyId,
    /// The recipient of this copy. A broadcast passes through the hop
    /// once per recipient, so a tap can equivocate on the §3 ideal
    /// channel by tampering per copy.
    pub to: PartyId,
    /// The global round in which the message was sent (0-based).
    pub round: u64,
    /// Whether this copy travels on the ideal broadcast channel.
    pub broadcast: bool,
    /// The payload.
    pub msg: &'a M,
}

/// What the adversary decides to do with one in-flight message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MsgFate<M> {
    /// Deliver unchanged at the next round boundary.
    Deliver,
    /// Silently discard. The sender still paid the message cost — the
    /// network ate it, the sender doesn't know.
    Drop,
    /// Deliver `extra` rounds late (`Delay(0)` ≡ `Deliver`). The copy
    /// keeps its original sender/sequence coordinates, so a delayed
    /// message merges deterministically into the later inbox.
    Delay(u64),
    /// Replace the payload before delivery (per-copy, enabling broadcast
    /// equivocation).
    Tamper(M),
}

/// A per-message adversary installed at an executor's message hop.
///
/// Both executors consult the tap for every posted copy, on the
/// coordinating thread, in id-major send-order-minor sequence — so even
/// stateful taps fold identically under [`StepRunner`](crate::StepRunner)
/// and [`ParRunner`](crate::ParRunner).
pub trait MsgTap<M>: Send {
    /// Decide this message's fate.
    fn intercept(&mut self, hop: MsgHop<'_, M>) -> MsgFate<M>;
}

impl<M, F> MsgTap<M> for F
where
    F: FnMut(MsgHop<'_, M>) -> MsgFate<M> + Send,
{
    fn intercept(&mut self, hop: MsgHop<'_, M>) -> MsgFate<M> {
        self(hop)
    }
}

/// Which parties the adversary controls in a given execution.
///
/// # Examples
///
/// ```
/// use dprbg_sim::FaultPlan;
/// let plan = FaultPlan::first_t(7, 2);
/// assert!(plan.is_faulty(1) && plan.is_faulty(2) && !plan.is_faulty(3));
/// assert_eq!(plan.honest().count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    n: usize,
    faulty: Vec<PartyId>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none(n: usize) -> Self {
        FaultPlan { n, faulty: vec![] }
    }

    /// Corrupt parties `1..=t` (the canonical worst-case labelling; the
    /// protocols are symmetric in party ids).
    ///
    /// # Panics
    ///
    /// Panics if `t > n`.
    pub fn first_t(n: usize, t: usize) -> Self {
        assert!(t <= n, "cannot corrupt more parties than exist");
        FaultPlan {
            n,
            faulty: (1..=t).collect(),
        }
    }

    /// Corrupt an explicit set of parties.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range or repeated.
    pub fn explicit(n: usize, faulty: Vec<PartyId>) -> Self {
        for (i, &p) in faulty.iter().enumerate() {
            assert!((1..=n).contains(&p), "party id {p} out of range");
            assert!(!faulty[i + 1..].contains(&p), "duplicate faulty id {p}");
        }
        FaultPlan { n, faulty }
    }

    /// Total number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of corrupted parties.
    pub fn t(&self) -> usize {
        self.faulty.len()
    }

    /// Whether `id` is corrupted.
    pub fn is_faulty(&self, id: PartyId) -> bool {
        self.faulty.contains(&id)
    }

    /// Iterator over honest party ids in increasing order.
    pub fn honest(&self) -> impl Iterator<Item = PartyId> + '_ {
        (1..=self.n).filter(move |id| !self.is_faulty(*id))
    }

    /// Iterator over corrupted party ids.
    pub fn faulty(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.faulty.iter().copied()
    }

    /// Build the machine fleet for a run: `honest(id)` for honest
    /// parties, `corrupt(id)` for corrupted ones.
    pub fn machines<M, Out>(
        &self,
        mut honest: impl FnMut(PartyId) -> BoxedMachine<M, Out>,
        mut corrupt: impl FnMut(PartyId) -> BoxedMachine<M, Out>,
    ) -> Vec<BoxedMachine<M, Out>> {
        (1..=self.n)
            .map(|id| {
                if self.is_faulty(id) {
                    corrupt(id)
                } else {
                    honest(id)
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{from_fn, silent, BoxedMachine, RoundView, Step};
    use crate::step::StepRunner;

    #[test]
    fn fault_plan_shapes() {
        let p = FaultPlan::first_t(7, 2);
        assert_eq!(p.t(), 2);
        assert_eq!(p.honest().collect::<Vec<_>>(), vec![3, 4, 5, 6, 7]);
        assert_eq!(p.faulty().collect::<Vec<_>>(), vec![1, 2]);
        let q = FaultPlan::explicit(5, vec![2, 4]);
        assert!(q.is_faulty(4) && !q.is_faulty(5));
        assert_eq!(FaultPlan::none(3).t(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn explicit_rejects_duplicates() {
        let _ = FaultPlan::explicit(5, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_rejects_out_of_range() {
        let _ = FaultPlan::explicit(5, vec![6]);
    }

    fn gossip_then_count() -> BoxedMachine<u64, usize> {
        Box::new(from_fn(|view: RoundView<'_, u64>| {
            if view.round == 0 {
                let mut out = view.outbox();
                out.send_to_all(view.id as u64);
                Step::Continue(out)
            } else {
                Step::Done(view.inbox.len())
            }
        }))
    }

    #[test]
    fn tap_drops_individual_copies() {
        // Sever only the 1 → 3 link: finer than any machine swap could
        // be, since party 1 is honest and its other copies arrive.
        let fleet = || -> Vec<BoxedMachine<u64, usize>> {
            (1..=3).map(|_| gossip_then_count()).collect()
        };
        let tap = |hop: MsgHop<'_, u64>| {
            if hop.from == 1 && hop.to == 3 {
                MsgFate::Drop
            } else {
                MsgFate::Deliver
            }
        };
        let res = StepRunner::new(3, 5).with_tap(tap).run(fleet());
        assert_eq!(res.outputs, vec![Some(3), Some(3), Some(2)]);
        // The sender still paid for the eaten copy.
        assert_eq!(res.report.comm.messages, 9);
    }

    #[test]
    fn tap_delays_across_round_boundaries() {
        // Party 1's round-0 message to party 2 is held back one extra
        // round: absent from round 1's inbox, present in round 2's.
        let fleet: Vec<BoxedMachine<u64, (usize, usize)>> = vec![
            Box::new(from_fn(|view: RoundView<'_, u64>| match view.round {
                0 => {
                    let mut out = view.outbox();
                    out.send(2, 41);
                    Step::Continue(out)
                }
                1 => Step::Continue(view.outbox()),
                _ => Step::Done((0, 0)),
            })),
            Box::new(from_fn({
                let mut r1 = 0usize;
                move |view: RoundView<'_, u64>| match view.round {
                    0 => Step::Continue(view.outbox()),
                    1 => {
                        r1 = view.inbox.len();
                        Step::Continue(view.outbox())
                    }
                    _ => Step::Done((r1, view.inbox.len())),
                }
            })),
        ];
        let tap = |_hop: MsgHop<'_, u64>| MsgFate::Delay(1);
        let res = StepRunner::new(2, 5).with_tap(tap).run(fleet);
        assert_eq!(res.outputs[1], Some((0, 1)));
    }

    #[test]
    fn tap_equivocates_on_the_ideal_broadcast_channel() {
        // The §3 ideal channel promises every party the identical value;
        // a per-copy tamper breaks exactly that promise for one victim.
        let fleet = || -> Vec<BoxedMachine<u64, u64>> {
            (1..=3)
                .map(|_| {
                    Box::new(from_fn(|view: RoundView<'_, u64>| {
                        if view.round == 0 {
                            let mut out = view.outbox();
                            if view.id == 1 {
                                out.broadcast(10);
                            }
                            Step::Continue(out)
                        } else {
                            Step::Done(view.inbox.broadcasts().map(|r| r.msg).sum())
                        }
                    })) as BoxedMachine<u64, u64>
                })
                .collect()
        };
        let tap = |hop: MsgHop<'_, u64>| {
            if hop.broadcast && hop.to == 3 {
                MsgFate::Tamper(*hop.msg + 90)
            } else {
                MsgFate::Deliver
            }
        };
        let res = StepRunner::new(3, 5).with_tap(tap).run(fleet());
        assert_eq!(res.outputs, vec![Some(10), Some(10), Some(100)]);
    }

    #[test]
    fn tapped_runs_agree_across_executors() {
        use crate::machine::{RoundMachine, RoundView, Step};
        use crate::par::ParRunner;

        /// Two gossip rounds so delayed messages have somewhere to land.
        struct TwoRounds;
        impl RoundMachine<u64> for TwoRounds {
            type Output = Vec<(usize, u64)>;
            fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, Self::Output> {
                if view.round < 2 {
                    let mut out = view.outbox();
                    out.send_to_all(view.id as u64 * 10 + view.round);
                    Step::Continue(out)
                } else {
                    Step::Done(view.inbox.iter().map(|r| (r.from, r.msg)).collect())
                }
            }
        }
        let fleet = || -> Vec<BoxedMachine<u64, Vec<(usize, u64)>>> {
            (0..4).map(|_| Box::new(TwoRounds) as _).collect()
        };
        // A pure function of the hop: drop 2→1, delay 3→2 by one round,
        // tamper 4→3.
        let tap = || {
            |hop: MsgHop<'_, u64>| match (hop.from, hop.to) {
                (2, 1) => MsgFate::Drop,
                (3, 2) => MsgFate::Delay(1),
                (4, 3) => MsgFate::Tamper(hop.msg + 1000),
                _ => MsgFate::Deliver,
            }
        };
        let stepped = StepRunner::new(4, 21).with_tap(tap()).run(fleet());
        let parallel = ParRunner::new(4, 21).with_tap(tap()).run(fleet());
        assert_eq!(stepped.outputs, parallel.outputs);
        assert_eq!(stepped.report, parallel.report);
        assert_eq!(stepped.rounds, parallel.rounds);
        // And the tamper actually landed.
        let p3 = stepped.outputs[2].as_ref().unwrap();
        assert!(p3.iter().any(|&(from, v)| from == 4 && v > 1000));
    }

    #[test]
    fn crashed_parties_dont_stop_the_rest() {
        let plan = FaultPlan::first_t(4, 1);
        let fleet = plan.machines::<u64, usize>(
            |_id| gossip_then_count(),
            |_id| Box::new(silent()),
        );
        let res = StepRunner::new(4, 11).run(fleet);
        // Three honest senders; the crashed party contributed nothing.
        for id in plan.honest() {
            assert_eq!(res.outputs[id - 1], Some(3));
        }
    }
}
