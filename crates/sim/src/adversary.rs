//! Adversary planning helpers.
//!
//! The paper's adversary controls up to `t` parties which "deviate
//! arbitrarily from the protocol, and even collude" (§2). In this
//! simulator, an adversarial party is simply a different [`Behavior`]
//! passed to [`crate::run_network`]; protocol crates define
//! attack-specific behaviors next to each protocol. This module provides
//! the generic pieces: a [`FaultPlan`] describing *which* parties are
//! corrupted, and behaviors every attack shares (crashing).

use crate::network::{Behavior, PartyCtx};
use crate::router::PartyId;
use dprbg_metrics::WireSize;

/// Which parties the adversary controls in a given execution.
///
/// # Examples
///
/// ```
/// use dprbg_sim::FaultPlan;
/// let plan = FaultPlan::first_t(7, 2);
/// assert!(plan.is_faulty(1) && plan.is_faulty(2) && !plan.is_faulty(3));
/// assert_eq!(plan.honest().count(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    n: usize,
    faulty: Vec<PartyId>,
}

impl FaultPlan {
    /// No faults at all.
    pub fn none(n: usize) -> Self {
        FaultPlan { n, faulty: vec![] }
    }

    /// Corrupt parties `1..=t` (the canonical worst-case labelling; the
    /// protocols are symmetric in party ids).
    ///
    /// # Panics
    ///
    /// Panics if `t > n`.
    pub fn first_t(n: usize, t: usize) -> Self {
        assert!(t <= n, "cannot corrupt more parties than exist");
        FaultPlan {
            n,
            faulty: (1..=t).collect(),
        }
    }

    /// Corrupt an explicit set of parties.
    ///
    /// # Panics
    ///
    /// Panics if any id is out of range or repeated.
    pub fn explicit(n: usize, faulty: Vec<PartyId>) -> Self {
        for (i, &p) in faulty.iter().enumerate() {
            assert!((1..=n).contains(&p), "party id {p} out of range");
            assert!(!faulty[i + 1..].contains(&p), "duplicate faulty id {p}");
        }
        FaultPlan { n, faulty }
    }

    /// Total number of parties.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of corrupted parties.
    pub fn t(&self) -> usize {
        self.faulty.len()
    }

    /// Whether `id` is corrupted.
    pub fn is_faulty(&self, id: PartyId) -> bool {
        self.faulty.contains(&id)
    }

    /// Iterator over honest party ids in increasing order.
    pub fn honest(&self) -> impl Iterator<Item = PartyId> + '_ {
        (1..=self.n).filter(move |id| !self.is_faulty(*id))
    }

    /// Iterator over corrupted party ids.
    pub fn faulty(&self) -> impl Iterator<Item = PartyId> + '_ {
        self.faulty.iter().copied()
    }

    /// Build the behavior vector for a run: `honest(id)` for honest
    /// parties, `corrupt(id)` for corrupted ones.
    pub fn behaviors<M, Out>(
        &self,
        mut honest: impl FnMut(PartyId) -> Behavior<M, Out>,
        mut corrupt: impl FnMut(PartyId) -> Behavior<M, Out>,
    ) -> Vec<Behavior<M, Out>> {
        (1..=self.n)
            .map(|id| {
                if self.is_faulty(id) {
                    corrupt(id)
                } else {
                    honest(id)
                }
            })
            .collect()
    }
}

/// The crash-fault behavior: the party goes down before sending anything.
///
/// Thanks to the dynamic round barrier the remaining parties keep running;
/// the crashed party simply never speaks again.
pub fn crash_immediately<M, Out>() -> Behavior<M, Out>
where
    M: Clone + WireSize + 'static,
    Out: Default + 'static,
{
    Box::new(|_ctx: &mut PartyCtx<M>| Out::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::run_network;

    #[test]
    fn fault_plan_shapes() {
        let p = FaultPlan::first_t(7, 2);
        assert_eq!(p.t(), 2);
        assert_eq!(p.honest().collect::<Vec<_>>(), vec![3, 4, 5, 6, 7]);
        assert_eq!(p.faulty().collect::<Vec<_>>(), vec![1, 2]);
        let q = FaultPlan::explicit(5, vec![2, 4]);
        assert!(q.is_faulty(4) && !q.is_faulty(5));
        assert_eq!(FaultPlan::none(3).t(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn explicit_rejects_duplicates() {
        let _ = FaultPlan::explicit(5, vec![2, 2]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn explicit_rejects_out_of_range() {
        let _ = FaultPlan::explicit(5, vec![6]);
    }

    #[test]
    fn crashed_parties_dont_stop_the_rest() {
        let plan = FaultPlan::first_t(4, 1);
        let behaviors = plan.behaviors::<u8, u8>(
            |_id| {
                Box::new(|ctx| {
                    ctx.send_to_all(1);
                    let inbox = ctx.next_round();
                    inbox.len() as u8
                })
            },
            |_id| crash_immediately(),
        );
        let res = run_network(4, 11, behaviors);
        // Three honest senders; the crashed party contributed nothing.
        for id in plan.honest() {
            assert_eq!(res.outputs[id - 1], Some(3));
        }
    }
}
