#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A synchronous multi-party network simulator.
//!
//! Implements the paper's model (§2): "a synchronous network of n players
//! P_1, …, P_n (probabilistic polynomial-time machines with a source of
//! perfectly random bits), which communicate by sending messages. We assume
//! that private channels are available between the players."
//!
//! Protocol logic is written transport-free as a [`RoundMachine`]: a state
//! machine whose [`round`](RoundMachine::round) method maps an [`Inbox`]
//! view to an [`Outbox`] of sends (or a final output). The machine never
//! touches a thread or socket; lock-step synchrony, delivery, and cost
//! accounting are executor concerns. Two interchangeable executors drive
//! machine fleets:
//!
//! * [`StepRunner`] — a deterministic single-threaded executor that
//!   interleaves all parties round-by-round with no threads or barriers,
//!   making big-n sweeps cheap;
//! * [`ParRunner`] — a deterministic work-stealing pool that steps the
//!   independent parties of each round concurrently and merges outboxes
//!   in id order at round boundaries, for wall-clock speed at big n.
//!
//! Both executors share sequence numbering, RNG derivation, and cost
//! accounting, so the same seed yields byte-identical transcripts and
//! identical cost reports under either. A message sent in round `r` is
//! delivered at the start of round `r + 1`, exactly once, to exactly its
//! addressee, sorted by (sender, send order). Communication is charged to
//! the [`dprbg_metrics::comm`] counters using [`WireSize`]: one unicast =
//! one message of the payload's size; one ideal-channel broadcast = one
//! message (matching the paper's counting, e.g. "2n messages, each of
//! size k" in Lemma 2). Each in-flight copy also passes a **message hop**
//! where an optional [`MsgTap`] adversary can drop, delay, or tamper per
//! message ([`StepRunner::with_tap`], [`ParRunner::with_tap`]).
//!
//! # Examples
//!
//! ```
//! use dprbg_sim::{from_fn, BoxedMachine, RoundView, Step, StepRunner};
//!
//! // Three parties each send their id to everyone and sum what they hear.
//! let fleet: Vec<BoxedMachine<u64, u64>> = (1..=3)
//!     .map(|_| {
//!         Box::new(from_fn(|view: RoundView<'_, u64>| {
//!             if view.round == 0 {
//!                 let mut out = view.outbox();
//!                 out.send_to_all(view.id as u64);
//!                 Step::Continue(out)
//!             } else {
//!                 Step::Done(view.inbox.iter().map(|r| r.msg).sum::<u64>())
//!             }
//!         })) as BoxedMachine<u64, u64>
//!     })
//!     .collect();
//! let result = StepRunner::new(3, 42).run(fleet);
//! assert_eq!(result.outputs, vec![Some(6), Some(6), Some(6)]);
//! ```
//!
//! # Composition
//!
//! Machines compose without touching an executor: [`MachineExt::then`]
//! chains a successor onto a finished machine, [`MachineExt::map`]
//! transforms outputs, [`looping`] threads state through a data-dependent
//! sequence of machines (retry loops, beacons), [`Subnet`] runs a
//! sub-protocol inside a committee of `c ≪ n` parties at `O(c²)` cost,
//! and [`Embeds`] multiplexes several sub-protocols' messages over one
//! wire enum.

mod adversary;
mod chaos;
mod embed;
mod machine;
mod par;
mod router;
mod step;

pub use adversary::{FaultPlan, MsgFate, MsgHop, MsgTap};
pub use chaos::{
    AdaptiveAdversary, Attack, CorruptionHandle, EpochFault, ScheduledAdversary, SoakPlan,
};
pub use embed::Embeds;
pub use machine::{
    from_fn, looping, ready, silent, BoxedMachine, Chain, FlushStats, FromFn, Loop, LoopControl,
    MachineExt, Map, Outbox, Ready, RoundMachine, RoundView, RunResult, Step, Subnet,
};
pub use par::ParRunner;
pub use router::{Inbox, PartyId, Received, RoundProfile};
pub use step::StepRunner;

pub use dprbg_metrics::WireSize;
pub use dprbg_trace::{Trace, TraceConfig, TraceMode};
