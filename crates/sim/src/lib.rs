#![warn(missing_docs)]

//! A synchronous multi-party network simulator.
//!
//! Implements the paper's model (§2): "a synchronous network of n players
//! P_1, …, P_n (probabilistic polynomial-time machines with a source of
//! perfectly random bits), which communicate by sending messages. We assume
//! that private channels are available between the players."
//!
//! Each party runs as its own thread executing straight-line protocol code
//! against a [`PartyCtx`]: it sends typed messages over private
//! point-to-point channels ([`PartyCtx::send`]), optionally uses the §3
//! model's *ideal broadcast channel* ([`PartyCtx::broadcast`] — the
//! facility §4 shows how to remove), and advances the global round clock
//! with [`PartyCtx::next_round`], which delivers everything sent to it in
//! the round that just ended.
//!
//! Lock-step synchrony is enforced by a dynamic barrier: a round completes
//! only when every *live* party has finished sending, so a message sent in
//! round `r` is delivered at the start of round `r + 1`, exactly once, to
//! exactly its addressee. Parties that return early (crash faults, or
//! honest parties that finished) simply leave the barrier; the rest keep
//! running.
//!
//! Everything is deterministic given the master seed: per-party randomness
//! comes from seeded [`dprbg_rng::rngs::StdRng`]s, and inboxes are sorted by
//! (sender, send order). Communication is charged to the
//! [`dprbg_metrics::comm`] counters using [`WireSize`]: one unicast = one
//! message of the payload's size; one ideal-channel broadcast = one message
//! (matching the paper's counting, e.g. "2n messages, each of size k" in
//! Lemma 2).
//!
//! # Examples
//!
//! ```
//! use dprbg_sim::{run_network, Behavior, PartyCtx};
//!
//! // Three parties each send their id to everyone and sum what they hear.
//! let behaviors: Vec<Behavior<u64, u64>> = (1..=3)
//!     .map(|_| {
//!         Box::new(|ctx: &mut PartyCtx<u64>| {
//!             ctx.send_to_all(ctx.id() as u64);
//!             let inbox = ctx.next_round();
//!             inbox.iter().map(|r| r.msg).sum::<u64>()
//!         }) as Behavior<u64, u64>
//!     })
//!     .collect();
//! let result = run_network(3, 42, behaviors);
//! assert_eq!(result.outputs, vec![Some(6), Some(6), Some(6)]);
//! ```

mod adversary;
mod embed;
mod network;
mod router;

pub use adversary::{crash_immediately, FaultPlan};
pub use embed::Embeds;
pub use network::{run_network, Behavior, PartyCtx, RunResult};
pub use router::{Inbox, PartyId, Received, RoundProfile};

pub use dprbg_metrics::WireSize;
