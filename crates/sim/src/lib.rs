#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! A synchronous multi-party network simulator.
//!
//! Implements the paper's model (§2): "a synchronous network of n players
//! P_1, …, P_n (probabilistic polynomial-time machines with a source of
//! perfectly random bits), which communicate by sending messages. We assume
//! that private channels are available between the players."
//!
//! Each party runs as its own thread executing straight-line protocol code
//! against a [`PartyCtx`]: it sends typed messages over private
//! point-to-point channels ([`PartyCtx::send`]), optionally uses the §3
//! model's *ideal broadcast channel* ([`PartyCtx::broadcast`] — the
//! facility §4 shows how to remove), and advances the global round clock
//! with [`PartyCtx::next_round`], which delivers everything sent to it in
//! the round that just ended.
//!
//! Lock-step synchrony is enforced by a dynamic barrier: a round completes
//! only when every *live* party has finished sending, so a message sent in
//! round `r` is delivered at the start of round `r + 1`, exactly once, to
//! exactly its addressee. Parties that return early (crash faults, or
//! honest parties that finished) simply leave the barrier; the rest keep
//! running.
//!
//! Everything is deterministic given the master seed: per-party randomness
//! comes from seeded [`dprbg_rng::rngs::StdRng`]s, and inboxes are sorted by
//! (sender, send order). Communication is charged to the
//! [`dprbg_metrics::comm`] counters using [`WireSize`]: one unicast = one
//! message of the payload's size; one ideal-channel broadcast = one message
//! (matching the paper's counting, e.g. "2n messages, each of size k" in
//! Lemma 2).
//!
//! # Examples
//!
//! ```
//! use dprbg_sim::{run_network, Behavior, PartyCtx};
//!
//! // Three parties each send their id to everyone and sum what they hear.
//! let behaviors: Vec<Behavior<u64, u64>> = (1..=3)
//!     .map(|_| {
//!         Box::new(|ctx: &mut PartyCtx<u64>| {
//!             ctx.send_to_all(ctx.id() as u64);
//!             let inbox = ctx.next_round();
//!             inbox.iter().map(|r| r.msg).sum::<u64>()
//!         }) as Behavior<u64, u64>
//!     })
//!     .collect();
//! let result = run_network(3, 42, behaviors);
//! assert_eq!(result.outputs, vec![Some(6), Some(6), Some(6)]);
//! ```

//! # Sans-IO round engine
//!
//! Protocol logic can also be written transport-free as a
//! [`RoundMachine`]: a state machine whose [`round`](RoundMachine::round)
//! method maps an [`Inbox`] view to an [`Outbox`] of sends (or a final
//! output). Three interchangeable executors drive machines:
//!
//! * [`run_machines`] — the scoped-thread runner above, with a thin
//!   blocking driver per party ([`drive_blocking`]);
//! * [`StepRunner`] — a deterministic single-threaded executor that
//!   interleaves all parties round-by-round with no threads or barriers,
//!   making big-n sweeps cheap;
//! * [`ParRunner`] — a deterministic work-stealing pool that steps the
//!   independent parties of each round concurrently and merges outboxes
//!   in id order at round boundaries, for wall-clock speed at big n.
//!
//! All executors share sequence numbering, RNG derivation, and cost
//! accounting, so the same seed yields byte-identical transcripts and
//! identical cost reports under any of them. Each in-flight message copy also
//! passes a **message hop** where an optional [`MsgTap`] adversary can
//! drop, delay, or tamper per message (see [`run_network_with_tap`],
//! [`StepRunner::with_tap`]).

mod adversary;
mod chaos;
mod embed;
mod machine;
mod network;
mod par;
mod router;
mod step;

pub use adversary::{crash_immediately, FaultPlan, MsgFate, MsgHop, MsgTap};
pub use chaos::{AdaptiveAdversary, Attack, CorruptionHandle};
pub use embed::Embeds;
pub use machine::{
    drive_blocking, drive_blocking_traced, BoxedMachine, Chain, FlushStats, MachineExt, Map,
    Outbox, RoundMachine, RoundView, Step,
};
pub use network::{
    run_machines, run_machines_traced, run_machines_with_tap, run_network, run_network_with_tap,
    Behavior, PartyCtx, RunResult,
};
pub use par::ParRunner;
pub use router::{Inbox, PartyId, Received, RoundProfile};
pub use step::StepRunner;

pub use dprbg_metrics::WireSize;
pub use dprbg_trace::{Trace, TraceConfig, TraceMode};
