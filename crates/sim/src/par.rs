//! The deterministic work-stealing parallel executor.
//!
//! [`ParRunner`] drives one [`RoundMachine`] per party like
//! [`StepRunner`](crate::StepRunner) does, but steps the *independent*
//! parties of each round concurrently on a small in-tree work-stealing
//! thread pool, then merges their outboxes on the coordinating thread in
//! party-id order at the round boundary. The result is byte-identical to
//! `StepRunner` — same transcripts, same [`CostReport`], same
//! [`RoundProfile`]s, same logical traces — the pool only changes
//! wall-clock time (validated end-to-end in `tests/executors.rs`).
//!
//! # Why determinism survives the parallelism
//!
//! Within one generation, party machines are *independent*: a machine
//! observes only its own state, its own per-party RNG, and the inbox
//! frozen at the previous round boundary. Nothing a machine does mid-round
//! can influence another machine's round — messages only travel at round
//! flips. So the `machine.round()` calls commute, and running them on
//! worker threads in any interleaving is observationally equal to
//! `StepRunner`'s id-order loop. Everything that is *not* commutative is
//! kept on the coordinating thread, in exactly `StepRunner`'s order:
//!
//! * **Outbox flushes** (sequence numbers, message/byte charges) happen at
//!   merge time, party 1 first. A broadcast's `seq` allocation therefore
//!   never depends on which worker finished first.
//! * **Adversary taps** ([`MsgTap`]) see message hops in the same id-major,
//!   send-order-minor sequence as under `StepRunner`, so even *stateful*
//!   taps fold identically at round boundaries.
//! * **Round flips** sort deliveries by `(sender, send order)` — the same
//!   canonical order every executor in this crate uses.
//!
//! # Cost attribution
//!
//! The thread-local cost counters are windowed twice per party round: the
//! worker measures the `machine.round()` window on its own thread, the
//! merge measures the flush window on the coordinator, and the two deltas
//! sum to exactly the single window `StepRunner` records (the counters are
//! monotone thread-locals; disjoint windows over the same operations sum
//! to the same totals regardless of which thread hosted them).
//!
//! # Scheduling
//!
//! Each generation's live parties are dealt round-robin onto per-worker
//! deques; a worker pops from the front of its own deque and steals from
//! the back of others when it runs dry, so an unbalanced round (one party
//! interpolating while the rest idle) still keeps every core busy. Two
//! barriers bracket the compute phase of each generation; the coordinator
//! merges between them. The pool is hermetic: scoped `std::thread`s, no
//! global state, nothing outlives [`ParRunner::run`].

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

use dprbg_metrics::{comm, CostReport, CostSnapshot, WireSize};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;
use dprbg_trace::{PartyTracer, Trace, TraceConfig};

use crate::adversary::{MsgFate, MsgHop, MsgTap};
use crate::machine::{BoxedMachine, RoundView, RunResult, Step};
use crate::router::{Inbox, PartyId, Received, RoundProfile};

/// Default cap on rounds before the runner declares non-termination.
const DEFAULT_MAX_ROUNDS: u64 = 1 << 20;

/// The deterministic work-stealing parallel executor (see module docs).
pub struct ParRunner<M> {
    n: usize,
    seed: u64,
    threads: usize,
    tap: Option<Box<dyn MsgTap<M>>>,
    max_rounds: u64,
    trace: Option<TraceConfig>,
}

/// Everything a worker needs to step one party, plus the slot where it
/// parks the result for the coordinator to merge.
struct WorkSlot<M, Out> {
    machine: BoxedMachine<M, Out>,
    rng: StdRng,
    round: u64,
    inbox: Option<Inbox<M>>,
    outcome: Option<Outcome<M, Out>>,
    done: bool,
}

/// What one worker-side `machine.round()` produced.
struct Outcome<M, Out> {
    /// `Err(())` if the machine panicked (contained, like `StepRunner`).
    step: Result<Step<M, Out>, ()>,
    /// Cost delta of the `machine.round()` window on the worker thread.
    delta: CostSnapshot,
    /// Phase label captured immediately before the round ran.
    phase: &'static str,
}

/// Shared pool state: per-worker deques plus the two per-generation
/// barriers (`start` releases workers into a generation, `finish` hands
/// control back to the coordinator for the merge).
struct Pool {
    deques: Vec<Mutex<VecDeque<usize>>>,
    start: Barrier,
    finish: Barrier,
    shutdown: AtomicBool,
}

impl Pool {
    fn new(threads: usize) -> Self {
        Pool {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            start: Barrier::new(threads + 1),
            finish: Barrier::new(threads + 1),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Claim the next task for worker `w`: own deque front first, then
    /// steal from the back of the others.
    fn claim(&self, w: usize) -> Option<usize> {
        if let Some(id) = self.deques[w].lock().expect("deque lock").pop_front() {
            return Some(id);
        }
        let k = self.deques.len();
        for off in 1..k {
            if let Some(id) =
                self.deques[(w + off) % k].lock().expect("deque lock").pop_back()
            {
                return Some(id);
            }
        }
        None
    }
}

/// Releases the parked workers for exit if the coordinator leaves the
/// round loop — normally or by panic (`max_rounds` backstop, outbox-size
/// assert). Without this, a coordinator panic would deadlock the scope
/// join on the start barrier.
struct ShutdownGuard<'a>(&'a Pool);

impl Drop for ShutdownGuard<'_> {
    fn drop(&mut self) {
        self.0.shutdown.store(true, Ordering::Release);
        self.0.start.wait();
    }
}

fn worker_loop<M, Out>(w: usize, pool: &Pool, slots: &[Mutex<WorkSlot<M, Out>>], n: usize)
where
    M: Clone + WireSize + Send,
    Out: Send,
{
    loop {
        pool.start.wait();
        if pool.shutdown.load(Ordering::Acquire) {
            return;
        }
        while let Some(id) = pool.claim(w) {
            let mut guard = slots[id - 1].lock().expect("work slot lock");
            let slot = &mut *guard;
            let inbox = slot.inbox.take().unwrap_or_else(Inbox::empty);
            let phase = slot.machine.phase_name();
            let machine = &mut slot.machine;
            let rng = &mut slot.rng;
            let round = slot.round;
            let before = CostSnapshot::capture();
            // A panicking machine unwinds only to here — the guard is
            // released normally afterwards, so the mutex is not poisoned
            // and the party is reported `done` like under `StepRunner`.
            let step = catch_unwind(AssertUnwindSafe(|| {
                machine.round(RoundView { id, n, round, inbox: &inbox, rng })
            }))
            .map_err(drop);
            let delta = CostSnapshot::capture().since(&before);
            slot.outcome = Some(Outcome { step, delta, phase });
        }
        pool.finish.wait();
    }
}

impl<M: Clone + WireSize + Send> ParRunner<M> {
    /// A runner for `n` parties, all randomness derived from `seed` with
    /// the same per-party derivation as the other executors.
    ///
    /// The pool defaults to `min(available cores, n)` workers; see
    /// [`with_threads`](Self::with_threads). Thread count never affects
    /// results, only wall-clock.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, seed: u64) -> Self {
        assert!(n >= 1, "need at least one party");
        let threads = std::thread::available_parallelism().map_or(1, usize::from).min(n).max(1);
        ParRunner {
            n,
            seed,
            threads,
            tap: None,
            max_rounds: DEFAULT_MAX_ROUNDS,
            trace: None,
        }
    }

    /// Override the worker-thread count (clamped to at least 1). A
    /// single-threaded pool is a useful determinism control: it must —
    /// and does — produce the same bytes as any wider pool.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The worker-thread count this runner will use.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Install a per-message adversary at the message hop. The tap runs
    /// on the coordinating thread in `StepRunner`'s hop order, so
    /// stateful adversaries behave identically under both executors.
    pub fn with_tap(mut self, tap: impl MsgTap<M> + 'static) -> Self {
        self.tap = Some(Box::new(tap));
        self
    }

    /// Record a logical-time trace of the run (see `dprbg_trace`).
    /// Traces are keyed by `(party, logical round)`, never by wall-clock
    /// or thread identity, so the recorded stream is byte-identical to
    /// [`StepRunner::with_trace`](crate::StepRunner::with_trace).
    pub fn with_trace(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Override the non-termination backstop (default 2²⁰ rounds).
    pub fn with_max_rounds(mut self, max_rounds: u64) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Drive every machine to completion and return the same
    /// [`RunResult`] the other executors produce. A machine that panics
    /// is contained (`None` output) and the rest keep running.
    ///
    /// # Panics
    ///
    /// Panics if the machine count differs from `n`, or if any machine is
    /// still running after the `max_rounds` backstop.
    pub fn run<Out: Send>(mut self, machines: Vec<BoxedMachine<M, Out>>) -> RunResult<Out> {
        let n = self.n;
        assert_eq!(machines.len(), n, "need exactly one machine per party");
        let threads = self.threads.min(n);
        let slots: Vec<Mutex<WorkSlot<M, Out>>> = machines
            .into_iter()
            .enumerate()
            .map(|(idx, machine)| {
                Mutex::new(WorkSlot {
                    machine,
                    rng: StdRng::seed_from_u64(
                        self.seed ^ ((idx as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                    ),
                    round: 0,
                    inbox: Some(Inbox::empty()),
                    outcome: None,
                    done: false,
                })
            })
            .collect();
        let pool = Pool::new(threads);

        // Coordinator-side state, mirroring StepRunner field for field.
        let mut tracers: Option<Vec<PartyTracer>> =
            self.trace.map(|cfg| (1..=n).map(|id| PartyTracer::new(id, cfg)).collect());
        let mut seqs: Vec<u32> = vec![0; n];
        let mut costs: Vec<CostSnapshot> = vec![CostSnapshot::default(); n];
        let mut outputs: Vec<Option<Out>> = (0..n).map(|_| None).collect();
        let mut pending: Vec<Vec<Received<M>>> = (0..n).map(|_| Vec::new()).collect();
        let mut delayed: Vec<(u64, PartyId, Received<M>)> = Vec::new();
        let mut profile: Vec<RoundProfile> = Vec::new();
        let mut active = n;
        let mut generation: u64 = 0;

        std::thread::scope(|scope| {
            for w in 0..threads {
                let pool = &pool;
                let slots = &slots;
                scope.spawn(move || worker_loop(w, pool, slots, n));
            }
            let _guard = ShutdownGuard(&pool);

            while active > 0 {
                assert!(
                    generation < self.max_rounds,
                    "ParRunner exceeded {} rounds without terminating",
                    self.max_rounds
                );

                // Deal the generation's live parties onto the worker
                // deques (workers are parked at the start barrier).
                let mut dealt = 0usize;
                for id in 1..=n {
                    if !slots[id - 1].lock().expect("work slot lock").done {
                        pool.deques[dealt % threads]
                            .lock()
                            .expect("deque lock")
                            .push_back(id);
                        dealt += 1;
                    }
                }

                // Compute phase: workers step every live party once.
                pool.start.wait();
                pool.finish.wait();

                // Merge phase, in party-id order — the exact loop body of
                // StepRunner with the machine call already performed.
                for id in 1..=n {
                    let mut guard = slots[id - 1].lock().expect("work slot lock");
                    if guard.done {
                        continue;
                    }
                    let outcome =
                        guard.outcome.take().expect("worker stepped every live party");
                    let round_now = guard.round;
                    if let Some(tracers) = tracers.as_mut() {
                        tracers[id - 1].begin(round_now, outcome.phase);
                    }
                    let before = CostSnapshot::capture();
                    match outcome.step {
                        Ok(Step::Continue(outbox)) => {
                            assert_eq!(
                                outbox.n(),
                                n,
                                "outbox built for a different network size"
                            );
                            comm::count_rounds(1);
                            let tap = &mut self.tap;
                            let stats = outbox.flush(id, &mut seqs[id - 1], |to, rcv| {
                                let rcv = match tap.as_deref_mut() {
                                    None => rcv,
                                    Some(tap) => {
                                        let fate = tap.intercept(MsgHop {
                                            from: rcv.from,
                                            to,
                                            round: generation,
                                            broadcast: rcv.broadcast,
                                            msg: &rcv.msg,
                                        });
                                        match fate {
                                            MsgFate::Deliver => rcv,
                                            MsgFate::Drop => return,
                                            MsgFate::Delay(extra) => {
                                                delayed.push((generation + 1 + extra, to, rcv));
                                                return;
                                            }
                                            MsgFate::Tamper(msg) => Received { msg, ..rcv },
                                        }
                                    }
                                };
                                pending[to - 1].push(rcv);
                            });
                            if let Some(tracers) = tracers.as_mut() {
                                tracers[id - 1].flush(round_now, stats.messages, stats.bytes);
                            }
                            guard.round += 1;
                        }
                        Ok(Step::Done(out)) => {
                            outputs[id - 1] = Some(out);
                            guard.done = true;
                            active -= 1;
                        }
                        Err(()) => {
                            guard.done = true;
                            active -= 1;
                        }
                    }
                    // Worker window (machine) + coordinator window (flush)
                    // = StepRunner's single window around both.
                    let delta = outcome.delta.plus(&CostSnapshot::capture().since(&before));
                    costs[id - 1] = costs[id - 1].plus(&delta);
                    if let Some(tracers) = tracers.as_mut() {
                        tracers[id - 1].end(round_now, delta);
                    }
                }

                if active == 0 {
                    // Nobody is left to observe the next round; like the
                    // other executors' final leave, the last pending sends
                    // never flip and no profile entry is recorded.
                    break;
                }
                generation += 1;
                let mut deliveries = 0;
                for (to0, queue) in pending.iter_mut().enumerate() {
                    let mut msgs = std::mem::take(queue);
                    let mut i = 0;
                    while i < delayed.len() {
                        if delayed[i].0 <= generation && delayed[i].1 == to0 + 1 {
                            let (_, _, rcv) = delayed.swap_remove(i);
                            msgs.push(rcv);
                        } else {
                            i += 1;
                        }
                    }
                    msgs.sort_by_key(|r| (r.from, r.seq));
                    deliveries += msgs.len();
                    slots[to0].lock().expect("work slot lock").inbox =
                        Some(Inbox::from_sorted(msgs));
                }
                profile.push(RoundProfile { deliveries, live_parties: active });
            }
            // `_guard` drops here: shutdown flag + one last start-barrier
            // wait releases the parked workers to exit before scope join.
        });

        RunResult {
            outputs,
            report: CostReport::from_snapshots(costs),
            rounds: profile,
            trace: tracers
                .map(|ts| Trace::from_parties(ts.into_iter().map(PartyTracer::into_events))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::RoundMachine;
    use crate::step::StepRunner;

    /// Sends `id` to everyone in round 0, outputs the sorted senders seen
    /// in round 1.
    struct Gossip;

    impl RoundMachine<u64> for Gossip {
        type Output = Vec<u64>;
        fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, Vec<u64>> {
            if view.round == 0 {
                let mut out = view.outbox();
                out.send_to_all(view.id as u64);
                Step::Continue(out)
            } else {
                Step::Done(view.inbox.iter().map(|r| r.msg).collect())
            }
        }
    }

    fn gossip_fleet(n: usize) -> Vec<BoxedMachine<u64, Vec<u64>>> {
        (0..n).map(|_| Box::new(Gossip) as BoxedMachine<u64, Vec<u64>>).collect()
    }

    #[test]
    fn parallel_round_trip() {
        let res = ParRunner::new(4, 9).run(gossip_fleet(4));
        assert_eq!(res.report.comm.rounds, 1);
        assert_eq!(res.report.comm.messages, 16);
        assert_eq!(res.rounds.len(), 1);
        assert_eq!(res.rounds[0].deliveries, 16);
        assert_eq!(res.rounds[0].live_parties, 4);
        let expect: Vec<u64> = vec![1, 2, 3, 4];
        assert_eq!(res.unwrap_all(), vec![expect.clone(); 4]);
    }

    #[test]
    fn matches_step_runner_exactly() {
        let stepped = StepRunner::new(5, 77).run(gossip_fleet(5));
        let parallel = ParRunner::new(5, 77).run(gossip_fleet(5));
        assert_eq!(stepped.outputs, parallel.outputs);
        assert_eq!(stepped.report, parallel.report);
        assert_eq!(stepped.rounds, parallel.rounds);
    }

    #[test]
    fn thread_count_never_changes_results() {
        let baseline = ParRunner::new(6, 123).with_threads(1).run(gossip_fleet(6));
        for threads in [2, 3, 8, 32] {
            let res = ParRunner::new(6, 123).with_threads(threads).run(gossip_fleet(6));
            assert_eq!(res.outputs, baseline.outputs, "threads = {threads}");
            assert_eq!(res.report, baseline.report, "threads = {threads}");
            assert_eq!(res.rounds, baseline.rounds, "threads = {threads}");
        }
    }

    #[test]
    fn panicking_machine_is_contained() {
        struct Bomb;
        impl RoundMachine<u64> for Bomb {
            type Output = Vec<u64>;
            fn round(&mut self, _view: RoundView<'_, u64>) -> Step<u64, Vec<u64>> {
                panic!("byzantine meltdown");
            }
        }
        let mut machines = gossip_fleet(3);
        machines[1] = Box::new(Bomb);
        let res = ParRunner::new(3, 1).run(machines);
        assert!(res.outputs[1].is_none());
        assert_eq!(res.outputs[0], Some(vec![1, 3]));
        assert_eq!(res.outputs[2], Some(vec![1, 3]));
    }

    #[test]
    fn per_party_rng_matches_other_executors() {
        struct Draw;
        impl RoundMachine<u64> for Draw {
            type Output = u64;
            fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, u64> {
                use dprbg_rng::RngExt;
                Step::Done(view.rng.random::<u64>())
            }
        }
        let fleet = || (0..3).map(|_| Box::new(Draw) as BoxedMachine<u64, u64>).collect();
        let a = ParRunner::new(3, 99).run(fleet()).unwrap_all();
        let b = StepRunner::new(3, 99).run(fleet()).unwrap_all();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    #[should_panic(expected = "exceeded")]
    fn max_rounds_backstop_fires() {
        struct Forever;
        impl RoundMachine<u64> for Forever {
            type Output = ();
            fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, ()> {
                Step::Continue(view.outbox())
            }
        }
        let machines = vec![Box::new(Forever) as BoxedMachine<u64, ()>];
        let _ = ParRunner::new(1, 0).with_max_rounds(8).run(machines);
    }

    #[test]
    #[should_panic(expected = "one machine per party")]
    fn machine_count_must_match() {
        let _ = ParRunner::new(3, 0).run(gossip_fleet(2));
    }

    #[test]
    fn stateful_tap_folds_identically_across_executors() {
        use crate::adversary::{MsgFate, MsgHop, MsgTap};

        /// Drops every third hop it sees — order-sensitive on purpose.
        struct EveryThird(u64);
        impl MsgTap<u64> for EveryThird {
            fn intercept(&mut self, _hop: MsgHop<'_, u64>) -> MsgFate<u64> {
                self.0 += 1;
                if self.0.is_multiple_of(3) {
                    MsgFate::Drop
                } else {
                    MsgFate::Deliver
                }
            }
        }

        let stepped = StepRunner::new(5, 7).with_tap(EveryThird(0)).run(gossip_fleet(5));
        let parallel = ParRunner::new(5, 7).with_tap(EveryThird(0)).run(gossip_fleet(5));
        assert_eq!(stepped.outputs, parallel.outputs);
        assert_eq!(stepped.report, parallel.report);
        assert_eq!(stepped.rounds, parallel.rounds);
    }

    #[test]
    fn delaying_tap_matches_step_runner() {
        use crate::adversary::{MsgFate, MsgHop, MsgTap};

        struct DelayOdd;
        impl MsgTap<u64> for DelayOdd {
            fn intercept(&mut self, hop: MsgHop<'_, u64>) -> MsgFate<u64> {
                if hop.from % 2 == 1 {
                    MsgFate::Delay(1)
                } else {
                    MsgFate::Deliver
                }
            }
        }

        /// Gossips for several rounds so delayed messages can mature.
        struct SlowGossip;
        impl RoundMachine<u64> for SlowGossip {
            type Output = Vec<u64>;
            fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, Vec<u64>> {
                if view.round < 3 {
                    let mut out = view.outbox();
                    out.send_to_all(view.round * 100 + view.id as u64);
                    Step::Continue(out)
                } else {
                    Step::Done(view.inbox.iter().map(|r| r.msg).collect())
                }
            }
        }
        let fleet = || {
            (0..4)
                .map(|_| Box::new(SlowGossip) as BoxedMachine<u64, Vec<u64>>)
                .collect::<Vec<_>>()
        };
        let stepped = StepRunner::new(4, 11).with_tap(DelayOdd).run(fleet());
        let parallel = ParRunner::new(4, 11).with_tap(DelayOdd).run(fleet());
        assert_eq!(stepped.outputs, parallel.outputs);
        assert_eq!(stepped.report, parallel.report);
        assert_eq!(stepped.rounds, parallel.rounds);
    }
}
