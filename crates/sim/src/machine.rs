//! The sans-IO round engine: protocol logic as explicit round machines.
//!
//! A [`RoundMachine`] owns a protocol's state and exposes exactly one
//! entry point, [`round`](RoundMachine::round): given everything delivered
//! at the last round boundary (a [`RoundView`]), it either queues this
//! round's sends into an [`Outbox`] and yields [`Step::Continue`], or
//! terminates with [`Step::Done`]. The machine never touches a socket,
//! thread, or barrier — *how* the outbox reaches the other parties is an
//! executor concern, so the same machine runs unchanged under the
//! deterministic single-threaded [`StepRunner`](crate::StepRunner) and the
//! work-stealing [`ParRunner`](crate::ParRunner).
//!
//! Two invariants make the executors interchangeable:
//!
//! 1. **Identical cost accounting.** `Outbox::flush` is the single place
//!    where queued envelopes become deliveries, sequence numbers, and
//!    [`comm`] counter increments — both executors call it, so a machine's
//!    `CostReport` cannot depend on the executor.
//! 2. **Identical randomness.** Executors derive each party's RNG from the
//!    master seed the same way, and a machine only draws through
//!    [`RoundView::rng`].
//!
//! The first `round` call sees an empty inbox (there is no round `-1` to
//! deliver from); a machine's initial sends happen there.

use dprbg_metrics::{comm, CostReport, WireSize};
use dprbg_rng::rngs::StdRng;
use dprbg_trace::Trace;

use crate::embed::Embeds;
use crate::router::{Inbox, PartyId, Received, RoundProfile};

/// What a machine does with its round: keep going (with sends) or finish.
#[derive(Debug)]
pub enum Step<M, Out> {
    /// The protocol continues; deliver these envelopes at the next round
    /// boundary and call [`RoundMachine::round`] again with the resulting
    /// inbox.
    Continue(Outbox<M>),
    /// The protocol finished with this output. The executor must not call
    /// `round` again.
    Done(Out),
}

/// Everything a machine may observe in one round: identity, the inbox
/// delivered at the last round boundary, and this party's private
/// randomness.
pub struct RoundView<'a, M> {
    /// This party's 1-based identifier.
    pub id: PartyId,
    /// The total number of parties.
    pub n: usize,
    /// Rounds this machine has already completed (0 on the first call).
    pub round: u64,
    /// Messages delivered to this party at the last round boundary.
    pub inbox: &'a Inbox<M>,
    /// This party's private randomness (deterministic per master seed).
    pub rng: &'a mut StdRng,
}

impl<'a, M> RoundView<'a, M> {
    /// A fresh outbox sized for this network.
    pub fn outbox(&self) -> Outbox<M> {
        Outbox::new(self.n)
    }

    /// Reborrow the view so it can be lent to a sub-machine and used again
    /// afterwards (embedding one machine inside another).
    pub fn reborrow(&mut self) -> RoundView<'_, M> {
        RoundView {
            id: self.id,
            n: self.n,
            round: self.round,
            inbox: self.inbox,
            rng: self.rng,
        }
    }

    /// The view as presented to a successor machine that starts mid-run:
    /// a fresh round counter and (on its very first call) an inbox that
    /// is not the predecessor's leftover.
    fn rebase<'b>(&'b mut self, base: u64, inbox: &'b Inbox<M>) -> RoundView<'b, M> {
        RoundView {
            id: self.id,
            n: self.n,
            round: self.round - base,
            inbox,
            rng: self.rng,
        }
    }
}

/// Where one queued envelope is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    /// Private channel to one party.
    One(PartyId),
    /// Private channels to every party (n unicasts — the paper's
    /// point-to-point "send to all players").
    All,
    /// The ideal broadcast channel (one message in the §3 cost model).
    Broadcast,
}

/// A round's queued sends, recorded without touching the network or the
/// cost counters. `Outbox::flush` later expands each envelope into
/// deliveries with fixed semantics, so metrics and inbox ordering are
/// executor-independent.
#[derive(Debug)]
pub struct Outbox<M> {
    n: usize,
    envelopes: Vec<(Dest, M)>,
}

impl<M> Outbox<M> {
    /// An empty outbox for an `n`-party network.
    pub fn new(n: usize) -> Self {
        Outbox { n, envelopes: Vec::new() }
    }

    /// Queue `msg` for party `to` over the private channel.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid party id.
    pub fn send(&mut self, to: PartyId, msg: M) {
        assert!((1..=self.n).contains(&to), "invalid recipient {to}");
        self.envelopes.push((Dest::One(to), msg));
    }

    /// Queue `msg` for every party (including self) over private
    /// channels: `n` messages in the cost model.
    pub fn send_to_all(&mut self, msg: M) {
        self.envelopes.push((Dest::All, msg));
    }

    /// Queue `msg` on the ideal broadcast channel: every party receives
    /// the identical value, charged as **one** message (Lemma 2/4
    /// counting).
    pub fn broadcast(&mut self, msg: M) {
        self.envelopes.push((Dest::Broadcast, msg));
    }

    /// Number of queued envelopes (a broadcast or send-to-all counts as
    /// one envelope here, before expansion).
    pub fn len(&self) -> usize {
        self.envelopes.len()
    }

    /// Whether nothing was queued this round.
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty()
    }

    /// Re-wrap every queued payload, preserving destinations and order —
    /// how an adapter lifts a sub-protocol's outbox onto a composite wire
    /// type.
    pub fn map<N>(self, mut f: impl FnMut(M) -> N) -> Outbox<N> {
        Outbox {
            n: self.n,
            envelopes: self.envelopes.into_iter().map(|(d, m)| (d, f(m))).collect(),
        }
    }

    /// Move every envelope of `other` onto the back of this outbox,
    /// preserving both orders — how a driver that steps several
    /// sub-machines in one round merges their sends onto one wire.
    ///
    /// # Panics
    ///
    /// Panics if the outboxes are sized for different networks.
    pub fn append(&mut self, other: Outbox<M>) {
        assert_eq!(self.n, other.n, "cannot merge outboxes of different networks");
        self.envelopes.extend(other.envelopes);
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }
}

/// What one [`Outbox`] flush charged to the comm counters: the totals the
/// executors hand to the trace layer as a `Flush` event. Both executors
/// observe the same envelopes, so the stats (like the counters) are
/// executor-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushStats {
    /// Messages charged (one per unicast copy, one per ideal broadcast).
    pub messages: u64,
    /// Payload bytes charged.
    pub bytes: u64,
}

impl<M: Clone + WireSize> Outbox<M> {
    /// Expand every envelope into deliveries, assigning sequence numbers
    /// and charging the communication counters: one message per unicast
    /// copy, one message per ideal broadcast. Returns the charged totals.
    pub(crate) fn flush(
        self,
        from: PartyId,
        seq: &mut u32,
        mut post: impl FnMut(PartyId, Received<M>),
    ) -> FlushStats {
        let n = self.n;
        let mut stats = FlushStats::default();
        let charge = |stats: &mut FlushStats, bytes: u64| {
            comm::count_message(bytes);
            stats.messages += 1;
            stats.bytes += bytes;
        };
        for (dest, msg) in self.envelopes {
            match dest {
                Dest::One(to) => {
                    charge(&mut stats, msg.wire_bytes() as u64);
                    post(to, Received { from, broadcast: false, seq: *seq, msg });
                    *seq += 1;
                }
                Dest::All => {
                    for to in 1..=n {
                        charge(&mut stats, msg.wire_bytes() as u64);
                        post(
                            to,
                            Received { from, broadcast: false, seq: *seq, msg: msg.clone() },
                        );
                        *seq += 1;
                    }
                }
                Dest::Broadcast => {
                    charge(&mut stats, msg.wire_bytes() as u64);
                    for to in 1..=n {
                        post(to, Received { from, broadcast: true, seq: *seq, msg: msg.clone() });
                    }
                    *seq += 1;
                }
            }
        }
        stats
    }
}

/// The outcome of driving a machine fleet to completion.
#[derive(Debug)]
pub struct RunResult<Out> {
    /// Each party's protocol output, in id order; `None` if that party's
    /// machine panicked.
    pub outputs: Vec<Option<Out>>,
    /// The aggregated cost report (per-party computation, total
    /// communication).
    pub report: CostReport,
    /// Per-round delivery profile — the protocol's round anatomy.
    pub rounds: Vec<RoundProfile>,
    /// The merged logical trace, when the run was executed with tracing
    /// ([`StepRunner::with_trace`](crate::StepRunner::with_trace),
    /// [`ParRunner::with_trace`](crate::ParRunner::with_trace)).
    pub trace: Option<Trace>,
}

impl<Out> RunResult<Out> {
    /// The outputs of the parties that completed, paired with their ids.
    pub fn completed(&self) -> impl Iterator<Item = (PartyId, &Out)> {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|out| (i + 1, out)))
    }

    /// Unwrap every output, panicking if any party failed.
    ///
    /// # Panics
    ///
    /// Panics if any party's machine panicked.
    pub fn unwrap_all(self) -> Vec<Out> {
        self.outputs
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("party {} panicked", i + 1)))
            .collect()
    }
}

/// A protocol written as an explicit round-state machine.
///
/// Implementations must be executor-agnostic: observe only the
/// [`RoundView`], send only through the returned [`Outbox`], and keep all
/// cross-round state in `self`.
pub trait RoundMachine<M> {
    /// What the protocol produces when it terminates.
    type Output;

    /// Execute one round: consume the inbox, queue this round's sends, and
    /// either continue or finish.
    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output>;

    /// The label of the phase the *next* [`round`](RoundMachine::round)
    /// call will execute — pure state inspection, called by tracing
    /// executors immediately before `round` to tag that round's span.
    ///
    /// The default covers machines that never override it; protocol
    /// machines report their stage (`"bit-gen/deal"`, `"ba/suggest"`, …)
    /// and composite machines delegate to the active sub-machine.
    fn phase_name(&self) -> &'static str {
        "round"
    }
}

impl<M, T: RoundMachine<M> + ?Sized> RoundMachine<M> for Box<T> {
    type Output = T::Output;
    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output> {
        (**self).round(view)
    }
    fn phase_name(&self) -> &'static str {
        (**self).phase_name()
    }
}

/// A type-erased machine, as consumed by the executors.
pub type BoxedMachine<M, Out> = Box<dyn RoundMachine<M, Output = Out> + Send>;

/// A machine defined by a closure over the [`RoundView`] — the idiomatic
/// way to script one-off parties (Byzantine test scripts, probe parties)
/// without naming a struct:
///
/// ```
/// use dprbg_sim::{from_fn, RoundView, Step, StepRunner, BoxedMachine};
/// let fleet: Vec<BoxedMachine<u32, usize>> = (0..3)
///     .map(|_| {
///         Box::new(from_fn(|view: RoundView<'_, u32>| match view.round {
///             0 => {
///                 let mut out = view.outbox();
///                 out.send_to_all(7);
///                 Step::Continue(out)
///             }
///             _ => Step::Done(view.inbox.len()),
///         })) as BoxedMachine<u32, usize>
///     })
///     .collect();
/// assert_eq!(StepRunner::new(3, 1).run(fleet).unwrap_all(), vec![3, 3, 3]);
/// ```
pub struct FromFn<F> {
    f: F,
    label: &'static str,
}

/// Build a [`FromFn`] machine from a closure.
pub fn from_fn<M, Out, F>(f: F) -> FromFn<F>
where
    F: FnMut(RoundView<'_, M>) -> Step<M, Out>,
{
    FromFn { f, label: "scripted" }
}

impl<F> FromFn<F> {
    /// Override the phase label tracing executors record for this machine.
    pub fn labelled(mut self, label: &'static str) -> Self {
        self.label = label;
        self
    }
}

impl<M, Out, F> RoundMachine<M> for FromFn<F>
where
    F: FnMut(RoundView<'_, M>) -> Step<M, Out>,
{
    type Output = Out;

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Out> {
        (self.f)(view)
    }

    fn phase_name(&self) -> &'static str {
        self.label
    }
}

/// The crash-fault machine: the party goes down before sending anything
/// and outputs `Out::default()`. The executors keep the remaining parties
/// running; the crashed party simply never speaks.
pub fn silent<M, Out: Default>() -> FromFn<impl FnMut(RoundView<'_, M>) -> Step<M, Out>> {
    from_fn(|_view: RoundView<'_, M>| Step::Done(Out::default())).labelled("silent")
}

/// A machine that is already finished: its first `round` call returns
/// `Done(value)` without sending anything. The pure-transition glue for
/// [`looping`] — when a loop body's next state is known without another
/// network round, wrap it in `ready` and the transition costs nothing.
pub struct Ready<Out> {
    value: Option<Out>,
}

/// Build a [`Ready`] machine holding `value`.
pub fn ready<Out>(value: Out) -> Ready<Out> {
    Ready { value: Some(value) }
}

impl<M, Out> RoundMachine<M> for Ready<Out> {
    type Output = Out;

    fn round(&mut self, _view: RoundView<'_, M>) -> Step<M, Out> {
        match self.value.take() {
            Some(v) => Step::Done(v),
            // A `Done` machine is never driven again (executor contract).
            None => unreachable!("Ready machine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        "ready"
    }
}

/// Sequential composition: run `A`, then feed its output to a closure that
/// builds the successor machine `B`. Mirrors sequential control flow: when
/// `A` finishes in some round, `B`'s first (send) round executes in that
/// same round — exactly as straight-line code would call the next protocol
/// function immediately after the previous one returns.
pub struct Chain<A, B, F> {
    state: ChainState<A, B>,
    make: Option<F>,
}

enum ChainState<A, B> {
    First(A),
    /// `base` is the driver round in which `B` started; `B` sees rounds
    /// relative to it.
    Second { b: B, base: u64 },
}

impl<M, A, B, F> RoundMachine<M> for Chain<A, B, F>
where
    A: RoundMachine<M>,
    B: RoundMachine<M>,
    F: FnOnce(A::Output) -> B,
{
    type Output = B::Output;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, B::Output> {
        let a_out = match &mut self.state {
            ChainState::Second { b, base } => {
                let base = *base;
                let inbox = view.inbox;
                return b.round(view.rebase(base, inbox));
            }
            ChainState::First(a) => match a.round(view.reborrow()) {
                Step::Continue(out) => return Step::Continue(out),
                Step::Done(a_out) => a_out,
            },
        };
        let make = self.make.take().expect("Chain continuation already consumed");
        let mut b = make(a_out);
        // The successor starts in the same driver round with an empty
        // inbox (the predecessor consumed this round's deliveries) and a
        // round counter of its own.
        let base = view.round;
        let empty = Inbox::empty();
        let step = b.round(view.rebase(base, &empty));
        self.state = ChainState::Second { b, base };
        step
    }

    fn phase_name(&self) -> &'static str {
        match &self.state {
            ChainState::First(a) => a.phase_name(),
            ChainState::Second { b, .. } => b.phase_name(),
        }
    }
}

/// Transform a machine's output with a closure when it finishes.
pub struct Map<A, F> {
    inner: A,
    f: Option<F>,
}

impl<M, A, F, T> RoundMachine<M> for Map<A, F>
where
    A: RoundMachine<M>,
    F: FnOnce(A::Output) -> T,
{
    type Output = T;

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, T> {
        match self.inner.round(view) {
            Step::Continue(out) => Step::Continue(out),
            Step::Done(x) => Step::Done((self.f.take().expect("Map closure already consumed"))(x)),
        }
    }

    fn phase_name(&self) -> &'static str {
        self.inner.phase_name()
    }
}

/// What a [`Loop`]'s step closure decides after each iteration.
pub enum LoopControl<S, M, Out> {
    /// Run another machine; its output becomes the next loop state.
    Continue(BoxedMachine<M, S>),
    /// The loop is finished with this output.
    Break(Out),
}

/// State-threading iteration: repeatedly feed a state value to a closure
/// that either builds the next machine (whose output is the next state) or
/// breaks with the final output. The data-dependent sibling of [`Chain`]:
/// retry loops, draw-refill-draw beacons, and phase-by-phase agreement all
/// compile to it. Like `Chain`, a successor machine starts in the same
/// driver round its predecessor finished in, with an empty first inbox —
/// and a machine that finishes without sending (a pure computation) costs
/// no round at all, so several iterations can collapse into one round.
pub struct Loop<S, M, Out> {
    current: Option<(BoxedMachine<M, S>, u64)>,
    pending: Option<S>,
    #[allow(clippy::type_complexity)]
    next: Box<dyn FnMut(S) -> LoopControl<S, M, Out> + Send>,
}

/// Build a [`Loop`] from an initial state and a step closure.
pub fn looping<S, M, Out>(
    init: S,
    next: impl FnMut(S) -> LoopControl<S, M, Out> + Send + 'static,
) -> Loop<S, M, Out> {
    Loop { current: None, pending: Some(init), next: Box::new(next) }
}

impl<M, S, Out> RoundMachine<M> for Loop<S, M, Out> {
    type Output = Out;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Out> {
        // Only the machine already in flight at entry may read this
        // round's inbox; iterations started mid-round see an empty one.
        let mut inbox_fresh = self.current.is_some();
        loop {
            if self.current.is_none() {
                let state = self.pending.take().expect("loop state missing");
                match (self.next)(state) {
                    LoopControl::Continue(m) => self.current = Some((m, view.round)),
                    LoopControl::Break(out) => return Step::Done(out),
                }
            }
            let base = self.current.as_ref().map(|(_, b)| *b).expect("machine in flight");
            let empty = Inbox::empty();
            let inbox = if inbox_fresh { view.inbox } else { &empty };
            let step = {
                let (m, _) = self.current.as_mut().expect("machine in flight");
                m.round(view.rebase(base, inbox))
            };
            match step {
                Step::Continue(out) => return Step::Continue(out),
                Step::Done(s) => {
                    self.current = None;
                    self.pending = Some(s);
                    inbox_fresh = false;
                }
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.current {
            Some((m, _)) => m.phase_name(),
            None => "loop",
        }
    }
}

/// Run a sub-protocol inside a committee: the inner machine sees a
/// `c`-party network of committee ranks while its traffic rides the real
/// `n`-party wire.
///
/// `members` are the global ids of the committee, sorted ascending; rank
/// `r` (1-based) is the position in that list. The adapter
///
/// * presents the inner machine with `n = c` and `id = rank`,
/// * narrows the inbox to messages from members that carry an inner
///   payload (via [`Embeds::peek`]), re-addressed to ranks,
/// * expands the inner outbox: rank unicasts become global unicasts and
///   `send_to_all` becomes `c` unicasts to the members — so a committee
///   protocol costs `O(c²)` links, not `O(n²)`.
///
/// The ideal broadcast channel is **not** remapped: §4's protocols are
/// broadcast-free, and a committee-internal "broadcast" has no analogue on
/// the outer network. The inner machine must not call
/// [`Outbox::broadcast`].
pub struct Subnet<A, Inner> {
    members: Vec<PartyId>,
    rank: usize,
    round: u64,
    inner: A,
    _msg: std::marker::PhantomData<fn() -> Inner>,
}

impl<A, Inner> Subnet<A, Inner> {
    /// Wrap `inner` for committee member `my_id`.
    ///
    /// # Panics
    ///
    /// Panics if `members` is empty, unsorted, or does not contain
    /// `my_id`.
    pub fn new(members: Vec<PartyId>, my_id: PartyId, inner: A) -> Self {
        assert!(!members.is_empty(), "committee cannot be empty");
        assert!(members.windows(2).all(|w| w[0] < w[1]), "members must be sorted and unique");
        let rank = members
            .iter()
            .position(|&m| m == my_id)
            .map(|i| i + 1)
            .unwrap_or_else(|| panic!("party {my_id} is not a committee member"));
        Subnet { members, rank, round: 0, inner, _msg: std::marker::PhantomData }
    }

    /// This party's 1-based rank inside the committee.
    pub fn rank(&self) -> usize {
        self.rank
    }
}

impl<M, Inner, A> RoundMachine<M> for Subnet<A, Inner>
where
    M: Embeds<Inner>,
    Inner: Clone,
    A: RoundMachine<Inner>,
{
    type Output = A::Output;

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, A::Output> {
        let c = self.members.len();
        let mut msgs: Vec<Received<Inner>> = Vec::new();
        for rcv in view.inbox.iter() {
            if let Some(rank0) = self.members.iter().position(|&m| m == rcv.from) {
                if let Some(inner) = rcv.msg.peek() {
                    msgs.push(Received {
                        from: rank0 + 1,
                        broadcast: rcv.broadcast,
                        seq: rcv.seq,
                        msg: inner.clone(),
                    });
                }
            }
        }
        msgs.sort_by_key(|r| (r.from, r.seq));
        let inner_inbox = Inbox::from_messages(msgs);
        let inner_view = RoundView {
            id: self.rank,
            n: c,
            round: self.round,
            inbox: &inner_inbox,
            rng: view.rng,
        };
        match self.inner.round(inner_view) {
            Step::Continue(inner_out) => {
                self.round += 1;
                let mut out = Outbox::new(view.n);
                for (dest, msg) in inner_out.envelopes {
                    match dest {
                        Dest::One(rank) => out.send(self.members[rank - 1], M::wrap(msg)),
                        Dest::All => {
                            for &g in &self.members {
                                out.send(g, M::wrap(msg.clone()));
                            }
                        }
                        Dest::Broadcast => {
                            panic!("Subnet does not support the ideal broadcast channel")
                        }
                    }
                }
                Step::Continue(out)
            }
            Step::Done(out) => Step::Done(out),
        }
    }

    fn phase_name(&self) -> &'static str {
        self.inner.phase_name()
    }
}

/// Combinator methods on every [`RoundMachine`].
pub trait MachineExt<M>: RoundMachine<M> + Sized {
    /// Run `self` to completion, then the machine built from its output.
    fn then<B, F>(self, make: F) -> Chain<Self, B, F>
    where
        B: RoundMachine<M>,
        F: FnOnce(Self::Output) -> B,
    {
        Chain { state: ChainState::First(self), make: Some(make) }
    }

    /// Transform the final output.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        F: FnOnce(Self::Output) -> T,
    {
        Map { inner: self, f: Some(f) }
    }
}

impl<M, A: RoundMachine<M>> MachineExt<M> for A {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::step::StepRunner;

    /// Echo machine: round 0 sends `value` to everyone, round 1 sums what
    /// arrived.
    struct EchoSum {
        value: u32,
    }

    impl RoundMachine<u32> for EchoSum {
        type Output = u32;
        fn round(&mut self, view: RoundView<'_, u32>) -> Step<u32, u32> {
            if view.round == 0 {
                let mut out = view.outbox();
                out.send_to_all(self.value);
                Step::Continue(out)
            } else {
                Step::Done(view.inbox.iter().map(|r| r.msg).sum())
            }
        }
    }

    #[test]
    fn outbox_flush_matches_cost_model_counting() {
        // 2 unicasts + 1 send_to_all(3) + 1 broadcast over n = 3:
        // messages = 2 + 3 + 1, seqs = 2 + 3 + 1, posts = 2 + 3 + 3.
        let mut out = Outbox::<u32>::new(3);
        out.send(1, 7);
        out.send(3, 8);
        out.send_to_all(9);
        out.broadcast(10);
        let mut posts = Vec::new();
        let mut seq = 0;
        out.flush(2, &mut seq, |to, rcv| posts.push((to, rcv)));
        assert_eq!(seq, 6);
        assert_eq!(posts.len(), 8);
        let bcast: Vec<_> = posts.iter().filter(|(_, r)| r.broadcast).collect();
        assert_eq!(bcast.len(), 3);
        assert!(bcast.iter().all(|(_, r)| r.seq == 5 && r.msg == 10));
    }

    #[test]
    #[should_panic(expected = "invalid recipient")]
    fn outbox_rejects_out_of_range_recipient() {
        Outbox::<u32>::new(3).send(4, 0);
    }

    #[test]
    fn outbox_map_preserves_destinations_and_order() {
        let mut out = Outbox::<u32>::new(3);
        out.send(2, 5);
        out.send_to_all(6);
        let mapped = out.map(|v| v as u64 + 100);
        let mut posts = Vec::new();
        let mut seq = 0;
        mapped.flush(1, &mut seq, |to, rcv| posts.push((to, rcv.msg)));
        assert_eq!(posts, vec![(2, 105), (1, 106), (2, 106), (3, 106)]);
    }

    #[test]
    fn outbox_append_concatenates_in_order() {
        let mut a = Outbox::<u32>::new(3);
        a.send(1, 1);
        let mut b = Outbox::<u32>::new(3);
        b.send(2, 2);
        b.broadcast(3);
        a.append(b);
        let mut posts = Vec::new();
        let mut seq = 0;
        a.flush(0, &mut seq, |to, rcv| posts.push((to, rcv.msg, rcv.broadcast)));
        assert_eq!(
            posts,
            vec![(1, 1, false), (2, 2, false), (1, 3, true), (2, 3, true), (3, 3, true)]
        );
    }

    #[test]
    #[should_panic(expected = "different networks")]
    fn outbox_append_rejects_size_mismatch() {
        let mut a = Outbox::<u32>::new(3);
        a.append(Outbox::new(4));
    }

    #[test]
    fn chain_starts_successor_in_same_round() {
        // EchoSum (2 calls, 1 round) chained into another EchoSum keyed on
        // the first sum: total rounds per party = 2, not 3 — B's send
        // happens in the round A finishes.
        let machines: Vec<BoxedMachine<u32, u32>> = (0..3)
            .map(|i| {
                Box::new(EchoSum { value: i + 1 }.then(|sum| EchoSum { value: sum }))
                    as BoxedMachine<u32, u32>
            })
            .collect();
        let res = StepRunner::new(3, 1).run(machines);
        assert_eq!(res.report.comm.rounds, 2);
        // Round 1 sums: 1+2+3 = 6 for everyone; round 2 sums: 6*3 = 18.
        assert_eq!(res.unwrap_all(), vec![18, 18, 18]);
    }

    #[test]
    fn map_transforms_output() {
        let machines: Vec<BoxedMachine<u32, String>> = (0..2)
            .map(|i| {
                Box::new(EchoSum { value: i + 10 }.map(|sum| format!("sum={sum}")))
                    as BoxedMachine<u32, String>
            })
            .collect();
        let res = StepRunner::new(2, 1).run(machines);
        assert_eq!(res.unwrap_all(), vec!["sum=21".to_string(), "sum=21".to_string()]);
    }

    #[test]
    fn looping_threads_state_and_matches_chain_round_shape() {
        // Three EchoSum iterations, each seeded by the previous sum —
        // identical to a hand-rolled Chain of three: 3 rounds total.
        let fleet: Vec<BoxedMachine<u32, u32>> = (0..3)
            .map(|i| {
                Box::new(looping((0u32, i as u32 + 1), |(iter, value)| {
                    if iter == 3 {
                        LoopControl::Break(value)
                    } else {
                        LoopControl::Continue(Box::new(
                            EchoSum { value }.map(move |sum| (iter + 1, sum)),
                        ))
                    }
                })) as BoxedMachine<u32, u32>
            })
            .collect();
        let res = StepRunner::new(3, 1).run(fleet);
        assert_eq!(res.report.comm.rounds, 3);
        // 1+2+3 = 6 → 18 → 54 (each round every party echoes the same sum).
        assert_eq!(res.unwrap_all(), vec![54, 54, 54]);
    }

    #[test]
    fn looping_pure_iterations_cost_no_rounds() {
        // Machines that finish without sending collapse into zero rounds.
        let fleet: Vec<BoxedMachine<u32, u32>> = (0..2)
            .map(|_| {
                Box::new(looping(0u32, |count| {
                    if count == 5 {
                        LoopControl::Break(count)
                    } else {
                        LoopControl::Continue(Box::new(from_fn(move |_v: RoundView<'_, u32>| {
                            Step::Done(count + 1)
                        })))
                    }
                })) as BoxedMachine<u32, u32>
            })
            .collect();
        let res = StepRunner::new(2, 9).run(fleet);
        assert_eq!(res.report.comm.rounds, 0);
        assert_eq!(res.unwrap_all(), vec![5, 5]);
    }

    #[test]
    fn subnet_narrows_the_network_to_members() {
        /// Inner gossip over ranks: each member sends its rank, outputs
        /// the ranks it heard.
        struct RankGossip;
        impl RoundMachine<u32> for RankGossip {
            type Output = Vec<u32>;
            fn round(&mut self, view: RoundView<'_, u32>) -> Step<u32, Vec<u32>> {
                if view.round == 0 {
                    assert_eq!(view.n, 2, "inner machine must see the committee size");
                    let mut out = view.outbox();
                    out.send_to_all(view.id as u32);
                    Step::Continue(out)
                } else {
                    Step::Done(view.inbox.iter().map(|r| r.msg).collect())
                }
            }
        }
        // n = 4, committee {2, 4}: outsiders finish silently; members see
        // exactly the two ranks. The reflexive Embeds (u32 carries u32)
        // keeps the wire type plain.
        let members = vec![2usize, 4usize];
        let fleet: Vec<BoxedMachine<u32, Vec<u32>>> = (1..=4)
            .map(|id| {
                if members.contains(&id) {
                    Box::new(Subnet::new(members.clone(), id, RankGossip))
                        as BoxedMachine<u32, Vec<u32>>
                } else {
                    Box::new(silent())
                }
            })
            .collect();
        let res = StepRunner::new(4, 5).run(fleet);
        // send_to_all inside the subnet = c = 2 unicasts per member.
        assert_eq!(res.report.comm.messages, 4);
        assert_eq!(res.outputs[1], Some(vec![1, 2]));
        assert_eq!(res.outputs[3], Some(vec![1, 2]));
        assert_eq!(res.outputs[0], Some(vec![]));
    }
}
