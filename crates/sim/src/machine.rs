//! The sans-IO round engine: protocol logic as explicit round machines.
//!
//! A [`RoundMachine`] owns a protocol's state and exposes exactly one
//! entry point, [`round`](RoundMachine::round): given everything delivered
//! at the last round boundary (a [`RoundView`]), it either queues this
//! round's sends into an [`Outbox`] and yields [`Step::Continue`], or
//! terminates with [`Step::Done`]. The machine never touches a socket,
//! thread, or barrier — *how* the outbox reaches the other parties is an
//! executor concern, so the same machine runs unchanged under the
//! scoped-thread runner ([`run_machines`](crate::run_machines)) and the
//! deterministic single-threaded [`StepRunner`](crate::StepRunner).
//!
//! Two invariants make the executors interchangeable:
//!
//! 1. **Identical cost accounting.** `Outbox::flush` is the single place
//!    where queued envelopes become router posts, sequence numbers, and
//!    [`comm`] counter increments — both executors call it, so a machine's
//!    `CostReport` cannot depend on the executor.
//! 2. **Identical randomness.** Executors derive each party's RNG from the
//!    master seed the same way, and a machine only draws through
//!    [`RoundView::rng`].
//!
//! The first `round` call sees an empty inbox (there is no round `-1` to
//! deliver from); a machine's initial sends happen there.

use dprbg_metrics::{comm, CostSnapshot, WireSize};
use dprbg_rng::rngs::StdRng;
use dprbg_trace::PartyTracer;

use crate::network::PartyCtx;
use crate::router::{Inbox, PartyId, Received};

/// What a machine does with its round: keep going (with sends) or finish.
#[derive(Debug)]
pub enum Step<M, Out> {
    /// The protocol continues; deliver these envelopes at the next round
    /// boundary and call [`RoundMachine::round`] again with the resulting
    /// inbox.
    Continue(Outbox<M>),
    /// The protocol finished with this output. The executor must not call
    /// `round` again.
    Done(Out),
}

/// Everything a machine may observe in one round: identity, the inbox
/// delivered at the last round boundary, and this party's private
/// randomness.
pub struct RoundView<'a, M> {
    /// This party's 1-based identifier.
    pub id: PartyId,
    /// The total number of parties.
    pub n: usize,
    /// Rounds this machine has already completed (0 on the first call).
    pub round: u64,
    /// Messages delivered to this party at the last round boundary.
    pub inbox: &'a Inbox<M>,
    /// This party's private randomness (deterministic per master seed).
    pub rng: &'a mut StdRng,
}

impl<'a, M> RoundView<'a, M> {
    /// A fresh outbox sized for this network.
    pub fn outbox(&self) -> Outbox<M> {
        Outbox::new(self.n)
    }

    /// Reborrow the view so it can be lent to a sub-machine and used again
    /// afterwards (embedding one machine inside another).
    pub fn reborrow(&mut self) -> RoundView<'_, M> {
        RoundView {
            id: self.id,
            n: self.n,
            round: self.round,
            inbox: self.inbox,
            rng: self.rng,
        }
    }

    /// The view as presented to a successor machine that starts mid-run:
    /// a fresh round counter and (on its very first call) an inbox that
    /// is not the predecessor's leftover.
    fn rebase<'b>(&'b mut self, base: u64, inbox: &'b Inbox<M>) -> RoundView<'b, M> {
        RoundView {
            id: self.id,
            n: self.n,
            round: self.round - base,
            inbox,
            rng: self.rng,
        }
    }
}

/// Where one queued envelope is headed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dest {
    /// Private channel to one party.
    One(PartyId),
    /// Private channels to every party (n unicasts — the paper's
    /// point-to-point "send to all players").
    All,
    /// The ideal broadcast channel (one message in the §3 cost model).
    Broadcast,
}

/// A round's queued sends, recorded without touching the network or the
/// cost counters. `Outbox::flush` later expands each envelope with
/// exactly the semantics of the corresponding [`PartyCtx`] method, so
/// metrics and inbox ordering are executor-independent.
#[derive(Debug)]
pub struct Outbox<M> {
    n: usize,
    envelopes: Vec<(Dest, M)>,
}

impl<M> Outbox<M> {
    /// An empty outbox for an `n`-party network.
    pub fn new(n: usize) -> Self {
        Outbox { n, envelopes: Vec::new() }
    }

    /// Queue `msg` for party `to` over the private channel.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid party id.
    pub fn send(&mut self, to: PartyId, msg: M) {
        assert!((1..=self.n).contains(&to), "invalid recipient {to}");
        self.envelopes.push((Dest::One(to), msg));
    }

    /// Queue `msg` for every party (including self) over private
    /// channels: `n` messages in the cost model.
    pub fn send_to_all(&mut self, msg: M) {
        self.envelopes.push((Dest::All, msg));
    }

    /// Queue `msg` on the ideal broadcast channel: every party receives
    /// the identical value, charged as **one** message (Lemma 2/4
    /// counting).
    pub fn broadcast(&mut self, msg: M) {
        self.envelopes.push((Dest::Broadcast, msg));
    }

    /// Number of queued envelopes (a broadcast or send-to-all counts as
    /// one envelope here, before expansion).
    pub fn len(&self) -> usize {
        self.envelopes.len()
    }

    /// Whether nothing was queued this round.
    pub fn is_empty(&self) -> bool {
        self.envelopes.is_empty()
    }

    pub(crate) fn n(&self) -> usize {
        self.n
    }
}

/// What one [`Outbox`] flush charged to the comm counters: the totals the
/// executors hand to the trace layer as a `Flush` event. Both executors
/// observe the same envelopes, so the stats (like the counters) are
/// executor-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FlushStats {
    /// Messages charged (one per unicast copy, one per ideal broadcast).
    pub messages: u64,
    /// Payload bytes charged.
    pub bytes: u64,
}

impl<M: Clone + WireSize> Outbox<M> {
    /// Expand every envelope into router posts, assigning sequence numbers
    /// and charging the communication counters exactly as
    /// [`PartyCtx::send`], [`PartyCtx::send_to_all`], and
    /// [`PartyCtx::broadcast`] do: one message per unicast copy, one
    /// message per ideal broadcast. Returns the charged totals.
    pub(crate) fn flush(
        self,
        from: PartyId,
        seq: &mut u32,
        mut post: impl FnMut(PartyId, Received<M>),
    ) -> FlushStats {
        let n = self.n;
        let mut stats = FlushStats::default();
        let charge = |stats: &mut FlushStats, bytes: u64| {
            comm::count_message(bytes);
            stats.messages += 1;
            stats.bytes += bytes;
        };
        for (dest, msg) in self.envelopes {
            match dest {
                Dest::One(to) => {
                    charge(&mut stats, msg.wire_bytes() as u64);
                    post(to, Received { from, broadcast: false, seq: *seq, msg });
                    *seq += 1;
                }
                Dest::All => {
                    for to in 1..=n {
                        charge(&mut stats, msg.wire_bytes() as u64);
                        post(
                            to,
                            Received { from, broadcast: false, seq: *seq, msg: msg.clone() },
                        );
                        *seq += 1;
                    }
                }
                Dest::Broadcast => {
                    charge(&mut stats, msg.wire_bytes() as u64);
                    for to in 1..=n {
                        post(to, Received { from, broadcast: true, seq: *seq, msg: msg.clone() });
                    }
                    *seq += 1;
                }
            }
        }
        stats
    }
}

/// A protocol written as an explicit round-state machine.
///
/// Implementations must be executor-agnostic: observe only the
/// [`RoundView`], send only through the returned [`Outbox`], and keep all
/// cross-round state in `self`.
pub trait RoundMachine<M> {
    /// What the protocol produces when it terminates.
    type Output;

    /// Execute one round: consume the inbox, queue this round's sends, and
    /// either continue or finish.
    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output>;

    /// The label of the phase the *next* [`round`](RoundMachine::round)
    /// call will execute — pure state inspection, called by tracing
    /// executors immediately before `round` to tag that round's span.
    ///
    /// The default covers machines that never override it; protocol
    /// machines report their stage (`"bit-gen/deal"`, `"ba/suggest"`, …)
    /// and composite machines delegate to the active sub-machine.
    fn phase_name(&self) -> &'static str {
        "round"
    }
}

impl<M, T: RoundMachine<M> + ?Sized> RoundMachine<M> for Box<T> {
    type Output = T::Output;
    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output> {
        (**self).round(view)
    }
    fn phase_name(&self) -> &'static str {
        (**self).phase_name()
    }
}

/// A type-erased machine, as consumed by the executors.
pub type BoxedMachine<M, Out> = Box<dyn RoundMachine<M, Output = Out> + Send>;

/// Sequential composition: run `A`, then feed its output to a closure that
/// builds the successor machine `B`. Mirrors blocking control flow: when
/// `A` finishes in some round, `B`'s first (send) round executes in that
/// same round — exactly as straight-line code calls the next protocol
/// function immediately after the previous one returns.
pub struct Chain<A, B, F> {
    state: ChainState<A, B>,
    make: Option<F>,
}

enum ChainState<A, B> {
    First(A),
    /// `base` is the driver round in which `B` started; `B` sees rounds
    /// relative to it.
    Second { b: B, base: u64 },
}

impl<M, A, B, F> RoundMachine<M> for Chain<A, B, F>
where
    A: RoundMachine<M>,
    B: RoundMachine<M>,
    F: FnOnce(A::Output) -> B,
{
    type Output = B::Output;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, B::Output> {
        let a_out = match &mut self.state {
            ChainState::Second { b, base } => {
                let base = *base;
                let inbox = view.inbox;
                return b.round(view.rebase(base, inbox));
            }
            ChainState::First(a) => match a.round(view.reborrow()) {
                Step::Continue(out) => return Step::Continue(out),
                Step::Done(a_out) => a_out,
            },
        };
        let make = self.make.take().expect("Chain continuation already consumed");
        let mut b = make(a_out);
        // The successor starts in the same driver round with an empty
        // inbox (the predecessor consumed this round's deliveries) and a
        // round counter of its own.
        let base = view.round;
        let empty = Inbox::empty();
        let step = b.round(view.rebase(base, &empty));
        self.state = ChainState::Second { b, base };
        step
    }

    fn phase_name(&self) -> &'static str {
        match &self.state {
            ChainState::First(a) => a.phase_name(),
            ChainState::Second { b, .. } => b.phase_name(),
        }
    }
}

/// Transform a machine's output with a closure when it finishes.
pub struct Map<A, F> {
    inner: A,
    f: Option<F>,
}

impl<M, A, F, T> RoundMachine<M> for Map<A, F>
where
    A: RoundMachine<M>,
    F: FnOnce(A::Output) -> T,
{
    type Output = T;

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, T> {
        match self.inner.round(view) {
            Step::Continue(out) => Step::Continue(out),
            Step::Done(x) => Step::Done((self.f.take().expect("Map closure already consumed"))(x)),
        }
    }

    fn phase_name(&self) -> &'static str {
        self.inner.phase_name()
    }
}

/// Combinator methods on every [`RoundMachine`].
pub trait MachineExt<M>: RoundMachine<M> + Sized {
    /// Run `self` to completion, then the machine built from its output.
    fn then<B, F>(self, make: F) -> Chain<Self, B, F>
    where
        B: RoundMachine<M>,
        F: FnOnce(Self::Output) -> B,
    {
        Chain { state: ChainState::First(self), make: Some(make) }
    }

    /// Transform the final output.
    fn map<T, F>(self, f: F) -> Map<Self, F>
    where
        F: FnOnce(Self::Output) -> T,
    {
        Map { inner: self, f: Some(f) }
    }
}

impl<M, A: RoundMachine<M>> MachineExt<M> for A {}

/// Drive a machine to completion on a blocking [`PartyCtx`] — the bridge
/// that lets every legacy straight-line call site keep its signature while
/// the logic lives in a [`RoundMachine`].
///
/// One `Continue` costs exactly one [`PartyCtx::next_round`] (and hence
/// one round in the cost model); `Done` costs nothing.
pub fn drive_blocking<M, R>(ctx: &mut PartyCtx<M>, mut machine: R) -> R::Output
where
    M: Clone + WireSize,
    R: RoundMachine<M>,
{
    let id = ctx.id();
    let n = ctx.n();
    let mut inbox = Inbox::empty();
    let mut round = 0u64;
    loop {
        let step = machine.round(RoundView { id, n, round, inbox: &inbox, rng: ctx.rng() });
        match step {
            Step::Continue(outbox) => {
                ctx.flush_outbox(outbox);
                inbox = ctx.next_round();
                round += 1;
            }
            Step::Done(out) => return out,
        }
    }
}

/// [`drive_blocking`] with a [`PartyTracer`] recording each round as a
/// span: phase at entry, flush totals, and the cost delta of the whole
/// window (machine call + flush + round flip) — the same window the
/// [`StepRunner`](crate::StepRunner) attributes, so a panic-free run
/// records identical logical traces under either executor.
pub fn drive_blocking_traced<M, R>(
    ctx: &mut PartyCtx<M>,
    mut machine: R,
    tracer: &mut PartyTracer,
) -> R::Output
where
    M: Clone + WireSize,
    R: RoundMachine<M>,
{
    let id = ctx.id();
    let n = ctx.n();
    let mut inbox = Inbox::empty();
    let mut round = 0u64;
    loop {
        tracer.begin(round, machine.phase_name());
        let before = CostSnapshot::capture();
        let step = machine.round(RoundView { id, n, round, inbox: &inbox, rng: ctx.rng() });
        match step {
            Step::Continue(outbox) => {
                let stats = ctx.flush_outbox(outbox);
                tracer.flush(round, stats.messages, stats.bytes);
                inbox = ctx.next_round();
                tracer.end(round, CostSnapshot::capture().since(&before));
                round += 1;
            }
            Step::Done(out) => {
                tracer.end(round, CostSnapshot::capture().since(&before));
                return out;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echo machine: round 0 sends `value` to everyone, round 1 sums what
    /// arrived.
    struct EchoSum {
        value: u32,
    }

    impl RoundMachine<u32> for EchoSum {
        type Output = u32;
        fn round(&mut self, view: RoundView<'_, u32>) -> Step<u32, u32> {
            if view.round == 0 {
                let mut out = view.outbox();
                out.send_to_all(self.value);
                Step::Continue(out)
            } else {
                Step::Done(view.inbox.iter().map(|r| r.msg).sum())
            }
        }
    }

    #[test]
    fn outbox_flush_matches_partyctx_counting() {
        // 2 unicasts + 1 send_to_all(3) + 1 broadcast over n = 3:
        // messages = 2 + 3 + 1, seqs = 2 + 3 + 1, posts = 2 + 3 + 3.
        let mut out = Outbox::<u32>::new(3);
        out.send(1, 7);
        out.send(3, 8);
        out.send_to_all(9);
        out.broadcast(10);
        let mut posts = Vec::new();
        let mut seq = 0;
        out.flush(2, &mut seq, |to, rcv| posts.push((to, rcv)));
        assert_eq!(seq, 6);
        assert_eq!(posts.len(), 8);
        let bcast: Vec<_> = posts.iter().filter(|(_, r)| r.broadcast).collect();
        assert_eq!(bcast.len(), 3);
        assert!(bcast.iter().all(|(_, r)| r.seq == 5 && r.msg == 10));
    }

    #[test]
    #[should_panic(expected = "invalid recipient")]
    fn outbox_rejects_out_of_range_recipient() {
        Outbox::<u32>::new(3).send(4, 0);
    }

    #[test]
    fn chain_starts_successor_in_same_round() {
        use crate::step::StepRunner;
        // EchoSum (2 calls, 1 round) chained into another EchoSum keyed on
        // the first sum: total rounds per party = 2, not 3 — B's send
        // happens in the round A finishes.
        let machines: Vec<BoxedMachine<u32, u32>> = (0..3)
            .map(|i| {
                Box::new(EchoSum { value: i + 1 }.then(|sum| EchoSum { value: sum }))
                    as BoxedMachine<u32, u32>
            })
            .collect();
        let res = StepRunner::new(3, 1).run(machines);
        assert_eq!(res.report.comm.rounds, 2);
        // Round 1 sums: 1+2+3 = 6 for everyone; round 2 sums: 6*3 = 18.
        assert_eq!(res.unwrap_all(), vec![18, 18, 18]);
    }

    #[test]
    fn map_transforms_output() {
        use crate::step::StepRunner;
        let machines: Vec<BoxedMachine<u32, String>> = (0..2)
            .map(|i| {
                Box::new(EchoSum { value: i + 10 }.map(|sum| format!("sum={sum}")))
                    as BoxedMachine<u32, String>
            })
            .collect();
        let res = StepRunner::new(2, 1).run(machines);
        assert_eq!(res.unwrap_all(), vec!["sum=21".to_string(), "sum=21".to_string()]);
    }
}
