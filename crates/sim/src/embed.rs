//! Message-type composition.
//!
//! A protocol like Coin-Gen (Fig. 5) runs several sub-protocols —
//! Bit-Gen, Grade-Cast, Byzantine agreement — over one synchronous
//! network, so the network's wire type `M` must be able to carry each
//! sub-protocol's messages. [`Embeds`] is that capability: a sub-protocol
//! written against `M: Embeds<ItsMsg>` can be reused standalone (where
//! `M = ItsMsg`, via the reflexive impl) or inside any composed wire enum.

/// `Self` can carry `Inner` messages.
pub trait Embeds<Inner>: Sized {
    /// Wrap an inner message for the wire.
    fn wrap(inner: Inner) -> Self;

    /// View the inner message if this wire value carries one.
    ///
    /// Returns `None` for wire values belonging to other sub-protocols —
    /// *and for malformed traffic from Byzantine parties*, which honest
    /// code must simply ignore.
    fn peek(&self) -> Option<&Inner>;
}

impl<T> Embeds<T> for T {
    fn wrap(inner: T) -> Self {
        inner
    }

    fn peek(&self) -> Option<&T> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Wire {
        A(u32),
        B(&'static str),
    }

    impl Embeds<u32> for Wire {
        fn wrap(inner: u32) -> Self {
            Wire::A(inner)
        }
        fn peek(&self) -> Option<&u32> {
            match self {
                Wire::A(v) => Some(v),
                Wire::B(_) => None,
            }
        }
    }

    #[test]
    fn reflexive_embedding() {
        let m: u32 = Embeds::<u32>::wrap(5);
        assert_eq!(m.peek(), Some(&5));
    }

    #[test]
    fn enum_embedding_filters_foreign_traffic() {
        let a = Wire::wrap(7);
        assert_eq!(a.peek(), Some(&7));
        let b = Wire::B("other protocol");
        assert_eq!(Embeds::<u32>::peek(&b), None);
    }
}
