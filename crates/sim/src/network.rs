//! Party execution contexts and the network runner.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;

use dprbg_metrics::{comm, CostReport, CostSnapshot, WireSize};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

use dprbg_trace::{Event, PartyTracer, Trace, TraceConfig};

use crate::adversary::MsgTap;
use crate::machine::{drive_blocking, drive_blocking_traced, BoxedMachine, FlushStats, Outbox};
use crate::router::{Inbox, PartyId, Received, RoundProfile, Router};

/// A party's protocol code: straight-line logic against a [`PartyCtx`].
pub type Behavior<M, Out> = Box<dyn FnOnce(&mut PartyCtx<M>) -> Out + Send>;

/// A party's handle onto the synchronous network.
///
/// Obtained only through [`run_network`]; protocol functions take
/// `&mut PartyCtx<M>` and use it to send, broadcast, and advance rounds.
pub struct PartyCtx<M> {
    id: PartyId,
    router: Arc<Router<M>>,
    rng: StdRng,
    seq: u32,
    left: bool,
}

impl<M: Clone + WireSize> PartyCtx<M> {
    /// This party's 1-based identifier (`P_1 … P_n`).
    pub fn id(&self) -> PartyId {
        self.id
    }

    /// The total number of parties `n`.
    pub fn n(&self) -> usize {
        self.router.n()
    }

    /// This party's private randomness (deterministic per master seed).
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    /// Send `msg` to party `to` over the private channel. Delivered at the
    /// start of the next round. Charged as one message of the payload's
    /// wire size.
    ///
    /// # Panics
    ///
    /// Panics if `to` is not a valid party id.
    pub fn send(&mut self, to: PartyId, msg: M) {
        assert!((1..=self.n()).contains(&to), "invalid recipient {to}");
        comm::count_message(msg.wire_bytes() as u64);
        let rcv = Received {
            from: self.id,
            broadcast: false,
            seq: self.seq,
            msg,
        };
        self.seq += 1;
        self.router.post(to, rcv);
    }

    /// Send `msg` to every party (including self) over private channels:
    /// `n` messages — the paper's point-to-point "send to all players"
    /// (e.g. Bit-Gen's `n²` messages per round when all parties do it).
    pub fn send_to_all(&mut self, msg: M) {
        for to in 1..=self.n() {
            self.send(to, msg.clone());
        }
    }

    /// Publish `msg` on the **ideal broadcast channel** (the §3 model
    /// assumption): every party receives the identical value next round,
    /// attributable to this sender. Charged as **one** message (the
    /// paper's Lemma 2/4 counting); §4's protocols never call this.
    pub fn broadcast(&mut self, msg: M) {
        comm::count_message(msg.wire_bytes() as u64);
        let seq = self.seq;
        self.seq += 1;
        for to in 1..=self.n() {
            self.router.post(
                to,
                Received {
                    from: self.id,
                    broadcast: true,
                    seq,
                    msg: msg.clone(),
                },
            );
        }
    }

    /// Deliver a queued [`Outbox`], assigning sequence numbers and
    /// charging the communication counters exactly as the direct
    /// [`send`](Self::send)/[`broadcast`](Self::broadcast) calls would.
    /// Returns the charged totals.
    ///
    /// # Panics
    ///
    /// Panics if the outbox was built for a different network size.
    pub fn flush_outbox(&mut self, outbox: Outbox<M>) -> FlushStats {
        assert_eq!(outbox.n(), self.n(), "outbox built for a different network size");
        let router = Arc::clone(&self.router);
        outbox.flush(self.id, &mut self.seq, |to, rcv| router.post(to, rcv))
    }

    /// Finish the current round: blocks until every live party has done
    /// the same, then returns everything addressed to this party during
    /// the round that just ended.
    pub fn next_round(&mut self) -> Inbox<M> {
        comm::count_rounds(1);
        self.router.next_round(self.id)
    }

    /// How many parties are still running their protocol code.
    pub fn active_parties(&self) -> usize {
        self.router.active()
    }

    fn leave(&mut self) {
        if !self.left {
            self.left = true;
            self.router.leave();
        }
    }
}

impl<M> Drop for PartyCtx<M> {
    fn drop(&mut self) {
        if !self.left {
            self.left = true;
            self.router.leave();
        }
    }
}

/// The outcome of a network execution.
#[derive(Debug)]
pub struct RunResult<Out> {
    /// Each party's protocol output, in id order; `None` if that party's
    /// code panicked.
    pub outputs: Vec<Option<Out>>,
    /// The aggregated cost report (per-party computation, total
    /// communication).
    pub report: CostReport,
    /// Per-round delivery profile — the protocol's round anatomy.
    pub rounds: Vec<RoundProfile>,
    /// The merged logical trace, when the run was executed with tracing
    /// ([`run_machines_traced`], [`StepRunner::with_trace`](crate::StepRunner::with_trace)).
    pub trace: Option<Trace>,
}

impl<Out> RunResult<Out> {
    /// The outputs of the parties that completed, paired with their ids.
    pub fn completed(&self) -> impl Iterator<Item = (PartyId, &Out)> {
        self.outputs
            .iter()
            .enumerate()
            .filter_map(|(i, o)| o.as_ref().map(|out| (i + 1, out)))
    }

    /// Unwrap every output, panicking if any party failed.
    ///
    /// # Panics
    ///
    /// Panics if any party's behavior panicked.
    pub fn unwrap_all(self) -> Vec<Out> {
        self.outputs
            .into_iter()
            .enumerate()
            .map(|(i, o)| o.unwrap_or_else(|| panic!("party {} panicked", i + 1)))
            .collect()
    }
}

/// Execute one behavior per party on a fresh synchronous network.
///
/// Spawns one thread per party; each gets a deterministic RNG derived from
/// `seed` and its id. Returns when every behavior has returned (or
/// panicked — a panicking party is removed from the round barrier so the
/// rest can finish, and its output is `None`).
///
/// # Panics
///
/// Panics if `behaviors` is empty.
pub fn run_network<M, Out>(n: usize, seed: u64, behaviors: Vec<Behavior<M, Out>>) -> RunResult<Out>
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
{
    run_network_inner(n, seed, behaviors, None)
}

/// [`run_network`] with a per-message adversary installed at the message
/// hop (see [`MsgTap`]).
pub fn run_network_with_tap<M, Out>(
    n: usize,
    seed: u64,
    behaviors: Vec<Behavior<M, Out>>,
    tap: Box<dyn MsgTap<M>>,
) -> RunResult<Out>
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
{
    run_network_inner(n, seed, behaviors, Some(tap))
}

/// Execute one [`RoundMachine`](crate::RoundMachine) per party on the
/// scoped-thread runner: each machine is driven by a thin blocking loop
/// ([`drive_blocking`]), so the threaded executor is now a transport
/// driver over the same sans-IO logic the [`StepRunner`](crate::StepRunner)
/// interleaves on one thread.
pub fn run_machines<M, Out>(
    n: usize,
    seed: u64,
    machines: Vec<BoxedMachine<M, Out>>,
) -> RunResult<Out>
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
{
    run_network_inner(n, seed, machines_as_behaviors(machines), None)
}

/// [`run_machines`] with a per-message adversary at the message hop.
pub fn run_machines_with_tap<M, Out>(
    n: usize,
    seed: u64,
    machines: Vec<BoxedMachine<M, Out>>,
    tap: Box<dyn MsgTap<M>>,
) -> RunResult<Out>
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
{
    run_network_inner(n, seed, machines_as_behaviors(machines), Some(tap))
}

/// [`run_machines`] with a logical-time trace recorded per party: each
/// thread drives its machine through [`drive_blocking_traced`], and the
/// per-party event streams merge into [`RunResult::trace`].
///
/// For a panic-free, untapped run, the merged trace is byte-identical to
/// what [`StepRunner::with_trace`](crate::StepRunner::with_trace)
/// records from the same seed — the cross-executor equivalence the test
/// suite pins.
///
/// # Panics
///
/// Panics if `machines` is empty or its length differs from `n`.
pub fn run_machines_traced<M, Out>(
    n: usize,
    seed: u64,
    machines: Vec<BoxedMachine<M, Out>>,
    cfg: TraceConfig,
) -> RunResult<Out>
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
{
    assert_eq!(machines.len(), n, "need exactly one machine per party");
    assert!(n >= 1, "need at least one party");
    let router = Arc::new(Router::<M>::new(n));
    let (tx, rx) = mpsc::channel::<(PartyId, Option<Out>, CostSnapshot, Vec<Event>)>();

    std::thread::scope(|scope| {
        for (idx, machine) in machines.into_iter().enumerate() {
            let id = idx + 1;
            let router = Arc::clone(&router);
            let tx = tx.clone();
            scope.spawn(move || {
                let mut ctx = PartyCtx {
                    id,
                    router,
                    rng: StdRng::seed_from_u64(
                        seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                    seq: 0,
                    left: false,
                };
                // The tracer lives outside the unwind boundary so a
                // panicking party still surrenders what it recorded.
                let mut tracer = PartyTracer::new(id, cfg);
                let before = CostSnapshot::capture();
                let out = {
                    let tracer = &mut tracer;
                    catch_unwind(AssertUnwindSafe(|| {
                        drive_blocking_traced(&mut ctx, machine, tracer)
                    }))
                    .ok()
                };
                ctx.leave();
                let cost = CostSnapshot::capture().since(&before);
                let _ = tx.send((id, out, cost, tracer.into_events()));
            });
        }
    });
    drop(tx);

    let mut outputs: Vec<Option<Out>> = (0..n).map(|_| None).collect();
    let mut costs = vec![CostSnapshot::default(); n];
    let mut streams: Vec<Vec<Event>> = (0..n).map(|_| Vec::new()).collect();
    for (id, out, cost, events) in rx {
        outputs[id - 1] = out;
        costs[id - 1] = cost;
        streams[id - 1] = events;
    }
    RunResult {
        outputs,
        report: CostReport::from_snapshots(costs),
        rounds: router.profile(),
        trace: Some(Trace::from_parties(streams)),
    }
}

fn machines_as_behaviors<M, Out>(machines: Vec<BoxedMachine<M, Out>>) -> Vec<Behavior<M, Out>>
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
{
    machines
        .into_iter()
        .map(|m| Box::new(move |ctx: &mut PartyCtx<M>| drive_blocking(ctx, m)) as Behavior<M, Out>)
        .collect()
}

fn run_network_inner<M, Out>(
    n: usize,
    seed: u64,
    behaviors: Vec<Behavior<M, Out>>,
    tap: Option<Box<dyn MsgTap<M>>>,
) -> RunResult<Out>
where
    M: Clone + Send + WireSize + 'static,
    Out: Send + 'static,
{
    assert_eq!(behaviors.len(), n, "need exactly one behavior per party");
    assert!(n >= 1, "need at least one party");
    let mut router = Router::<M>::new(n);
    if let Some(tap) = tap {
        router = router.with_tap(tap);
    }
    let router = Arc::new(router);
    let (tx, rx) = mpsc::channel::<(PartyId, Option<Out>, CostSnapshot)>();

    std::thread::scope(|scope| {
        for (idx, behavior) in behaviors.into_iter().enumerate() {
            let id = idx + 1;
            let router = Arc::clone(&router);
            let tx = tx.clone();
            scope.spawn(move || {
                let mut ctx = PartyCtx {
                    id,
                    router,
                    rng: StdRng::seed_from_u64(
                        seed ^ (id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    ),
                    seq: 0,
                    left: false,
                };
                let before = CostSnapshot::capture();
                let out = catch_unwind(AssertUnwindSafe(|| behavior(&mut ctx))).ok();
                ctx.leave();
                let cost = CostSnapshot::capture().since(&before);
                let _ = tx.send((id, out, cost));
            });
        }
    });
    drop(tx);

    let mut outputs: Vec<Option<Out>> = (0..n).map(|_| None).collect();
    let mut costs = vec![CostSnapshot::default(); n];
    for (id, out, cost) in rx {
        outputs[id - 1] = out;
        costs[id - 1] = cost;
    }
    RunResult {
        outputs,
        report: CostReport::from_snapshots(costs),
        rounds: router.profile(),
        trace: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxed<M, Out>(
        f: impl FnOnce(&mut PartyCtx<M>) -> Out + Send + 'static,
    ) -> Behavior<M, Out> {
        Box::new(f)
    }

    #[test]
    fn round_trip_unicast() {
        // Party 1 sends 10 to party 2; party 2 replies with double.
        let behaviors: Vec<Behavior<u32, u32>> = vec![
            boxed(|ctx| {
                ctx.send(2, 10);
                let _ = ctx.next_round();
                let inbox = ctx.next_round();
                inbox.first_from(2).map(|r| r.msg).unwrap_or(0)
            }),
            boxed(|ctx| {
                let inbox = ctx.next_round();
                let v = inbox.first_from(1).map(|r| r.msg).unwrap_or(0);
                ctx.send(1, v * 2);
                let _ = ctx.next_round();
                v
            }),
        ];
        let res = run_network(2, 1, behaviors);
        assert_eq!(res.outputs, vec![Some(20), Some(10)]);
    }

    #[test]
    fn broadcast_reaches_everyone_identically() {
        let behaviors: Vec<Behavior<u32, u32>> = (0..4)
            .map(|i| {
                boxed(move |ctx: &mut PartyCtx<u32>| {
                    if ctx.id() == 3 {
                        ctx.broadcast(99);
                    }
                    let inbox = ctx.next_round();
                    let b: Vec<u32> = inbox.broadcasts().map(|r| r.msg).collect();
                    assert_eq!(b, vec![99], "party {} saw {:?}", i + 1, b);
                    b[0]
                })
            })
            .collect();
        let res = run_network(4, 7, behaviors);
        assert_eq!(res.unwrap_all(), vec![99; 4]);
    }

    #[test]
    fn broadcast_counts_one_message() {
        let behaviors: Vec<Behavior<u64, ()>> = vec![
            boxed(|ctx| {
                ctx.broadcast(5u64);
                let _ = ctx.next_round();
            }),
            boxed(|ctx| {
                let _ = ctx.next_round();
            }),
        ];
        let res = run_network(2, 3, behaviors);
        assert_eq!(res.report.comm.messages, 1);
        assert_eq!(res.report.comm.bytes, 8);
        assert_eq!(res.report.comm.rounds, 1);
    }

    #[test]
    fn send_to_all_counts_n_messages() {
        let behaviors: Vec<Behavior<u8, ()>> = (0..3)
            .map(|_| {
                boxed(|ctx: &mut PartyCtx<u8>| {
                    ctx.send_to_all(1);
                    let inbox = ctx.next_round();
                    assert_eq!(inbox.len(), 3);
                })
            })
            .collect();
        let res = run_network(3, 4, behaviors);
        assert_eq!(res.report.comm.messages, 9); // n per party
    }

    #[test]
    fn early_return_does_not_deadlock_others() {
        let behaviors: Vec<Behavior<u8, u8>> = vec![
            boxed(|_ctx| 0), // leaves immediately
            boxed(|ctx| {
                for _ in 0..5 {
                    let _ = ctx.next_round();
                }
                1
            }),
            boxed(|ctx| {
                for _ in 0..5 {
                    let _ = ctx.next_round();
                }
                2
            }),
        ];
        let res = run_network(3, 5, behaviors);
        assert_eq!(res.outputs, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn panicking_party_is_contained() {
        let behaviors: Vec<Behavior<u8, u8>> = vec![
            boxed(|_ctx| panic!("byzantine meltdown")),
            boxed(|ctx| {
                let _ = ctx.next_round();
                7
            }),
        ];
        let res = run_network(2, 6, behaviors);
        assert_eq!(res.outputs[0], None);
        assert_eq!(res.outputs[1], Some(7));
        assert_eq!(res.completed().count(), 1);
    }

    #[test]
    fn per_party_rng_is_deterministic() {
        use dprbg_rng::RngExt;
        let mk = || -> Vec<Behavior<u8, u64>> {
            (0..3)
                .map(|_| boxed(|ctx: &mut PartyCtx<u8>| ctx.rng().random::<u64>()))
                .collect()
        };
        let a = run_network(3, 99, mk()).unwrap_all();
        let b = run_network(3, 99, mk()).unwrap_all();
        assert_eq!(a, b);
        // Different parties draw different randomness.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn equivocation_is_possible_on_private_channels() {
        // A Byzantine sender can tell different things to different parties.
        let behaviors: Vec<Behavior<u8, Option<u8>>> = vec![
            boxed(|ctx| {
                ctx.send(2, 1);
                ctx.send(3, 2);
                let _ = ctx.next_round();
                None
            }),
            boxed(|ctx| ctx.next_round().first_from(1).map(|r| r.msg)),
            boxed(|ctx| ctx.next_round().first_from(1).map(|r| r.msg)),
        ];
        let res = run_network(3, 8, behaviors);
        assert_eq!(res.outputs[1], Some(Some(1)));
        assert_eq!(res.outputs[2], Some(Some(2)));
    }

    #[test]
    #[should_panic(expected = "one behavior per party")]
    fn behavior_count_must_match() {
        let _ = run_network::<u8, ()>(3, 0, vec![]);
    }
}
