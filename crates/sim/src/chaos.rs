//! Adaptive, traffic-observing adversaries built on the [`MsgTap`] hook.
//!
//! The paper's adversary is *static*: which ≤ t parties are corrupted is
//! fixed before the run (§2). The [`MsgTap`] surface is strictly finer —
//! it sees every message copy in flight — which makes a stronger,
//! **adaptive** adversary expressible: one that watches the traffic and
//! decides *mid-run* which parties to corrupt, within the same `t`
//! budget. This module implements that adversary as a stateful tap,
//! [`AdaptiveAdversary`], plus a menu of [`Attack`] strategies.
//!
//! # Determinism across executors
//!
//! The cross-executor guarantee (the work-stealing [`crate::ParRunner`]
//! and the single-threaded [`crate::StepRunner`] produce byte-identical
//! transcripts) holds for stateful taps because both executors consult
//! the tap on the coordinating thread in the same id-major order; a
//! stateful adversary additionally keeps itself executor-independent by
//! exploiting the one ordering fact lock-step synchrony guarantees —
//! **every hop of round `r` is posted strictly before any hop of round
//! `r + 1`** — and restricting its state updates to:
//!
//! * **per-sender state** (message counts, payload caches), which only
//!   that sender's own hops mutate and each sender's hops arrive in its
//!   own flush order;
//! * **cross-sender aggregates folded only at round boundaries**: the
//!   first hop observed with a higher round number triggers a *fold* of
//!   the completed round's per-sender counters, and corruption decisions
//!   are taken only at folds, from completed-round data. Every hop of a
//!   given round therefore sees the same corrupted set, under either
//!   executor.
//!
//! Per-copy fates are then pure functions of the (fold-frozen) corrupted
//! set, the hop, and per-sender caches — deterministic everywhere.
//!
//! # Model compliance
//!
//! Corrupting a sender and dropping / delaying / tampering its copies is
//! exactly the power the §2 adversary has over its ≤ t corruptions. The
//! §3 **ideal broadcast channel is a model Given**: every in-model attack
//! here delivers `broadcast: true` copies untouched. The one deliberate
//! exception, [`Attack::BreakBroadcast`], equivocates per broadcast copy
//! — a *beyond-model* strategy whose whole purpose is to let the campaign
//! harness demonstrate that its "unsound" classification can actually
//! trigger (the paper's guarantees do not, and need not, survive it).

use std::cmp::Reverse;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex};

use crate::adversary::{MsgFate, MsgHop, MsgTap};
use crate::router::PartyId;

/// SplitMix64: a tiny, high-quality mixer for deterministic per-copy
/// randomness (seeded, no global state).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// An adaptive attack strategy. See each variant for the corruption rule
/// (applied at round-boundary folds) and the per-copy fate rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Attack {
    /// Eclipse the protocol's current focal point: at each fold, corrupt
    /// the busiest sender of the just-completed round (ties to the lowest
    /// id) until the budget is spent; all copies from corrupted parties
    /// are dropped. Against Coin-Gen this tracks whoever is doing the
    /// talking — leaders and gradecast relays.
    LeaderEclipse,
    /// Slow the heavyweights: at each fold, corrupt the sender with the
    /// largest *cumulative* traffic (the dealer profile — dealing rounds
    /// dominate byte counts) and deliver its copies `delay` rounds late.
    DealerDelay {
        /// Extra rounds every corrupted copy is held back.
        delay: u64,
    },
    /// Byzantine equivocation over point-to-point copies: corrupted
    /// senders' unicast copies to even-id recipients are replaced with a
    /// stale replay of that sender's previous-round payload (dropped when
    /// no replay exists yet); odd-id recipients get the genuine copy.
    /// Broadcast copies are untouched (ideal channel). Corruption rule as
    /// [`Attack::LeaderEclipse`].
    Equivocate,
    /// Fail-stop at a chosen moment: at the fold entering round `round`,
    /// corrupt the `budget` busiest-so-far parties at once; from then on
    /// all their copies are dropped. Timed right, this kills parties
    /// mid-gradecast or mid-expose — the paper's crash-at-critical-round
    /// scenario.
    CrashAtRound {
        /// The round whose start triggers the mass crash.
        round: u64,
    },
    /// Unreliable-network chaos: a seeded pseudorandom subset of `budget`
    /// parties is corrupted up front, and each of their copies is
    /// independently dropped (with probability `drop_pct`%) or delayed
    /// 1..=`max_delay` rounds (with probability `delay_pct`%), decided by
    /// a pure hash of `(seed, from, to, round, copy index)`. Broadcast
    /// copies are hashed per `(seed, from, round)` only, so one ideal
    /// broadcast meets a single fate for every recipient — the §3 channel
    /// is degraded (a corrupted party may fail to broadcast) but never
    /// split.
    RandomChaos {
        /// Percent of corrupted copies to drop (0–100).
        drop_pct: u8,
        /// Percent of corrupted copies to delay (0–100; applied after
        /// the drop roll).
        delay_pct: u8,
        /// Largest delay, in rounds (≥ 1 when `delay_pct > 0`).
        max_delay: u64,
    },
    /// Network split: a seeded subset of `budget` parties is corrupted up
    /// front and severs itself from the rest — every copy with exactly
    /// one corrupted endpoint is dropped while `round < until_round`,
    /// after which the partition heals.
    Partition {
        /// First round of restored connectivity.
        until_round: u64,
    },
    /// **Beyond-model**: per-copy equivocation on the §3 ideal broadcast
    /// channel itself (stale replays to even-id recipients, like
    /// [`Attack::Equivocate`], but on `broadcast: true` copies). The
    /// paper assumes this cannot happen; the campaign harness uses it to
    /// prove its "unsound" verdict is reachable.
    BreakBroadcast,
}

impl Attack {
    /// Short stable name for schedules, tables and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Attack::LeaderEclipse => "leader-eclipse",
            Attack::DealerDelay { .. } => "dealer-delay",
            Attack::Equivocate => "equivocate",
            Attack::CrashAtRound { .. } => "crash-at-round",
            Attack::RandomChaos { .. } => "random-chaos",
            Attack::Partition { .. } => "partition",
            Attack::BreakBroadcast => "break-broadcast",
        }
    }

    /// Whether the strategy stays within the paper's §2/§3 model (ideal
    /// broadcast respected, ≤ budget corruptions, arbitrary misbehavior
    /// of corrupted parties only).
    pub fn within_model(&self) -> bool {
        !matches!(self, Attack::BreakBroadcast)
    }
}

/// A read-only view onto an [`AdaptiveAdversary`]'s corrupted set,
/// usable after the executor has consumed the tap itself.
#[derive(Debug, Clone)]
pub struct CorruptionHandle {
    set: Arc<Mutex<BTreeSet<PartyId>>>,
}

impl CorruptionHandle {
    /// The parties corrupted so far (final set, once the run ended).
    pub fn snapshot(&self) -> BTreeSet<PartyId> {
        self.set.lock().expect("corruption set lock").clone()
    }
}

/// A stateful [`MsgTap`] that corrupts parties mid-run, within a fixed
/// budget, according to an [`Attack`] strategy. See the module docs for
/// the determinism argument.
pub struct AdaptiveAdversary<M> {
    attack: Attack,
    n: usize,
    budget: usize,
    seed: u64,
    corrupted: Arc<Mutex<BTreeSet<PartyId>>>,
    /// Highest round any observed hop belongs to.
    cur_round: u64,
    /// Whether the [`Attack::CrashAtRound`] decision already fired.
    crash_done: bool,
    /// Per-sender message counts in the round being observed.
    round_msgs: Vec<u64>,
    /// Per-sender cumulative message counts over all completed rounds.
    total_msgs: Vec<u64>,
    /// Per-sender first payload of the round being observed.
    cur_payload: Vec<Option<M>>,
    /// Per-sender first payload of the previous round (the stale-replay
    /// source for equivocation; committed at folds).
    last_payload: Vec<Option<M>>,
    /// Per-(from, to) copy counter within the current round (for
    /// [`Attack::RandomChaos`]'s per-copy hash).
    occ: Vec<u64>,
}

impl<M> AdaptiveAdversary<M> {
    /// An adversary over `n` parties corrupting at most `budget` of them.
    /// `seed` drives every pseudorandom choice, so `(attack, n, budget,
    /// seed)` fully determines the adversary's actions on a given
    /// transcript.
    pub fn new(attack: Attack, n: usize, budget: usize, seed: u64) -> Self {
        Self::with_shared(attack, n, budget, seed, Arc::new(Mutex::new(BTreeSet::new())))
    }

    /// Like [`AdaptiveAdversary::new`], but corruptions accumulate in the
    /// caller-supplied shared set — how [`ScheduledAdversary`] makes its
    /// legs spend one common budget.
    fn with_shared(
        attack: Attack,
        n: usize,
        budget: usize,
        seed: u64,
        corrupted: Arc<Mutex<BTreeSet<PartyId>>>,
    ) -> Self {
        assert!(n > 0, "need at least one party");
        // Network-level strategies fix their corrupted subset up front
        // (seeded, topping up whatever the shared set already holds); the
        // traffic-adaptive ones start empty.
        if matches!(attack, Attack::RandomChaos { .. } | Attack::Partition { .. }) {
            let mut set = corrupted.lock().expect("corruption set lock");
            let mut x = splitmix64(seed ^ 0xC0DE);
            while set.len() < budget.min(n) {
                x = splitmix64(x);
                set.insert((x % n as u64) as usize + 1);
            }
        }
        AdaptiveAdversary {
            attack,
            n,
            budget,
            seed,
            corrupted,
            cur_round: 0,
            crash_done: false,
            round_msgs: vec![0; n],
            total_msgs: vec![0; n],
            cur_payload: (0..n).map(|_| None).collect(),
            last_payload: (0..n).map(|_| None).collect(),
            occ: vec![0; n * n],
        }
    }

    /// A handle for reading the corrupted set after the run.
    pub fn handle(&self) -> CorruptionHandle {
        CorruptionHandle { set: Arc::clone(&self.corrupted) }
    }

    /// Fold the just-completed round `self.cur_round`: commit per-sender
    /// payload caches, clear per-round state, and apply the strategy's
    /// corruption rule from the completed round's aggregates.
    fn fold(&mut self) {
        for i in 0..self.n {
            if let Some(m) = self.cur_payload[i].take() {
                self.last_payload[i] = Some(m);
            }
        }
        self.occ.iter_mut().for_each(|o| *o = 0);
        let mut corrupted = self.corrupted.lock().expect("corruption set lock");
        match self.attack {
            Attack::LeaderEclipse | Attack::Equivocate | Attack::BreakBroadcast => {
                // One new corruption per fold: the completed round's
                // busiest not-yet-corrupted sender (ties to lowest id).
                if corrupted.len() < self.budget {
                    let target = (1..=self.n)
                        .filter(|p| !corrupted.contains(p) && self.round_msgs[p - 1] > 0)
                        .max_by_key(|&p| (self.round_msgs[p - 1], Reverse(p)));
                    if let Some(p) = target {
                        corrupted.insert(p);
                    }
                }
            }
            Attack::DealerDelay { .. } => {
                if corrupted.len() < self.budget {
                    let target = (1..=self.n)
                        .filter(|p| !corrupted.contains(p) && self.total_msgs[p - 1] > 0)
                        .max_by_key(|&p| (self.total_msgs[p - 1], Reverse(p)));
                    if let Some(p) = target {
                        corrupted.insert(p);
                    }
                }
            }
            Attack::CrashAtRound { round } => {
                if !self.crash_done && self.cur_round + 1 >= round {
                    self.crash_done = true;
                    let mut ids: Vec<PartyId> = (1..=self.n).collect();
                    ids.sort_by_key(|&p| (Reverse(self.total_msgs[p - 1]), p));
                    for &p in ids.iter().take(self.budget.min(self.n)) {
                        corrupted.insert(p);
                    }
                }
            }
            Attack::RandomChaos { .. } | Attack::Partition { .. } => {}
        }
        drop(corrupted);
        self.round_msgs.iter_mut().for_each(|c| *c = 0);
    }
}

impl<M: Clone + Send> MsgTap<M> for AdaptiveAdversary<M> {
    fn intercept(&mut self, hop: MsgHop<'_, M>) -> MsgFate<M> {
        // Round-boundary folds: both executors post every hop of round r
        // strictly before any hop of round r + 1, so this fires after the
        // completed round is fully recorded, under either executor.
        while hop.round > self.cur_round {
            self.fold();
            self.cur_round += 1;
        }

        // Per-sender bookkeeping (only `hop.from`'s own hops touch it).
        self.round_msgs[hop.from - 1] += 1;
        self.total_msgs[hop.from - 1] += 1;
        if self.cur_payload[hop.from - 1].is_none() {
            self.cur_payload[hop.from - 1] = Some(hop.msg.clone());
        }

        let corrupted = self.corrupted.lock().expect("corruption set lock");
        let from_corrupted = corrupted.contains(&hop.from);
        match self.attack {
            Attack::LeaderEclipse | Attack::CrashAtRound { .. } => {
                if from_corrupted {
                    MsgFate::Drop
                } else {
                    MsgFate::Deliver
                }
            }
            Attack::DealerDelay { delay } => {
                if from_corrupted {
                    MsgFate::Delay(delay)
                } else {
                    MsgFate::Deliver
                }
            }
            Attack::Equivocate => {
                if from_corrupted && !hop.broadcast && hop.to.is_multiple_of(2) {
                    match &self.last_payload[hop.from - 1] {
                        Some(m) => MsgFate::Tamper(m.clone()),
                        None => MsgFate::Drop,
                    }
                } else {
                    MsgFate::Deliver
                }
            }
            Attack::BreakBroadcast => {
                if from_corrupted && hop.broadcast && hop.to.is_multiple_of(2) {
                    match &self.last_payload[hop.from - 1] {
                        Some(m) => MsgFate::Tamper(m.clone()),
                        None => MsgFate::Drop,
                    }
                } else {
                    MsgFate::Deliver
                }
            }
            Attack::RandomChaos { drop_pct, delay_pct, max_delay } => {
                if !from_corrupted {
                    return MsgFate::Deliver;
                }
                // One uniform fate per ideal broadcast (no recipient or
                // copy-index term): a corrupted party may fail to use the
                // §3 channel, but the channel itself never equivocates.
                let h = if hop.broadcast {
                    splitmix64(
                        self.seed
                            ^ splitmix64(hop.from as u64)
                            ^ splitmix64(hop.round.rotate_left(32)),
                    )
                } else {
                    let idx = (hop.from - 1) * self.n + (hop.to - 1);
                    let occ = self.occ[idx];
                    self.occ[idx] += 1;
                    splitmix64(
                        self.seed
                            ^ splitmix64(hop.from as u64)
                            ^ splitmix64((hop.to as u64).rotate_left(16))
                            ^ splitmix64(hop.round.rotate_left(32))
                            ^ occ,
                    )
                };
                let roll = h % 100;
                if roll < drop_pct as u64 {
                    MsgFate::Drop
                } else if roll < (drop_pct as u64 + delay_pct as u64) {
                    MsgFate::Delay(1 + (h >> 32) % max_delay.max(1))
                } else {
                    MsgFate::Deliver
                }
            }
            Attack::Partition { until_round } => {
                if hop.round < until_round && (from_corrupted != corrupted.contains(&hop.to)) {
                    MsgFate::Drop
                } else {
                    MsgFate::Deliver
                }
            }
        }
    }
}

/// A composite adversary that switches [`Attack`] strategy mid-episode on
/// a fixed round schedule — the "campaign that changes its mind": eclipse
/// the leader for a while, then partition, then equivocate.
///
/// The schedule is a list of `(start_round, attack)` legs, strictly
/// ascending by start round; leg `i` is in force for every hop whose round
/// is in `[start_i, start_{i+1})`. All legs share **one** corruption
/// budget: a party corrupted by an early leg stays corrupted (corruption
/// is irrevocable in the §2 model), and later legs may only top the shared
/// set up to `budget`.
///
/// Determinism: the active leg is a pure function of `hop.round`, which
/// both executors present identically, and each leg is itself a
/// fold-at-round-boundary [`AdaptiveAdversary`] (see the module docs), so
/// the composite remains byte-identical across [`crate::StepRunner`] and
/// [`crate::ParRunner`].
///
/// Round parameters *inside* a leg ([`Attack::CrashAtRound`],
/// [`Attack::Partition`]'s heal round) stay **absolute** executor rounds,
/// not leg-relative ones — a schedule reads as one timeline.
pub struct ScheduledAdversary<M> {
    legs: Vec<(u64, Attack)>,
    n: usize,
    budget: usize,
    seed: u64,
    corrupted: Arc<Mutex<BTreeSet<PartyId>>>,
    /// The adversary of the leg currently in force.
    cur: AdaptiveAdversary<M>,
    /// Index into `legs` of the next leg to activate.
    next: usize,
}

impl<M> ScheduledAdversary<M> {
    /// Build a composite adversary over `n` parties from `(start_round,
    /// attack)` legs, sharing `budget` corruptions across all legs. The
    /// first leg is active from the first hop regardless of its nominal
    /// start round.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty, start rounds are not strictly
    /// ascending, or `n` is zero.
    pub fn new(schedule: Vec<(u64, Attack)>, n: usize, budget: usize, seed: u64) -> Self {
        assert!(!schedule.is_empty(), "schedule needs at least one leg");
        assert!(
            schedule.windows(2).all(|w| w[0].0 < w[1].0),
            "leg start rounds must be strictly ascending"
        );
        let corrupted = Arc::new(Mutex::new(BTreeSet::new()));
        let cur = AdaptiveAdversary::with_shared(
            schedule[0].1,
            n,
            budget,
            Self::leg_seed(seed, 0),
            Arc::clone(&corrupted),
        );
        ScheduledAdversary { legs: schedule, n, budget, seed, corrupted, cur, next: 1 }
    }

    /// Per-leg seed derivation: a leg's pseudorandom choices depend on the
    /// master seed and its position, not on which attacks preceded it.
    fn leg_seed(seed: u64, leg: usize) -> u64 {
        splitmix64(seed ^ (leg as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// A handle for reading the corrupted set after the run.
    pub fn handle(&self) -> CorruptionHandle {
        CorruptionHandle { set: Arc::clone(&self.corrupted) }
    }

    /// The schedule's legs, as given.
    pub fn legs(&self) -> &[(u64, Attack)] {
        &self.legs
    }

    /// Whether every leg stays within the paper's §2/§3 model.
    pub fn within_model(&self) -> bool {
        self.legs.iter().all(|(_, a)| a.within_model())
    }

    /// Short stable composite name, e.g. `leader-eclipse>partition`.
    pub fn name(&self) -> String {
        let names: Vec<&str> = self.legs.iter().map(|(_, a)| a.name()).collect();
        names.join(">")
    }
}

impl<M: Clone + Send> MsgTap<M> for ScheduledAdversary<M> {
    fn intercept(&mut self, hop: MsgHop<'_, M>) -> MsgFate<M> {
        // Leg switches key on `hop.round` only: every hop of a round sees
        // the same leg under either executor. A fresh leg starts with
        // empty traffic aggregates (its catch-up folds see zero counts and
        // corrupt no one) but inherits the shared corrupted set.
        while self.next < self.legs.len() && hop.round >= self.legs[self.next].0 {
            let (_, attack) = self.legs[self.next];
            self.cur = AdaptiveAdversary::with_shared(
                attack,
                self.n,
                self.budget,
                Self::leg_seed(self.seed, self.next),
                Arc::clone(&self.corrupted),
            );
            self.next += 1;
        }
        self.cur.intercept(hop)
    }
}

/// A fault injected at one epoch boundary of a long-running beacon soak
/// (the epoch-granular analogue of the per-message [`Attack`] menu).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochFault {
    /// Kill the service at this epoch's start boundary. The harness
    /// restores it from the latest snapshot after `down_epochs` epochs of
    /// downtime and measures the recovery latency.
    Crash {
        /// Epochs of downtime before the restore.
        down_epochs: u64,
    },
    /// A consumer stampede: `demand` draw requests arrive this epoch,
    /// exercising reservoir backpressure.
    Stampede {
        /// Draw requests arriving in the stampede.
        demand: u32,
    },
    /// The epoch's protocol run happens under an adaptive `attack`
    /// corrupting at most `f` parties.
    Adversary {
        /// The strategy applied to this epoch's messages.
        attack: Attack,
        /// The corruption budget for this epoch.
        f: usize,
    },
}

impl EpochFault {
    /// Short stable name for logs and tables.
    pub fn name(&self) -> &'static str {
        match self {
            EpochFault::Crash { .. } => "crash",
            EpochFault::Stampede { .. } => "stampede",
            EpochFault::Adversary { .. } => "adversary",
        }
    }
}

/// An epoch-indexed fault schedule for beacon soak runs: which
/// [`EpochFault`] (if any) strikes at each epoch.
///
/// # Examples
///
/// ```
/// use dprbg_sim::{EpochFault, SoakPlan};
/// let plan = SoakPlan::new()
///     .fault(3, EpochFault::Crash { down_epochs: 2 })
///     .fault(7, EpochFault::Stampede { demand: 64 });
/// assert_eq!(plan.fault_at(3), Some(EpochFault::Crash { down_epochs: 2 }));
/// assert_eq!(plan.fault_at(4), None);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SoakPlan {
    faults: BTreeMap<u64, EpochFault>,
}

impl SoakPlan {
    /// A plan with no faults (the uninterrupted reference run).
    pub fn new() -> Self {
        SoakPlan::default()
    }

    /// Add (or replace) the fault striking at `epoch`.
    pub fn fault(mut self, epoch: u64, fault: EpochFault) -> Self {
        self.faults.insert(epoch, fault);
        self
    }

    /// The fault scheduled for `epoch`, if any.
    pub fn fault_at(&self, epoch: u64) -> Option<EpochFault> {
        self.faults.get(&epoch).copied()
    }

    /// Number of scheduled faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether no fault is scheduled.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Iterate the scheduled `(epoch, fault)` pairs in epoch order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, EpochFault)> + '_ {
        self.faults.iter().map(|(e, f)| (*e, *f))
    }

    /// Per-kind counts of the scheduled faults, as `(crashes,
    /// stampedes, adversary epochs)` — the shape a health report prints
    /// before a soak, so "no diagnostics" is never mistaken for
    /// "nothing was thrown at it".
    ///
    /// # Examples
    ///
    /// ```
    /// use dprbg_sim::{Attack, EpochFault, SoakPlan};
    /// let plan = SoakPlan::new()
    ///     .fault(3, EpochFault::Crash { down_epochs: 1 })
    ///     .fault(5, EpochFault::Stampede { demand: 9 })
    ///     .fault(8, EpochFault::Adversary { attack: Attack::LeaderEclipse, f: 1 });
    /// assert_eq!(plan.census(), (1, 1, 1));
    /// ```
    pub fn census(&self) -> (u64, u64, u64) {
        let mut counts = (0, 0, 0);
        for fault in self.faults.values() {
            match fault {
                EpochFault::Crash { .. } => counts.0 += 1,
                EpochFault::Stampede { .. } => counts.1 += 1,
                EpochFault::Adversary { .. } => counts.2 += 1,
            }
        }
        counts
    }

    /// A seeded composite plan striking every `period` epochs over
    /// `epochs` total, cycling pseudorandomly through crashes, stampedes
    /// and in-model adversary epochs — the mixed soak the E15 experiment
    /// runs. `(seed, epochs, period)` fully determines the plan.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn composite(seed: u64, epochs: u64, period: u64) -> Self {
        assert!(period > 0, "fault period must be positive");
        let mut plan = SoakPlan::new();
        let mut e = period;
        while e < epochs {
            let h = splitmix64(seed ^ splitmix64(e));
            let fault = match h % 4 {
                0 => EpochFault::Crash { down_epochs: 1 + (h >> 8) % 3 },
                1 => EpochFault::Stampede { demand: 8 + ((h >> 8) % 56) as u32 },
                2 => EpochFault::Adversary { attack: Attack::LeaderEclipse, f: 1 },
                _ => EpochFault::Adversary {
                    attack: Attack::RandomChaos { drop_pct: 25, delay_pct: 25, max_delay: 2 },
                    f: 1,
                },
            };
            plan.faults.insert(e, fault);
            e += period;
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{BoxedMachine, RoundMachine, RoundView, Step};
    use crate::par::ParRunner;
    use crate::step::StepRunner;

    /// A gossip fleet with deliberately skewed traffic: everyone
    /// broadcasts + unicasts each round, and party `heavy` sends one
    /// extra unicast per round so traffic-adaptive attacks have a clear
    /// target. Output: the final inbox as (from, broadcast, msg) tuples.
    struct Chatter {
        rounds: u64,
        heavy: usize,
    }
    impl RoundMachine<u64> for Chatter {
        type Output = Vec<(usize, bool, u64)>;
        fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, Self::Output> {
            if view.round < self.rounds {
                let mut out = view.outbox();
                out.broadcast(view.id as u64 * 1000 + view.round);
                out.send_to_all(view.id as u64 * 100 + view.round);
                if view.id == self.heavy {
                    out.send(1, 7_000_000 + view.round);
                }
                Step::Continue(out)
            } else {
                Step::Done(
                    view.inbox.iter().map(|r| (r.from, r.broadcast, r.msg)).collect(),
                )
            }
        }
    }

    fn fleet(n: usize, rounds: u64, heavy: usize) -> Vec<BoxedMachine<u64, Vec<(usize, bool, u64)>>> {
        (0..n).map(|_| Box::new(Chatter { rounds, heavy }) as _).collect()
    }

    const ALL_ATTACKS: [Attack; 7] = [
        Attack::LeaderEclipse,
        Attack::DealerDelay { delay: 2 },
        Attack::Equivocate,
        Attack::CrashAtRound { round: 2 },
        Attack::RandomChaos { drop_pct: 30, delay_pct: 30, max_delay: 2 },
        Attack::Partition { until_round: 2 },
        Attack::BreakBroadcast,
    ];

    #[test]
    fn adaptive_adversary_is_deterministic_across_executors() {
        let n = 5;
        for attack in ALL_ATTACKS {
            for seed in [3u64, 17] {
                let adv_a = AdaptiveAdversary::new(attack, n, 2, seed);
                let log_a = adv_a.handle();
                let parallel =
                    ParRunner::new(n, seed).with_tap(adv_a).run(fleet(n, 4, 3));
                let adv_b = AdaptiveAdversary::new(attack, n, 2, seed);
                let log_b = adv_b.handle();
                let stepped = StepRunner::new(n, seed).with_tap(adv_b).run(fleet(n, 4, 3));
                assert_eq!(
                    parallel.outputs, stepped.outputs,
                    "{} diverged at seed {seed}",
                    attack.name()
                );
                assert_eq!(parallel.report, stepped.report, "{}", attack.name());
                assert_eq!(parallel.rounds, stepped.rounds, "{}", attack.name());
                assert_eq!(
                    log_a.snapshot(),
                    log_b.snapshot(),
                    "{} corrupted different parties per executor",
                    attack.name()
                );
            }
        }
    }

    #[test]
    fn corruption_budget_is_respected() {
        let n = 6;
        for attack in ALL_ATTACKS {
            for budget in [0usize, 1, 3] {
                let adv = AdaptiveAdversary::new(attack, n, budget, 9);
                let log = adv.handle();
                let _ = StepRunner::new(n, 9).with_tap(adv).run(fleet(n, 5, 2));
                let corrupted = log.snapshot();
                assert!(
                    corrupted.len() <= budget,
                    "{} corrupted {corrupted:?} with budget {budget}",
                    attack.name()
                );
            }
        }
    }

    #[test]
    fn leader_eclipse_targets_the_busiest_sender() {
        // Party 4 sends one extra message per round: it must be the first
        // corruption, and its later traffic must stop arriving.
        let n = 5;
        let adv = AdaptiveAdversary::new(Attack::LeaderEclipse, n, 1, 11);
        let log = adv.handle();
        let res = StepRunner::new(n, 11).with_tap(adv).run(fleet(n, 3, 4));
        assert_eq!(log.snapshot().into_iter().collect::<Vec<_>>(), vec![4]);
        // Final-round inboxes of other parties contain nothing from 4.
        for (i, out) in res.outputs.iter().enumerate() {
            if i + 1 == 4 {
                continue;
            }
            let inbox = out.as_ref().unwrap();
            assert!(
                inbox.iter().all(|&(from, _, _)| from != 4),
                "party {} still hears the eclipsed leader",
                i + 1
            );
        }
    }

    #[test]
    fn equivocate_splits_recipients_but_spares_broadcasts() {
        let n = 4;
        let adv = AdaptiveAdversary::new(Attack::Equivocate, n, 1, 13);
        let log = adv.handle();
        let res = StepRunner::new(n, 13).with_tap(adv).run(fleet(n, 3, 2));
        let corrupted = log.snapshot();
        assert_eq!(corrupted.len(), 1);
        let evil = *corrupted.iter().next().unwrap();
        // Unicast copies from the corrupted party disagree between an odd
        // and an even recipient; its broadcast copies agree everywhere.
        let final_round = 2u64;
        let view = |id: usize| res.outputs[id - 1].as_ref().unwrap();
        let uni = |id: usize| {
            view(id)
                .iter()
                .find(|&&(from, bcast, _)| from == evil && !bcast)
                .map(|&(_, _, v)| v)
        };
        let bc = |id: usize| {
            view(id)
                .iter()
                .find(|&&(from, bcast, _)| from == evil && bcast)
                .map(|&(_, _, v)| v)
        };
        let odd = (1..=n).find(|p| p % 2 == 1 && *p != evil).unwrap();
        let even = (1..=n).find(|p| p % 2 == 0 && *p != evil).unwrap();
        assert_eq!(uni(odd), Some(evil as u64 * 100 + final_round));
        // The even recipient got a stale replay: the corrupted sender's
        // *first* payload of the previous round (its broadcast copy).
        assert_eq!(uni(even), Some(evil as u64 * 1000 + final_round - 1));
        assert_eq!(bc(odd), bc(even), "ideal broadcast channel was violated");
    }

    #[test]
    fn partition_heals_at_the_configured_round() {
        let n = 5;
        let adv = AdaptiveAdversary::new(Attack::Partition { until_round: 2 }, n, 2, 21);
        let log = adv.handle();
        // 3 gossip rounds: the final inbox is from round 2 traffic, which
        // is past the partition, so everyone hears everyone again.
        let res = StepRunner::new(n, 21).with_tap(adv).run(fleet(n, 3, 1));
        assert_eq!(log.snapshot().len(), 2);
        for out in &res.outputs {
            let inbox = out.as_ref().unwrap();
            let senders: BTreeSet<usize> = inbox.iter().map(|&(from, _, _)| from).collect();
            assert_eq!(senders.len(), n, "partition failed to heal: {senders:?}");
        }
    }

    #[test]
    fn scheduled_adversary_is_deterministic_across_executors() {
        let n = 5;
        let schedule = vec![
            (0u64, Attack::LeaderEclipse),
            (2, Attack::Partition { until_round: 3 }),
            (3, Attack::Equivocate),
        ];
        for seed in [5u64, 23] {
            let adv_a = ScheduledAdversary::new(schedule.clone(), n, 2, seed);
            let log_a = adv_a.handle();
            let parallel = ParRunner::new(n, seed).with_tap(adv_a).run(fleet(n, 5, 3));
            let adv_b = ScheduledAdversary::new(schedule.clone(), n, 2, seed);
            let log_b = adv_b.handle();
            let stepped = StepRunner::new(n, seed).with_tap(adv_b).run(fleet(n, 5, 3));
            assert_eq!(parallel.outputs, stepped.outputs, "diverged at seed {seed}");
            assert_eq!(parallel.report, stepped.report);
            assert_eq!(log_a.snapshot(), log_b.snapshot());
        }
    }

    #[test]
    fn scheduled_adversary_shares_one_budget_across_legs() {
        // Two greedy legs, budget 2: the composite may corrupt at most 2
        // parties in total, not 2 per leg.
        let n = 6;
        let schedule = vec![
            (0u64, Attack::LeaderEclipse),
            (2, Attack::RandomChaos { drop_pct: 50, delay_pct: 0, max_delay: 1 }),
        ];
        let adv = ScheduledAdversary::new(schedule, n, 2, 31);
        let log = adv.handle();
        let _ = StepRunner::new(n, 31).with_tap(adv).run(fleet(n, 5, 2));
        assert!(log.snapshot().len() <= 2, "legs overspent: {:?}", log.snapshot());
    }

    #[test]
    fn scheduled_adversary_switches_legs() {
        // Leg 1 (rounds 0–1) eclipses the busiest sender; leg 2 (round 2+)
        // is an already-healed partition that delivers everything, so
        // traffic from the still-corrupted party resumes in the final
        // inbox — proof the first leg's fate rule stopped applying.
        let n = 5;
        let schedule = vec![
            (0u64, Attack::LeaderEclipse),
            (2, Attack::Partition { until_round: 0 }),
        ];
        let adv = ScheduledAdversary::new(schedule, n, 1, 11);
        let log = adv.handle();
        let res = StepRunner::new(n, 11).with_tap(adv).run(fleet(n, 4, 4));
        assert_eq!(log.snapshot().into_iter().collect::<Vec<_>>(), vec![4]);
        // The final round's traffic was sent in round 3, under leg 2, which
        // never drops — the corrupted party is audible again.
        let heard_4 = res.outputs[0]
            .as_ref()
            .unwrap()
            .iter()
            .any(|&(from, _, _)| from == 4);
        assert!(heard_4, "leg switch did not lift the eclipse");
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn scheduled_adversary_rejects_unordered_legs() {
        let _ = ScheduledAdversary::<u64>::new(
            vec![(3, Attack::LeaderEclipse), (3, Attack::Equivocate)],
            4,
            1,
            0,
        );
    }

    #[test]
    fn soak_plan_composite_is_deterministic_and_periodic() {
        let a = SoakPlan::composite(42, 1000, 97);
        let b = SoakPlan::composite(42, 1000, 97);
        assert_eq!(a, b);
        assert_eq!(a.len(), (1000 - 1) / 97);
        assert!(a.iter().all(|(e, _)| e % 97 == 0 && e > 0 && e < 1000));
        // A different seed gives a different mix eventually.
        let c = SoakPlan::composite(43, 1000, 97);
        assert_ne!(a, c);
        assert!(SoakPlan::new().is_empty());
    }

    #[test]
    fn attack_names_and_model_flags() {
        for attack in ALL_ATTACKS {
            assert!(!attack.name().is_empty());
        }
        assert!(Attack::LeaderEclipse.within_model());
        assert!(!Attack::BreakBroadcast.within_model());
    }
}
