//! Executor-equivalence property: any *pure* [`MsgTap`] — a tap whose
//! fate is a function of the [`MsgHop`] alone — emitting `Drop`, `Delay`
//! and `Tamper` preserves byte-identical transcripts across both
//! executors:
//!
//! * [`StepRunner::with_tap`] — the single-threaded stepper;
//! * [`ParRunner::with_tap`] — the deterministic work-stealing pool, at
//!   several thread counts.
//!
//! Purity keeps the property maximally strong (a hop-determined fate
//! cannot smuggle ordering information between parties), though both
//! executors in fact consult the tap on the coordinating thread in the
//! same id-major order, so even stateful taps agree. The property is
//! exercised over randomly drawn fleet shapes and fate tables via the
//! in-tree `proptest!` harness; failures replay with
//! `DPRBG_PROPTEST_SEED`.

use dprbg_rng::prelude::*;
use dprbg_sim::{
    BoxedMachine, MsgFate, MsgHop, ParRunner, RoundMachine, RoundView, RunResult, Step, StepRunner,
};

/// A gossip fleet: every party broadcasts and unicasts a round-tagged
/// payload each round, and records every inbox it ever sees. The output
/// is the party's full receive transcript `(round, from, broadcast,
/// msg)` — byte-identical transcripts means equal outputs here, plus
/// equal cost reports and round profiles.
struct Gossip {
    rounds: u64,
    transcript: Vec<(u64, usize, bool, u64)>,
}

impl RoundMachine<u64> for Gossip {
    type Output = Vec<(u64, usize, bool, u64)>;

    fn round(&mut self, view: RoundView<'_, u64>) -> Step<u64, Self::Output> {
        self.transcript
            .extend(view.inbox.iter().map(|r| (view.round, r.from, r.broadcast, r.msg)));
        if view.round < self.rounds {
            let mut out = view.outbox();
            out.broadcast(view.id as u64 * 1000 + view.round);
            out.send_to_all(view.id as u64 * 100 + view.round);
            Step::Continue(out)
        } else {
            Step::Done(std::mem::take(&mut self.transcript))
        }
    }
}

fn fleet(n: usize, rounds: u64) -> Vec<BoxedMachine<u64, Vec<(u64, usize, bool, u64)>>> {
    (0..n).map(|_| Box::new(Gossip { rounds, transcript: Vec::new() }) as _).collect()
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The fate-table shape the property draws: percentage weights for each
/// adversarial fate, with the remainder delivered untouched.
#[derive(Clone, Copy)]
struct TapParams {
    seed: u64,
    drop_pct: u64,
    delay_pct: u64,
    tamper_pct: u64,
    max_delay: u64,
}

/// A pure fate table: hash the full hop coordinate (sender, recipient,
/// round, channel, payload) and carve the hash into fate buckets. No
/// state, no ordering sensitivity — the contract [`MsgTap`] documents.
fn pure_fate(p: TapParams, hop: &MsgHop<'_, u64>) -> MsgFate<u64> {
    let h = splitmix64(
        p.seed
            ^ splitmix64(hop.from as u64)
            ^ splitmix64((hop.to as u64).rotate_left(16))
            ^ splitmix64(hop.round.rotate_left(32))
            ^ splitmix64(*hop.msg ^ u64::from(hop.broadcast)),
    );
    let bucket = h % 100;
    if bucket < p.drop_pct {
        MsgFate::Drop
    } else if bucket < p.drop_pct + p.delay_pct {
        MsgFate::Delay(1 + (h >> 32) % p.max_delay)
    } else if bucket < p.drop_pct + p.delay_pct + p.tamper_pct {
        MsgFate::Tamper(hop.msg ^ (h | 1))
    } else {
        MsgFate::Deliver
    }
}

fn tap(p: TapParams) -> impl FnMut(MsgHop<'_, u64>) -> MsgFate<u64> + Send + 'static {
    move |hop| pure_fate(p, &hop)
}

type Transcripts = RunResult<Vec<(u64, usize, bool, u64)>>;

/// Run the same tapped fleet under both executors (the pool twice, at one
/// and four workers).
fn run_all(n: usize, rounds: u64, seed: u64, p: TapParams) -> [Transcripts; 3] {
    let stepped = StepRunner::new(n, seed).with_tap(tap(p)).run(fleet(n, rounds));
    let narrow = ParRunner::new(n, seed).with_threads(1).with_tap(tap(p)).run(fleet(n, rounds));
    let wide = ParRunner::new(n, seed).with_threads(4).with_tap(tap(p)).run(fleet(n, rounds));
    [stepped, narrow, wide]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pure_taps_preserve_transcripts_across_executors(
        seed: u64,
        n in 3usize..6,
        rounds in 1u64..4,
        drop_pct in 0u64..40,
        delay_pct in 0u64..40,
        tamper_pct in 0u64..20,
        max_delay in 1u64..3,
    ) {
        let p = TapParams { seed, drop_pct, delay_pct, tamper_pct, max_delay };
        let [stepped, narrow, wide] = run_all(n, rounds, seed, p);
        prop_assert_eq!(&stepped.outputs, &narrow.outputs);
        prop_assert_eq!(&stepped.outputs, &wide.outputs);
        prop_assert_eq!(&stepped.report, &narrow.report);
        prop_assert_eq!(&stepped.report, &wide.report);
        prop_assert_eq!(&stepped.rounds, &narrow.rounds);
        prop_assert_eq!(&stepped.rounds, &wide.rounds);
    }
}

/// A fixed-seed spot check that the adversarial fates actually fire:
/// with every fate weighted on, the tapped transcript must differ from
/// an untapped run of the same fleet — equivalence above is not vacuous.
#[test]
fn tapped_transcript_differs_from_untapped() {
    let (n, rounds, seed) = (4, 3, 0xE0_11AB);
    let p = TapParams { seed, drop_pct: 25, delay_pct: 25, tamper_pct: 25, max_delay: 2 };
    let [stepped, narrow, wide] = run_all(n, rounds, seed, p);
    assert_eq!(stepped.outputs, narrow.outputs);
    assert_eq!(stepped.outputs, wide.outputs);
    let clean = StepRunner::new(n, seed).run(fleet(n, rounds));
    assert_ne!(clean.outputs, stepped.outputs, "the tap never fired");
}
