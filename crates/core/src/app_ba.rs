//! Common-coin randomized Byzantine agreement — the paper's flagship
//! application.
//!
//! "Shared coins are needed, amongst other things, for Byzantine
//! agreement (BA) and broadcast" (§1.1); "this result straightaway yields
//! speed-ups in many applications including broadcast and Byzantine
//! agreement" (§1.1). This module is that application: a Rabin-style
//! randomized BA whose per-phase coin comes from the bootstrapped D-PRBG
//! reservoir, so the *expected* number of phases is constant regardless
//! of `t` — against `t + 1` phases for any deterministic protocol.
//!
//! Per phase (for `n ≥ 6t + 1`, matching the coin machinery's model):
//!
//! 1. everyone sends its current bit;
//! 2. everyone draws the **same** shared coin from the beacon;
//! 3. a party seeing ≥ `n − t` votes for `b` decides `b`; one seeing
//!    ≥ `2t + 1` adopts the majority; otherwise it adopts the coin.
//!
//! Once some honest party decides `b` in phase `p`, every honest party
//! has ≥ `n − 2t ≥ 2t + 1 + 2t`… votes for `b` in phase `p + 1` and
//! decides too; if votes are split, the common coin matches the
//! eventual majority with probability ≥ 1/2, so the expected number of
//! phases to the first decision is ≤ 2 + O(1).
//!
//! The protocol runs a **fixed phase schedule** (`phases`, typically a
//! small constant multiple of the expectation): all honest parties stay
//! in lock-step through every beacon draw and refill, which keeps the
//! reservoir state synchronized — the deciding phase is reported so
//! callers can observe the expected-constant behaviour.

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_sim::{Embeds, PartyCtx};

use crate::bootstrap::Bootstrap;
use crate::coin_gen::CoinGenWire;
use crate::errors::CoinGenError;

/// The vote message of the common-coin BA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcbaVote(pub bool);

impl WireSize for CcbaVote {
    fn wire_bytes(&self) -> usize {
        1
    }
}

/// The outcome of a common-coin BA run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcbaOutcome {
    /// The agreed bit.
    pub decision: bool,
    /// The phase at which this party first saw ≥ n − t support (Lemma-8
    /// style: expected O(1)); `None` if the fixed schedule ended first
    /// (probability 2^-Ω(phases)).
    pub decided_in_phase: Option<usize>,
}

/// Run common-coin randomized BA on `input` over a fixed schedule of
/// `phases` phases, drawing one shared coin per phase from `beacon`.
///
/// All honest parties call this together with beacons in the same state.
/// Needs `M: CoinGenWire<F> + Embeds<CcbaVote>` — the wire type carries
/// both the generator's traffic (for beacon refills) and the votes.
///
/// # Errors
///
/// Propagates beacon failures (seed exhaustion etc.).
#[allow(clippy::int_plus_one)] // thresholds written as the paper states them
pub fn common_coin_ba<M, F>(
    ctx: &mut PartyCtx<M>,
    input: bool,
    t: usize,
    beacon: &mut Bootstrap<F>,
    phases: usize,
) -> Result<CcbaOutcome, CoinGenError>
where
    M: CoinGenWire<F> + Embeds<CcbaVote>,
    F: Field,
{
    let n = ctx.n();
    let mut v = input;
    let mut decided: Option<(bool, usize)> = None;

    for phase in 1..=phases {
        // Vote round.
        ctx.send_to_all(<M as Embeds<CcbaVote>>::wrap(CcbaVote(v)));
        let inbox = ctx.next_round();
        let mut ones = 0usize;
        let mut zeros = 0usize;
        let mut seen = vec![false; n];
        for r in inbox.iter() {
            if let Some(CcbaVote(b)) = <M as Embeds<CcbaVote>>::peek(&r.msg) {
                if !seen[r.from - 1] {
                    seen[r.from - 1] = true;
                    if *b {
                        ones += 1;
                    } else {
                        zeros += 1;
                    }
                }
            }
        }

        // The shared coin — drawn by everyone every phase so the beacon
        // (including its refills) stays in global lock-step.
        let coin = beacon.draw_bit(ctx)?;

        if ones >= n - t {
            v = true;
            decided = decided.or(Some((true, phase)));
        } else if zeros >= n - t {
            v = false;
            decided = decided.or(Some((false, phase)));
        } else if ones >= 2 * t + 1 && ones > zeros {
            v = true;
        } else if zeros >= 2 * t + 1 && zeros > ones {
            v = false;
        } else {
            v = coin;
        }
    }
    Ok(CcbaOutcome {
        decision: decided.map(|(d, _)| d).unwrap_or(v),
        decided_in_phase: decided.map(|(_, p)| p),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit_gen::BitGenMsg;
    use crate::bootstrap::BootstrapConfig;
    use crate::coin::ExposeMsg;
    use crate::coin_gen::{CliqueAnnounce, CoinGenConfig};
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_protocols::{BaMsg, GcMsg};
    use dprbg_sim::{run_network, FaultPlan};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::{RngExt, SeedableRng};

    type F = Gf2k<32>;

    /// Wire type: generator traffic + votes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Wire {
        Vote(CcbaVote),
        BitGen(BitGenMsg<F>),
        Expose(ExposeMsg<F>),
        Gc(GcMsg<CliqueAnnounce<F>>),
        Ba(BaMsg),
    }

    impl WireSize for Wire {
        fn wire_bytes(&self) -> usize {
            match self {
                Wire::Vote(m) => m.wire_bytes(),
                Wire::BitGen(m) => m.wire_bytes(),
                Wire::Expose(m) => m.wire_bytes(),
                Wire::Gc(m) => m.wire_bytes(),
                Wire::Ba(m) => m.wire_bytes(),
            }
        }
    }

    macro_rules! embed {
        ($inner:ty, $variant:ident) => {
            impl Embeds<$inner> for Wire {
                fn wrap(inner: $inner) -> Self {
                    Wire::$variant(inner)
                }
                fn peek(&self) -> Option<&$inner> {
                    match self {
                        Wire::$variant(m) => Some(m),
                        _ => None,
                    }
                }
            }
        };
    }
    embed!(CcbaVote, Vote);
    embed!(BitGenMsg<F>, BitGen);
    embed!(ExposeMsg<F>, Expose);
    embed!(GcMsg<CliqueAnnounce<F>>, Gc);
    embed!(BaMsg, Ba);

    fn beacons(n: usize, t: usize, seed: u64) -> Vec<Bootstrap<F>> {
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
            params,
            batch_size: 16,
        });
        TrustedDealer::deal_wallets::<F>(params, 6, seed)
            .into_iter()
            .map(|w| Bootstrap::new(cfg, w))
            .collect()
    }

    #[test]
    fn validity_with_unanimous_inputs() {
        for bit in [false, true] {
            let n = 7;
            let t = 1;
            let mut bs = beacons(n, t, 1);
            let behaviors: Vec<dprbg_sim::Behavior<Wire, CcbaOutcome>> = (0..n)
                .map(|_| {
                    let mut b = bs.remove(0);
                    Box::new(move |ctx: &mut PartyCtx<Wire>| {
                        common_coin_ba(ctx, bit, t, &mut b, 6).unwrap()
                    }) as dprbg_sim::Behavior<Wire, CcbaOutcome>
                })
                .collect();
            for out in run_network(n, 2, behaviors).unwrap_all() {
                assert_eq!(out.decision, bit);
                assert_eq!(out.decided_in_phase, Some(1), "unanimous → phase 1");
            }
        }
    }

    #[test]
    fn split_inputs_converge_fast() {
        let n = 7;
        let t = 1;
        let mut bs = beacons(n, t, 3);
        let behaviors: Vec<dprbg_sim::Behavior<Wire, CcbaOutcome>> = (1..=n)
            .map(|id| {
                let mut b = bs.remove(0);
                Box::new(move |ctx: &mut PartyCtx<Wire>| {
                    common_coin_ba(ctx, id % 2 == 0, 1, &mut b, 8).unwrap()
                }) as dprbg_sim::Behavior<Wire, CcbaOutcome>
            })
            .collect();
        let outs = run_network(n, 4, behaviors).unwrap_all();
        let d = outs[0].decision;
        for out in &outs {
            assert_eq!(out.decision, d, "agreement");
            let p = out.decided_in_phase.expect("must decide within 8 phases");
            assert!(p <= 4, "expected-constant phases, got {p}");
        }
    }

    #[test]
    fn agreement_under_adaptive_byzantine_voter() {
        // The faulty party splits its votes to keep honest counts near
        // the threshold; the common coin still forces convergence.
        let n = 7;
        let t = 1;
        let plan = FaultPlan::explicit(n, vec![2]);
        let mut bs = beacons(n, t, 5);
        let mut honest_beacons: Vec<Bootstrap<F>> = Vec::new();
        for id in 1..=n {
            let b = bs.remove(0);
            if !plan.is_faulty(id) {
                honest_beacons.push(b);
            }
        }
        let phases = 10;
        let behaviors = plan.behaviors::<Wire, Option<CcbaOutcome>>(
            |id| {
                let mut b = honest_beacons.remove(0);
                Box::new(move |ctx| {
                    common_coin_ba(ctx, id % 2 == 0, 1, &mut b, phases).ok()
                })
            },
            |_| {
                Box::new(move |ctx| {
                    let mut rng = StdRng::seed_from_u64(99);
                    // Vote round: split; coin round: corrupt expose share.
                    // It cannot predict the coin, so its split fails in
                    // expectation within a couple of phases.
                    loop {
                        if ctx.active_parties() <= 1 {
                            return None;
                        }
                        let n = ctx.n();
                        for to in 1..=n {
                            ctx.send(to, Wire::Vote(CcbaVote(rng.random())));
                        }
                        let _ = ctx.next_round();
                        if ctx.active_parties() <= 1 {
                            return None;
                        }
                        ctx.send_to_all(Wire::Expose(ExposeMsg(F::from_u64(
                            rng.random::<u32>() as u64,
                        ))));
                        let _ = ctx.next_round();
                    }
                })
            },
        );
        let res = run_network(n, 6, behaviors);
        let outs: Vec<CcbaOutcome> = plan
            .honest()
            .map(|id| res.outputs[id - 1].as_ref().unwrap().unwrap())
            .collect();
        let d = outs[0].decision;
        for out in &outs {
            assert_eq!(out.decision, d, "agreement under Byzantine votes");
            assert!(out.decided_in_phase.is_some(), "must decide in 10 phases");
        }
    }

    #[test]
    fn validity_is_never_overridden_by_the_coin() {
        // All honest input true; the adversary votes false and corrupts
        // coin shares: true must win (validity).
        let n = 7;
        let t = 1;
        let plan = FaultPlan::explicit(n, vec![7]);
        let mut bs = beacons(n, t, 7);
        let mut honest_beacons: Vec<Bootstrap<F>> = Vec::new();
        for id in 1..=n {
            let b = bs.remove(0);
            if !plan.is_faulty(id) {
                honest_beacons.push(b);
            }
        }
        let behaviors = plan.behaviors::<Wire, Option<CcbaOutcome>>(
            |_| {
                let mut b = honest_beacons.remove(0);
                Box::new(move |ctx| common_coin_ba(ctx, true, 1, &mut b, 6).ok())
            },
            |_| {
                Box::new(move |ctx| {
                    for _ in 0..12 {
                        if ctx.active_parties() <= 1 {
                            return None;
                        }
                        ctx.send_to_all(Wire::Vote(CcbaVote(false)));
                        let _ = ctx.next_round();
                        ctx.send_to_all(Wire::Expose(ExposeMsg(F::from_u64(0xBAD))));
                        let _ = ctx.next_round();
                    }
                    None
                })
            },
        );
        let res = run_network(n, 8, behaviors);
        for id in plan.honest() {
            let out = res.outputs[id - 1].as_ref().unwrap().unwrap();
            assert!(out.decision, "validity at party {id}");
            assert_eq!(out.decided_in_phase, Some(1));
        }
    }
}
