//! Common-coin randomized Byzantine agreement — the paper's flagship
//! application.
//!
//! "Shared coins are needed, amongst other things, for Byzantine
//! agreement (BA) and broadcast" (§1.1); "this result straightaway yields
//! speed-ups in many applications including broadcast and Byzantine
//! agreement" (§1.1). This module is that application: a Rabin-style
//! randomized BA whose per-phase coin comes from the bootstrapped D-PRBG
//! reservoir, so the *expected* number of phases is constant regardless
//! of `t` — against `t + 1` phases for any deterministic protocol.
//!
//! Per phase (for `n ≥ 6t + 1`, matching the coin machinery's model):
//!
//! 1. everyone sends its current bit;
//! 2. everyone draws the **same** shared coin from the beacon;
//! 3. a party seeing ≥ `n − t` votes for `b` decides `b`; one seeing
//!    ≥ `2t + 1` adopts the majority; otherwise it adopts the coin.
//!
//! Once some honest party decides `b` in phase `p`, every honest party
//! has ≥ `n − 2t ≥ 2t + 1 + 2t`… votes for `b` in phase `p + 1` and
//! decides too; if votes are split, the common coin matches the
//! eventual majority with probability ≥ 1/2, so the expected number of
//! phases to the first decision is ≤ 2 + O(1).
//!
//! The protocol runs a **fixed phase schedule** (`phases`, typically a
//! small constant multiple of the expectation): all honest parties stay
//! in lock-step through every beacon draw and refill, which keeps the
//! reservoir state synchronized — the deciding phase is reported so
//! callers can observe the expected-constant behaviour.

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_sim::{
    from_fn, looping, ready, Embeds, LoopControl, MachineExt, RoundMachine, RoundView, Step,
};

use crate::bootstrap::Bootstrap;
use crate::coin_gen::CoinGenWire;
use crate::errors::CoinGenError;

/// The vote message of the common-coin BA.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcbaVote(pub bool);

impl WireSize for CcbaVote {
    fn wire_bytes(&self) -> usize {
        1
    }
}

/// The outcome of a common-coin BA run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcbaOutcome {
    /// The agreed bit.
    pub decision: bool,
    /// The phase at which this party first saw ≥ n − t support (Lemma-8
    /// style: expected O(1)); `None` if the fixed schedule ended first
    /// (probability 2^-Ω(phases)).
    pub decided_in_phase: Option<usize>,
}

/// One vote exchange: send the current bit, tally the distinct votes.
fn vote_round<M>(v: bool) -> impl RoundMachine<M, Output = (usize, usize, usize)>
where
    M: Clone + WireSize + Embeds<CcbaVote> + Send + 'static,
{
    let mut sent = false;
    from_fn(move |view: RoundView<'_, M>| {
        if !sent {
            sent = true;
            let mut out = view.outbox();
            out.send_to_all(<M as Embeds<CcbaVote>>::wrap(CcbaVote(v)));
            return Step::Continue(out);
        }
        let n = view.n;
        let mut ones = 0usize;
        let mut zeros = 0usize;
        let mut seen = vec![false; n];
        for r in view.inbox.iter() {
            if let Some(CcbaVote(b)) = <M as Embeds<CcbaVote>>::peek(&r.msg) {
                if !seen[r.from - 1] {
                    seen[r.from - 1] = true;
                    if *b {
                        ones += 1;
                    } else {
                        zeros += 1;
                    }
                }
            }
        }
        Step::Done((n, ones, zeros))
    })
    .labelled("ccba/vote")
}

/// Loop state of the phase schedule.
enum CcbaFlow<F: Field> {
    /// About to run phase `phase` (1-based) with current estimate `v`.
    Phase { beacon: Bootstrap<F>, v: bool, decided: Option<(bool, usize)>, phase: usize },
    /// Votes tallied and the phase coin drawn: apply the decision rule.
    Coin {
        beacon: Bootstrap<F>,
        decided: Option<(bool, usize)>,
        phase: usize,
        n: usize,
        ones: usize,
        zeros: usize,
        coin: Result<bool, CoinGenError>,
    },
}

/// A machine running common-coin randomized BA on `input` over a fixed
/// schedule of `phases` phases, drawing one shared coin per phase from
/// `beacon`.
///
/// All honest parties start this machine together with beacons in the
/// same state; the output returns the beacon (advanced by `phases` draws
/// plus any refills) alongside the outcome. Needs
/// `M: CoinGenWire<F> + Embeds<CcbaVote>` — the wire type carries both
/// the generator's traffic (for beacon refills) and the votes. The
/// result half of the output propagates beacon failures (seed exhaustion
/// etc.).
#[allow(clippy::int_plus_one)] // thresholds written as the paper states them
pub fn common_coin_ba<M, F>(
    input: bool,
    t: usize,
    beacon: Bootstrap<F>,
    phases: usize,
) -> impl RoundMachine<M, Output = (Bootstrap<F>, Result<CcbaOutcome, CoinGenError>)>
where
    M: CoinGenWire<F> + Embeds<CcbaVote>,
    F: Field,
{
    let init = CcbaFlow::Phase { beacon, v: input, decided: None, phase: 1 };
    looping(init, move |flow| match flow {
        CcbaFlow::Phase { beacon, v, decided, phase } => {
            if phase > phases {
                let outcome = CcbaOutcome {
                    decision: decided.map(|(d, _)| d).unwrap_or(v),
                    decided_in_phase: decided.map(|(_, p)| p),
                };
                return LoopControl::Break((beacon, Ok(outcome)));
            }
            // Vote round, then the shared coin — drawn by everyone every
            // phase so the beacon (including its refills) stays in global
            // lock-step.
            LoopControl::Continue(Box::new(vote_round::<M>(v).then(
                move |(n, ones, zeros)| {
                    beacon.draw_bit().map(move |(beacon, coin)| CcbaFlow::Coin {
                        beacon,
                        decided,
                        phase,
                        n,
                        ones,
                        zeros,
                        coin,
                    })
                },
            )))
        }
        CcbaFlow::Coin { beacon, mut decided, phase, n, ones, zeros, coin } => {
            let coin = match coin {
                Ok(c) => c,
                Err(e) => return LoopControl::Break((beacon, Err(e))),
            };
            let v = if ones >= n - t {
                decided = decided.or(Some((true, phase)));
                true
            } else if zeros >= n - t {
                decided = decided.or(Some((false, phase)));
                false
            } else if ones >= 2 * t + 1 && ones > zeros {
                true
            } else if zeros >= 2 * t + 1 && zeros > ones {
                false
            } else {
                coin
            };
            // Pure transition: the next phase's vote goes out in the same
            // driver round the coin landed in.
            LoopControl::Continue(Box::new(ready(CcbaFlow::Phase {
                beacon,
                v,
                decided,
                phase: phase + 1,
            })))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bit_gen::BitGenMsg;
    use crate::bootstrap::BootstrapConfig;
    use crate::coin::ExposeMsg;
    use crate::coin_gen::{CliqueAnnounce, CoinGenConfig};
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_protocols::{BaMsg, GcMsg};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::{RngExt, SeedableRng};
    use dprbg_sim::{BoxedMachine, FaultPlan, StepRunner};

    type F = Gf2k<32>;

    /// Wire type: generator traffic + votes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    enum Wire {
        Vote(CcbaVote),
        BitGen(BitGenMsg<F>),
        Expose(ExposeMsg<F>),
        Gc(GcMsg<CliqueAnnounce<F>>),
        Ba(BaMsg),
    }

    impl WireSize for Wire {
        fn wire_bytes(&self) -> usize {
            match self {
                Wire::Vote(m) => m.wire_bytes(),
                Wire::BitGen(m) => m.wire_bytes(),
                Wire::Expose(m) => m.wire_bytes(),
                Wire::Gc(m) => m.wire_bytes(),
                Wire::Ba(m) => m.wire_bytes(),
            }
        }
    }

    macro_rules! embed {
        ($inner:ty, $variant:ident) => {
            impl Embeds<$inner> for Wire {
                fn wrap(inner: $inner) -> Self {
                    Wire::$variant(inner)
                }
                fn peek(&self) -> Option<&$inner> {
                    match self {
                        Wire::$variant(m) => Some(m),
                        _ => None,
                    }
                }
            }
        };
    }
    embed!(CcbaVote, Vote);
    embed!(BitGenMsg<F>, BitGen);
    embed!(ExposeMsg<F>, Expose);
    embed!(GcMsg<CliqueAnnounce<F>>, Gc);
    embed!(BaMsg, Ba);

    fn beacons(n: usize, t: usize, seed: u64) -> Vec<Bootstrap<F>> {
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
            params,
            batch_size: 16,
        });
        TrustedDealer::deal_wallets::<F>(params, 6, seed)
            .into_iter()
            .map(|w| Bootstrap::new(cfg, w))
            .collect()
    }

    #[test]
    fn validity_with_unanimous_inputs() {
        for bit in [false, true] {
            let n = 7;
            let t = 1;
            let machines: Vec<BoxedMachine<Wire, CcbaOutcome>> = beacons(n, t, 1)
                .into_iter()
                .map(|b| {
                    Box::new(
                        common_coin_ba::<Wire, F>(bit, t, b, 6)
                            .map(|(_, res)| res.unwrap()),
                    ) as BoxedMachine<Wire, _>
                })
                .collect();
            for out in StepRunner::new(n, 2).run(machines).unwrap_all() {
                assert_eq!(out.decision, bit);
                assert_eq!(out.decided_in_phase, Some(1), "unanimous → phase 1");
            }
        }
    }

    #[test]
    fn split_inputs_converge_fast() {
        let n = 7;
        let machines: Vec<BoxedMachine<Wire, CcbaOutcome>> = beacons(n, 1, 3)
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                let id = i + 1;
                Box::new(
                    common_coin_ba::<Wire, F>(id % 2 == 0, 1, b, 8)
                        .map(|(_, res)| res.unwrap()),
                ) as BoxedMachine<Wire, _>
            })
            .collect();
        let outs = StepRunner::new(n, 4).run(machines).unwrap_all();
        let d = outs[0].decision;
        for out in &outs {
            assert_eq!(out.decision, d, "agreement");
            let p = out.decided_in_phase.expect("must decide within 8 phases");
            assert!(p <= 4, "expected-constant phases, got {p}");
        }
    }

    #[test]
    fn agreement_under_adaptive_byzantine_voter() {
        // The faulty party splits its votes to keep honest counts near
        // the threshold; the common coin still forces convergence. It
        // cannot predict the coin, so its split fails in expectation
        // within a couple of phases.
        let n = 7;
        let t = 1;
        let plan = FaultPlan::explicit(n, vec![2]);
        let bs = beacons(n, t, 5);
        let phases = 10;
        let machines = plan.machines::<Wire, Option<CcbaOutcome>>(
            |id| {
                let b = bs[id - 1].clone();
                Box::new(
                    common_coin_ba::<Wire, F>(id % 2 == 0, 1, b, phases)
                        .map(|(_, res)| res.ok()),
                )
            },
            |_| {
                let mut rng = StdRng::seed_from_u64(99);
                // Alternate split votes (even rounds) and corrupted expose
                // shares (odd rounds) well past the honest schedule.
                Box::new(from_fn(move |view: RoundView<'_, Wire>| {
                    if view.round >= 60 {
                        return Step::Done(None);
                    }
                    let mut out = view.outbox();
                    if view.round % 2 == 0 {
                        for to in 1..=view.n {
                            out.send(to, Wire::Vote(CcbaVote(rng.random())));
                        }
                    } else {
                        out.send_to_all(Wire::Expose(ExposeMsg(F::from_u64(
                            rng.random::<u32>() as u64,
                        ))));
                    }
                    Step::Continue(out)
                }))
            },
        );
        let res = StepRunner::new(n, 6).run(machines);
        let outs: Vec<CcbaOutcome> = plan
            .honest()
            .map(|id| res.outputs[id - 1].as_ref().unwrap().unwrap())
            .collect();
        let d = outs[0].decision;
        for out in &outs {
            assert_eq!(out.decision, d, "agreement under Byzantine votes");
            assert!(out.decided_in_phase.is_some(), "must decide in 10 phases");
        }
    }

    #[test]
    fn validity_is_never_overridden_by_the_coin() {
        // All honest input true; the adversary votes false and corrupts
        // coin shares: true must win (validity).
        let n = 7;
        let t = 1;
        let plan = FaultPlan::explicit(n, vec![7]);
        let bs = beacons(n, t, 7);
        let machines = plan.machines::<Wire, Option<CcbaOutcome>>(
            |id| {
                let b = bs[id - 1].clone();
                Box::new(
                    common_coin_ba::<Wire, F>(true, 1, b, 6).map(|(_, res)| res.ok()),
                )
            },
            |_| {
                Box::new(from_fn(move |view: RoundView<'_, Wire>| {
                    if view.round >= 24 {
                        return Step::Done(None);
                    }
                    let mut out = view.outbox();
                    if view.round % 2 == 0 {
                        out.send_to_all(Wire::Vote(CcbaVote(false)));
                    } else {
                        out.send_to_all(Wire::Expose(ExposeMsg(F::from_u64(0xBAD))));
                    }
                    Step::Continue(out)
                }))
            },
        );
        let res = StepRunner::new(n, 8).run(machines);
        for id in plan.honest() {
            let out = res.outputs[id - 1].as_ref().unwrap().unwrap();
            assert!(out.decision, "validity at party {id}");
            assert_eq!(out.decided_in_phase, Some(1));
        }
    }
}
