//! Bootstrapping (Fig. 1, §1.2): a self-sustaining source of shared coins.
//!
//! "An initial distributed seed is generated via some known, not
//! necessarily fast protocol. Then the generator is run to produce as many
//! coins as the current execution of the application needs, plus another
//! (distributed) seed. … we envision an adaptive mechanism, in which coins
//! are generated on demand, with a constant threshold triggering the
//! generation of new coins."
//!
//! [`Bootstrap`] is that adaptive mechanism: a reservoir of sealed coins
//! that refills itself (by running the D-PRBG) whenever a draw would drop
//! it below the low-water mark. Once kicked off, the source is
//! self-sufficient — each refill consumes a constant expected number of
//! seed coins and deposits `M`.
//!
//! Each operation consumes the reservoir and returns a [`RoundMachine`]
//! whose output hands it back alongside the result, so applications
//! thread the reservoir through a chain of draws with
//! [`dprbg_sim::MachineExt::then`] or [`dprbg_sim::looping`].

use std::mem;

use dprbg_field::Field;
use dprbg_sim::{looping, LoopControl, MachineExt, RoundMachine};

use crate::coin::{CoinWallet, ExposeMachine, ExposeVia, SealedShare};
use crate::coin_gen::{CoinGenConfig, CoinGenWire};
use crate::dprbg::dprbg_expand;
use crate::errors::CoinGenError;
use crate::refresh::{RefreshMachine, RefreshReport};

/// Configuration of the bootstrap reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapConfig {
    /// The generator configuration (parameters + batch size `M`).
    pub coin_gen: CoinGenConfig,
    /// Refill when the reservoir is about to drop below this level. Must
    /// cover the generator's own seed needs: ≥ 2 (one challenge + one
    /// leader coin), comfortably more to absorb extra BA attempts under
    /// faults.
    pub low_water: usize,
}

impl BootstrapConfig {
    /// A sensible default low-water mark: `4 + t` (challenge + expected
    /// leader coins + slack proportional to the number of corruptible
    /// leaders).
    pub fn with_default_low_water(coin_gen: CoinGenConfig) -> Self {
        BootstrapConfig { coin_gen, low_water: 4 + coin_gen.params.t }
    }
}

/// Cumulative statistics of a bootstrap reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BootstrapStats {
    /// Coins drawn (consumed by the application).
    pub draws: usize,
    /// D-PRBG refill runs triggered.
    pub refills: usize,
    /// Seed coins the refills consumed.
    pub seeds_consumed: usize,
    /// Coins the refills produced.
    pub coins_produced: usize,
    /// Leader attempts across all refills (Lemma 8: expected O(1) each).
    pub attempts: usize,
}

/// The bootstrap reservoir of Fig. 1.
///
/// One instance per party; all honest parties drive theirs in lock-step
/// (the refill decision depends only on the shared reservoir level, so
/// honest parties always agree on when to refill).
///
/// # Examples
///
/// See `examples/coin_beacon.rs` for a full application loop.
#[derive(Debug, Clone)]
pub struct Bootstrap<F: Field> {
    cfg: BootstrapConfig,
    wallet: CoinWallet<F>,
    stats: BootstrapStats,
}

/// States of the refill-then-act flows (private to the loops below).
enum Flow<F: Field, T> {
    Start(Bootstrap<F>),
    Refilled(Bootstrap<F>, Result<bool, CoinGenError>),
    Done(Bootstrap<F>, Result<T, CoinGenError>),
}

/// States of the draw-and-expose flow.
enum DrawFlow<F: Field> {
    Start(Bootstrap<F>),
    Drawn(Bootstrap<F>, Result<SealedShare<F>, CoinGenError>),
    Exposed(Bootstrap<F>, Result<F, CoinGenError>),
}

impl<F: Field> Bootstrap<F> {
    /// Start the reservoir from an initial seed wallet (trusted dealer or
    /// preprocessing — see [`crate::dealer`]).
    pub fn new(cfg: BootstrapConfig, initial: CoinWallet<F>) -> Self {
        Bootstrap { cfg, wallet: initial, stats: BootstrapStats::default() }
    }

    /// Coins currently sealed in the reservoir.
    pub fn level(&self) -> usize {
        self.wallet.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BootstrapStats {
        self.stats
    }

    /// The generator configuration.
    pub fn config(&self) -> &BootstrapConfig {
        &self.cfg
    }

    /// Refill if a draw now would leave fewer than `low_water` coins.
    ///
    /// The result is `Ok(true)` when a refill ran; on generator errors
    /// the reservoir is unchanged except for the seeds the failed run
    /// consumed. A reservoir above the low-water mark produces `Ok(false)`
    /// without costing a round.
    pub fn maybe_refill<M: CoinGenWire<F>>(
        self,
    ) -> impl RoundMachine<M, Output = (Self, Result<bool, CoinGenError>)> {
        looping(Flow::<F, bool>::Start(self), |flow| match flow {
            Flow::Start(mut b) => {
                if b.wallet.len() > b.cfg.low_water {
                    return LoopControl::Break((b, Ok(false)));
                }
                let cfg = b.cfg.coin_gen;
                let wallet = mem::take(&mut b.wallet);
                LoopControl::Continue(Box::new(dprbg_expand::<M, F>(cfg, wallet).map(
                    move |(w, res)| {
                        b.wallet = w;
                        match res {
                            Ok(run) => {
                                b.stats.refills += 1;
                                b.stats.seeds_consumed += run.seeds_consumed;
                                b.stats.coins_produced += run.coins_produced;
                                b.stats.attempts += run.attempts;
                                Flow::Done(b, Ok(true))
                            }
                            Err(e) => Flow::Done(b, Err(e)),
                        }
                    },
                )))
            }
            Flow::Refilled(b, res) => LoopControl::Break((b, res)),
            Flow::Done(b, res) => LoopControl::Break((b, res)),
        })
    }

    /// Draw the next sealed coin *without* exposing it (for protocols
    /// that consume sealed coins, e.g. further VSS runs). Refills first
    /// when needed.
    ///
    /// The result carries refill errors, and
    /// [`crate::CoinError::WalletEmpty`] (as `CoinGenError::Coin`) only
    /// if refilling is impossible.
    pub fn draw_sealed<M: CoinGenWire<F>>(
        self,
    ) -> impl RoundMachine<M, Output = (Self, Result<SealedShare<F>, CoinGenError>)> {
        self.maybe_refill().map(|(mut b, res)| match res {
            Err(e) => (b, Err(e)),
            Ok(_) => match b.wallet.pop() {
                Err(e) => (b, Err(e.into())),
                Ok(share) => {
                    b.stats.draws += 1;
                    (b, Ok(share))
                }
            },
        })
    }

    /// Draw and expose the next coin: the application-facing "give me a
    /// fresh shared random value" call (one expose round-trip, plus a
    /// refill when the reservoir is low).
    ///
    /// See [`Bootstrap::draw_sealed`] and [`ExposeMachine`] for the
    /// failure modes carried in the result.
    pub fn draw<M: CoinGenWire<F>>(
        self,
    ) -> impl RoundMachine<M, Output = (Self, Result<F, CoinGenError>)> {
        looping(DrawFlow::Start(self), |flow| match flow {
            DrawFlow::Start(b) => LoopControl::Continue(Box::new(
                b.draw_sealed().map(|(b, res)| DrawFlow::Drawn(b, res)),
            )),
            DrawFlow::Drawn(b, Err(e)) => LoopControl::Break((b, Err(e))),
            DrawFlow::Drawn(b, Ok(share)) => {
                let t = b.cfg.coin_gen.params.t;
                LoopControl::Continue(Box::new(
                    ExposeMachine::new(share, t, ExposeVia::PointToPoint)
                        .map(move |r| DrawFlow::Exposed(b, r.map_err(CoinGenError::Coin))),
                ))
            }
            DrawFlow::Exposed(b, res) => LoopControl::Break((b, res)),
        })
    }

    /// Draw one *binary* shared coin: the low bit of a k-ary draw (the
    /// paper: "as all our coins will be generated in the field GF(2^k) we
    /// can assume that each coin generates in fact k random coins in
    /// {0,1}").
    pub fn draw_bit<M: CoinGenWire<F>>(
        self,
    ) -> impl RoundMachine<M, Output = (Self, Result<bool, CoinGenError>)> {
        self.draw().map(|(b, res)| (b, res.map(|v| v.to_u64() & 1 == 1)))
    }

    /// Draw one k-ary coin and return all `k` of its binary coins, least
    /// significant first — applications that consume bits in bulk get
    /// `k` shared bits per expose round.
    pub fn draw_bits<M: CoinGenWire<F>>(
        self,
    ) -> impl RoundMachine<M, Output = (Self, Result<Vec<bool>, CoinGenError>)> {
        self.draw().map(|(b, res)| {
            (b, res.map(|val| {
                let v = val.to_u64();
                // lint: allow(ledger-coverage) — bit-split of the drawn coin's canonical u64: output formatting, not field arithmetic
                (0..F::bits()).map(|i| (v >> i) & 1 == 1).collect()
            }))
        })
    }

    /// Proactively re-randomize every sealed share in the reservoir
    /// (epoch boundary in the §1.2 mobile-adversary setting). Refills
    /// first if the reservoir is low, so the refresh's own seed
    /// consumption cannot drain it.
    ///
    /// The result propagates refill and refresh failures.
    pub fn refresh<M: CoinGenWire<F>>(
        self,
    ) -> impl RoundMachine<M, Output = (Self, Result<RefreshReport, CoinGenError>)> {
        looping(Flow::<F, RefreshReport>::Start(self), |flow| match flow {
            Flow::Start(b) => LoopControl::Continue(Box::new(
                b.maybe_refill().map(|(b, res)| Flow::Refilled(b, res)),
            )),
            Flow::Refilled(b, Err(e)) => LoopControl::Break((b, Err(e))),
            Flow::Refilled(mut b, Ok(_)) => {
                let cfg = b.cfg.coin_gen;
                let wallet = mem::take(&mut b.wallet);
                LoopControl::Continue(Box::new(RefreshMachine::new(cfg, wallet).map(
                    move |(w, res)| {
                        b.wallet = w;
                        Flow::Done(b, res)
                    },
                )))
            }
            Flow::Done(b, res) => LoopControl::Break((b, res)),
        })
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use crate::coin_gen::CoinGenMsg;
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_sim::{BoxedMachine, StepRunner};

    type F = Gf2k<32>;
    type M = CoinGenMsg<F>;

    fn setup(n: usize, t: usize, m: usize, initial: usize, seed: u64) -> Vec<Bootstrap<F>> {
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
            params,
            batch_size: m,
        });
        TrustedDealer::deal_wallets::<F>(params, initial, seed)
            .into_iter()
            .map(|w| Bootstrap::new(cfg, w))
            .collect()
    }

    /// Draw `draws` coins back-to-back, threading the reservoir through.
    fn draw_many(
        b: Bootstrap<F>,
        draws: usize,
    ) -> impl RoundMachine<M, Output = (Bootstrap<F>, Vec<F>)> {
        looping((b, Vec::new(), draws), |(b, vals, k)| {
            if k == 0 {
                return LoopControl::Break((b, vals));
            }
            LoopControl::Continue(Box::new(b.draw().map(move |(b, res)| {
                let mut vals = vals;
                vals.push(res.expect("draw succeeds"));
                (b, vals, k - 1)
            })))
        })
    }

    #[test]
    fn draws_beyond_initial_seed_sustain_themselves() {
        // Initial seed of 6; draw 40 coins — far more than dealt. The
        // reservoir must refill on demand and all parties must see the
        // same 40 values.
        let n = 7;
        let t = 1;
        let draws = 40;
        let boots = setup(n, t, 16, 6, 1);
        let machines: Vec<BoxedMachine<M, (Vec<F>, BootstrapStats)>> = boots
            .into_iter()
            .map(|b| {
                Box::new(draw_many(b, draws).map(|(b, vals)| (vals, b.stats())))
                    as BoxedMachine<M, _>
            })
            .collect();
        let outs = StepRunner::new(n, 2).run(machines).unwrap_all();
        let (vals0, stats0) = &outs[0];
        assert_eq!(vals0.len(), draws);
        assert!(stats0.refills >= 2, "must have refilled: {stats0:?}");
        assert!(stats0.coins_produced > stats0.seeds_consumed);
        for (vals, _) in &outs {
            assert_eq!(vals, vals0, "coin values must be unanimous");
        }
    }

    #[test]
    fn refill_only_when_low() {
        let n = 7;
        let t = 1;
        let boots = setup(n, t, 8, 20, 3);
        let machines: Vec<BoxedMachine<M, BootstrapStats>> = boots
            .into_iter()
            .map(|b| {
                // 3 draws from a 20-coin reservoir: no refill needed.
                Box::new(draw_many(b, 3).map(|(b, _)| b.stats())) as BoxedMachine<M, _>
            })
            .collect();
        for stats in StepRunner::new(n, 4).run(machines).unwrap_all() {
            assert_eq!(stats.refills, 0);
            assert_eq!(stats.draws, 3);
        }
    }

    #[test]
    fn draw_bit_is_unanimous() {
        let n = 7;
        let t = 1;
        let boots = setup(n, t, 8, 6, 5);
        let machines: Vec<BoxedMachine<M, Vec<bool>>> = boots
            .into_iter()
            .map(|b| {
                Box::new(looping((b, Vec::new(), 8usize), |(b, bits, k)| {
                    if k == 0 {
                        return LoopControl::Break(bits);
                    }
                    LoopControl::Continue(Box::new(b.draw_bit().map(move |(b, res)| {
                        let mut bits = bits;
                        bits.push(res.expect("draw succeeds"));
                        (b, bits, k - 1)
                    })))
                })) as BoxedMachine<M, _>
            })
            .collect();
        let outs = StepRunner::new(n, 6).run(machines).unwrap_all();
        let b0 = outs[0].clone();
        assert!(outs.iter().all(|o| o == &b0));
        // Not all bits equal (probability 2^-7 per pattern; seeded test).
        assert!(b0.iter().any(|&x| x) || b0.iter().any(|&x| !x));
    }

    #[test]
    fn draw_bits_yields_k_unanimous_bits() {
        let n = 7;
        let t = 1;
        let boots = setup(n, t, 8, 6, 8);
        let machines: Vec<BoxedMachine<M, Vec<bool>>> = boots
            .into_iter()
            .map(|b| {
                Box::new(b.draw_bits().map(|(_, res)| res.expect("draw succeeds")))
                    as BoxedMachine<M, _>
            })
            .collect();
        let outs = StepRunner::new(n, 9).run(machines).unwrap_all();
        let bits = outs[0].clone();
        assert_eq!(bits.len(), 32, "one bit per field bit");
        assert!(outs.iter().all(|o| o == &bits));
        // 32 coin flips: both values present except w.p. 2^-31.
        assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
    }

    #[test]
    fn empty_initial_seed_fails_cleanly() {
        let n = 7;
        let t = 1;
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
            params,
            batch_size: 8,
        });
        let machines: Vec<BoxedMachine<M, Option<CoinGenError>>> = (0..n)
            .map(|_| {
                let b = Bootstrap::<F>::new(cfg, CoinWallet::new());
                Box::new(b.draw().map(|(_, res)| res.err())) as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 7).run(machines).unwrap_all() {
            assert_eq!(out, Some(CoinGenError::SeedExhausted));
        }
    }
}
