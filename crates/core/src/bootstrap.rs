//! Bootstrapping (Fig. 1, §1.2): a self-sustaining source of shared coins.
//!
//! "An initial distributed seed is generated via some known, not
//! necessarily fast protocol. Then the generator is run to produce as many
//! coins as the current execution of the application needs, plus another
//! (distributed) seed. … we envision an adaptive mechanism, in which coins
//! are generated on demand, with a constant threshold triggering the
//! generation of new coins."
//!
//! [`Bootstrap`] is that adaptive mechanism: a reservoir of sealed coins
//! that refills itself (by running the D-PRBG) whenever a draw would drop
//! it below the low-water mark. Once kicked off, the source is
//! self-sufficient — each refill consumes a constant expected number of
//! seed coins and deposits `M`.

use dprbg_field::Field;
use dprbg_sim::PartyCtx;

use crate::coin::{coin_expose, CoinWallet, ExposeVia, SealedShare};
use crate::coin_gen::{CoinGenConfig, CoinGenWire};
use crate::dprbg::dprbg_expand;
use crate::errors::CoinGenError;

/// Configuration of the bootstrap reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BootstrapConfig {
    /// The generator configuration (parameters + batch size `M`).
    pub coin_gen: CoinGenConfig,
    /// Refill when the reservoir is about to drop below this level. Must
    /// cover the generator's own seed needs: ≥ 2 (one challenge + one
    /// leader coin), comfortably more to absorb extra BA attempts under
    /// faults.
    pub low_water: usize,
}

impl BootstrapConfig {
    /// A sensible default low-water mark: `4 + t` (challenge + expected
    /// leader coins + slack proportional to the number of corruptible
    /// leaders).
    pub fn with_default_low_water(coin_gen: CoinGenConfig) -> Self {
        BootstrapConfig { coin_gen, low_water: 4 + coin_gen.params.t }
    }
}

/// Cumulative statistics of a bootstrap reservoir.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BootstrapStats {
    /// Coins drawn (consumed by the application).
    pub draws: usize,
    /// D-PRBG refill runs triggered.
    pub refills: usize,
    /// Seed coins the refills consumed.
    pub seeds_consumed: usize,
    /// Coins the refills produced.
    pub coins_produced: usize,
    /// Leader attempts across all refills (Lemma 8: expected O(1) each).
    pub attempts: usize,
}

/// The bootstrap reservoir of Fig. 1.
///
/// One instance per party; all honest parties drive theirs in lock-step
/// (the refill decision depends only on the shared reservoir level, so
/// honest parties always agree on when to refill).
///
/// # Examples
///
/// See `examples/coin_beacon.rs` for a full application loop.
#[derive(Debug, Clone)]
pub struct Bootstrap<F: Field> {
    cfg: BootstrapConfig,
    wallet: CoinWallet<F>,
    stats: BootstrapStats,
}

impl<F: Field> Bootstrap<F> {
    /// Start the reservoir from an initial seed wallet (trusted dealer or
    /// preprocessing — see [`crate::dealer`]).
    pub fn new(cfg: BootstrapConfig, initial: CoinWallet<F>) -> Self {
        Bootstrap { cfg, wallet: initial, stats: BootstrapStats::default() }
    }

    /// Coins currently sealed in the reservoir.
    pub fn level(&self) -> usize {
        self.wallet.len()
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> BootstrapStats {
        self.stats
    }

    /// The generator configuration.
    pub fn config(&self) -> &BootstrapConfig {
        &self.cfg
    }

    /// Refill if a draw now would leave fewer than `low_water` coins.
    ///
    /// # Errors
    ///
    /// Propagates generator errors; on error the reservoir is unchanged
    /// except for the seeds the failed run consumed.
    pub fn maybe_refill<M: CoinGenWire<F>>(
        &mut self,
        ctx: &mut PartyCtx<M>,
    ) -> Result<bool, CoinGenError> {
        if self.wallet.len() > self.cfg.low_water {
            return Ok(false);
        }
        let run = dprbg_expand(ctx, &self.cfg.coin_gen, &mut self.wallet)?;
        self.stats.refills += 1;
        self.stats.seeds_consumed += run.seeds_consumed;
        self.stats.coins_produced += run.coins_produced;
        self.stats.attempts += run.attempts;
        Ok(true)
    }

    /// Draw the next sealed coin *without* exposing it (for protocols
    /// that consume sealed coins, e.g. further VSS runs). Refills first
    /// when needed.
    ///
    /// # Errors
    ///
    /// Propagates refill errors; [`crate::CoinError::WalletEmpty`] (as
    /// `CoinGenError::Coin`) only if refilling is impossible.
    pub fn draw_sealed<M: CoinGenWire<F>>(
        &mut self,
        ctx: &mut PartyCtx<M>,
    ) -> Result<SealedShare<F>, CoinGenError> {
        self.maybe_refill(ctx)?;
        let share = self.wallet.pop()?;
        self.stats.draws += 1;
        Ok(share)
    }

    /// Draw and expose the next coin: the application-facing "give me a
    /// fresh shared random value" call (one round, plus a refill when the
    /// reservoir is low).
    ///
    /// # Errors
    ///
    /// See [`Bootstrap::draw_sealed`] and [`coin_expose`].
    pub fn draw<M: CoinGenWire<F>>(&mut self, ctx: &mut PartyCtx<M>) -> Result<F, CoinGenError> {
        let share = self.draw_sealed(ctx)?;
        let t = self.cfg.coin_gen.params.t;
        coin_expose(ctx, share, t, ExposeVia::PointToPoint).map_err(CoinGenError::Coin)
    }

    /// Draw one *binary* shared coin: the low bit of a k-ary draw (the
    /// paper: "as all our coins will be generated in the field GF(2^k) we
    /// can assume that each coin generates in fact k random coins in
    /// {0,1}").
    ///
    /// # Errors
    ///
    /// See [`Bootstrap::draw`].
    pub fn draw_bit<M: CoinGenWire<F>>(&mut self, ctx: &mut PartyCtx<M>) -> Result<bool, CoinGenError> {
        Ok(self.draw(ctx)?.to_u64() & 1 == 1)
    }

    /// Proactively re-randomize every sealed share in the reservoir
    /// (epoch boundary in the §1.2 mobile-adversary setting). Refills
    /// first if the reservoir is low, so the refresh's own seed
    /// consumption cannot drain it.
    ///
    /// # Errors
    ///
    /// Propagates refill and refresh failures.
    pub fn refresh<M: CoinGenWire<F>>(
        &mut self,
        ctx: &mut PartyCtx<M>,
    ) -> Result<crate::refresh::RefreshReport, CoinGenError> {
        self.maybe_refill(ctx)?;
        crate::refresh::refresh_wallet(ctx, &self.cfg.coin_gen, &mut self.wallet)
    }

    /// Draw one k-ary coin and return all `k` of its binary coins, least
    /// significant first — applications that consume bits in bulk get
    /// `k` shared bits per expose round.
    ///
    /// # Errors
    ///
    /// See [`Bootstrap::draw`].
    pub fn draw_bits<M: CoinGenWire<F>>(
        &mut self,
        ctx: &mut PartyCtx<M>,
    ) -> Result<Vec<bool>, CoinGenError> {
        let v = self.draw(ctx)?.to_u64();
        Ok((0..F::bits()).map(|i| (v >> i) & 1 == 1).collect())
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use crate::coin_gen::CoinGenMsg;
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_sim::{run_network, Behavior};

    type F = Gf2k<32>;
    type M = CoinGenMsg<F>;

    fn setup(n: usize, t: usize, m: usize, initial: usize, seed: u64) -> Vec<Bootstrap<F>> {
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
            params,
            batch_size: m,
        });
        TrustedDealer::deal_wallets::<F>(params, initial, seed)
            .into_iter()
            .map(|w| Bootstrap::new(cfg, w))
            .collect()
    }

    #[test]
    fn draws_beyond_initial_seed_sustain_themselves() {
        // Initial seed of 6; draw 40 coins — far more than dealt. The
        // reservoir must refill on demand and all parties must see the
        // same 40 values.
        let n = 7;
        let t = 1;
        let draws = 40;
        let mut boots = setup(n, t, 16, 6, 1);
        let behaviors: Vec<Behavior<M, Result<(Vec<F>, BootstrapStats), CoinGenError>>> = (0..n)
            .map(|_| {
                let mut b = boots.remove(0);
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    let vals: Result<Vec<F>, _> =
                        (0..draws).map(|_| b.draw(ctx)).collect();
                    vals.map(|v| (v, b.stats()))
                }) as Behavior<M, _>
            })
            .collect();
        let outs = run_network(n, 2, behaviors).unwrap_all();
        let (vals0, stats0) = outs[0].as_ref().unwrap();
        assert_eq!(vals0.len(), draws);
        assert!(stats0.refills >= 2, "must have refilled: {stats0:?}");
        assert!(stats0.coins_produced > stats0.seeds_consumed);
        for out in &outs {
            let (vals, _) = out.as_ref().unwrap();
            assert_eq!(vals, vals0, "coin values must be unanimous");
        }
    }

    #[test]
    fn refill_only_when_low() {
        let n = 7;
        let t = 1;
        let mut boots = setup(n, t, 8, 20, 3);
        let behaviors: Vec<Behavior<M, Result<BootstrapStats, CoinGenError>>> = (0..n)
            .map(|_| {
                let mut b = boots.remove(0);
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    // 3 draws from a 20-coin reservoir: no refill needed.
                    for _ in 0..3 {
                        b.draw(ctx)?;
                    }
                    Ok::<_, CoinGenError>(b.stats())
                }) as Behavior<M, _>
            })
            .collect();
        for out in run_network(n, 4, behaviors).unwrap_all() {
            let stats = out.unwrap();
            assert_eq!(stats.refills, 0);
            assert_eq!(stats.draws, 3);
        }
    }

    #[test]
    fn draw_bit_is_unanimous() {
        let n = 7;
        let t = 1;
        let mut boots = setup(n, t, 8, 6, 5);
        let behaviors: Vec<Behavior<M, Result<Vec<bool>, CoinGenError>>> = (0..n)
            .map(|_| {
                let mut b = boots.remove(0);
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    let bits: Result<Vec<bool>, _> =
                        (0..8).map(|_| b.draw_bit(ctx)).collect();
                    bits
                }) as Behavior<M, _>
            })
            .collect();
        let outs = run_network(n, 6, behaviors).unwrap_all();
        let b0 = outs[0].as_ref().unwrap().clone();
        assert!(outs.iter().all(|o| o.as_ref().unwrap() == &b0));
        // Not all bits equal (probability 2^-7 per pattern; seeded test).
        assert!(b0.iter().any(|&x| x) || b0.iter().any(|&x| !x));
    }

    #[test]
    fn draw_bits_yields_k_unanimous_bits() {
        let n = 7;
        let t = 1;
        let mut boots = setup(n, t, 8, 6, 8);
        let behaviors: Vec<Behavior<M, Result<Vec<bool>, CoinGenError>>> = (0..n)
            .map(|_| {
                let mut b = boots.remove(0);
                Box::new(move |ctx: &mut PartyCtx<M>| b.draw_bits(ctx)) as Behavior<M, _>
            })
            .collect();
        let outs = run_network(n, 9, behaviors).unwrap_all();
        let bits = outs[0].as_ref().unwrap().clone();
        assert_eq!(bits.len(), 32, "one bit per field bit");
        assert!(outs.iter().all(|o| o.as_ref().unwrap() == &bits));
        // 32 coin flips: both values present except w.p. 2^-31.
        assert!(bits.iter().any(|&b| b) && bits.iter().any(|&b| !b));
    }

    #[test]
    fn empty_initial_seed_fails_cleanly() {
        let n = 7;
        let t = 1;
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = BootstrapConfig::with_default_low_water(CoinGenConfig {
            params,
            batch_size: 8,
        });
        let behaviors: Vec<Behavior<M, _>> = (0..n)
            .map(|_| {
                let mut b = Bootstrap::<F>::new(cfg, CoinWallet::new());
                Box::new(move |ctx: &mut PartyCtx<M>| b.draw(ctx).err()) as Behavior<M, _>
            })
            .collect();
        for out in run_network(n, 7, behaviors).unwrap_all() {
            assert_eq!(out, Some(CoinGenError::SeedExhausted));
        }
    }
}
