//! Committee-sampled coin generation: scaling the generator to
//! committees of hundreds.
//!
//! The paper's protocols cost `O(n²)` links per round because every party
//! deals, verifies and exposes. For large networks the standard scaling
//! move (Feige-style sortition) is to *sample* a committee of size
//! `c ≪ n`, run the expensive inner protocol among the committee only,
//! and publish the result outward — trading a little soundness (the
//! sample could, with small probability, contain more than the tolerable
//! number of corrupt parties) for a `(c/n)²` communication factor.
//!
//! The sampling seed is **self-referential** in exactly the sense of the
//! paper's bootstrap (Fig. 1): a coin exposed from the previous beacon
//! output seeds the election of the committee that generates the next
//! batch. An adversary that cannot predict the beacon cannot aim its
//! corruptions at the next committee.
//!
//! Three pieces:
//!
//! * [`elect_committee`] — deterministic seeded sampling (partial
//!   Fisher–Yates), identical at every party given the same beacon value;
//! * [`committee_soundness_error`] — the hypergeometric tail
//!   `P[X > t_c]` quantifying the extra failure probability the sampling
//!   introduces, surfaced by the experiment harness next to its Wilson
//!   confidence intervals;
//! * [`CommitteeCoin`] — the round machine: members run the full
//!   Coin-Gen pipeline inside a [`Subnet`] at `(c, t_c)`, expose the
//!   batch committee-internally, and publish the values to all `n`
//!   parties; everyone accepts the vector reported by ≥ `t_c + 1`
//!   distinct members (any such quorum contains an honest member).

use std::mem;

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_rng::rngs::StdRng;
use dprbg_rng::{RngExt, SeedableRng};
use dprbg_sim::{
    looping, Embeds, LoopControl, MachineExt, PartyId, RoundMachine, RoundView, Step, Subnet,
};

use crate::coin::{CoinWallet, ExposeMachine, ExposeVia};
use crate::coin_gen::{CoinBatch, CoinGenConfig, CoinGenMachine, CoinGenMsg};
use crate::errors::CoinGenError;
use crate::params::Params;

/// The committee-internal tolerance for a committee of size `c` under
/// the point-to-point model's `c ≥ 6·t_c + 1` requirement.
pub fn committee_threshold(c: usize) -> usize {
    c.saturating_sub(1) / 6
}

/// Elect a committee of `c` of the `n` parties from a beacon-derived
/// `seed`: a partial Fisher–Yates shuffle, so every subset is equally
/// likely and every party computes the same (sorted) committee from the
/// same seed.
///
/// # Panics
///
/// If `c` is zero or exceeds `n`.
pub fn elect_committee(seed: u64, n: usize, c: usize) -> Vec<PartyId> {
    assert!(c >= 1 && c <= n, "committee size {c} out of range for n = {n}");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pool: Vec<PartyId> = (1..=n).collect();
    for i in 0..c {
        let j = rng.random_range(i as u64..n as u64) as usize;
        pool.swap(i, j);
    }
    let mut committee = pool;
    committee.truncate(c);
    committee.sort_unstable();
    committee
}

/// The sampling soundness error: the probability that a uniformly
/// sampled committee of size `c`, drawn from `n` parties of which `f`
/// are corrupt, contains **more than** `t_c` corrupt members — i.e. the
/// hypergeometric tail `P[X > t_c]` for `X ~ Hyp(n, f, c)`.
///
/// This is the extra failure probability committee sampling adds on top
/// of the inner protocol's own error; the experiment harness reports it
/// alongside the empirical Wilson intervals so the two error sources can
/// be compared on one axis.
pub fn committee_soundness_error(n: usize, f: usize, c: usize, t_c: usize) -> f64 {
    assert!(f <= n && c <= n, "f = {f}, c = {c} must not exceed n = {n}");
    // ln k! table up to n: exact enough for n in the hundreds.
    let mut ln_fact = vec![0.0f64; n + 1];
    for k in 1..=n {
        ln_fact[k] = ln_fact[k - 1] + (k as f64).ln();
    }
    let ln_choose = |a: usize, b: usize| -> f64 {
        debug_assert!(b <= a);
        ln_fact[a] - ln_fact[b] - ln_fact[a - b]
    };
    let denom = ln_choose(n, c);
    let lo = (t_c + 1).max(c.saturating_sub(n - f));
    let hi = f.min(c);
    let mut tail = 0.0f64;
    for k in lo..=hi {
        tail += (ln_choose(f, k) + ln_choose(n - f, c - k) - denom).exp();
    }
    tail.min(1.0)
}

/// A member's publication of the committee's exposed coin values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoinReport<F: Field>(pub Vec<F>);

impl<F: Field> WireSize for CoinReport<F> {
    fn wire_bytes(&self) -> usize {
        self.0.iter().map(WireSize::wire_bytes).sum::<usize>() + 2
    }
}

/// The canonical wire type of a committee run: committee-internal
/// Coin-Gen traffic plus the outward publications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitteeMsg<F: Field> {
    /// Committee-internal traffic (rank-addressed via [`Subnet`]).
    Inner(CoinGenMsg<F>),
    /// A member's outward publication.
    Report(CoinReport<F>),
}

impl<F: Field> WireSize for CommitteeMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            CommitteeMsg::Inner(m) => m.wire_bytes(),
            CommitteeMsg::Report(m) => m.wire_bytes(),
        }
    }
}

impl<F: Field> Embeds<CoinGenMsg<F>> for CommitteeMsg<F> {
    fn wrap(inner: CoinGenMsg<F>) -> Self {
        CommitteeMsg::Inner(inner)
    }
    fn peek(&self) -> Option<&CoinGenMsg<F>> {
        match self {
            CommitteeMsg::Inner(m) => Some(m),
            _ => None,
        }
    }
}

impl<F: Field> Embeds<CoinReport<F>> for CommitteeMsg<F> {
    fn wrap(inner: CoinReport<F>) -> Self {
        CommitteeMsg::Report(inner)
    }
    fn peek(&self) -> Option<&CoinReport<F>> {
        match self {
            CommitteeMsg::Report(m) => Some(m),
            _ => None,
        }
    }
}

/// Why a committee run produced no accepted vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitteeError {
    /// This member's own pipeline failed (it still kept collecting, so a
    /// quorum from the other members may have been accepted regardless).
    Inner(CoinGenError),
    /// No vector reached `t_c + 1` distinct member reports by the
    /// deadline round.
    NoQuorum {
        /// The round at which collection gave up.
        deadline: u64,
    },
}

/// Committee-internal pipeline: Coin-Gen at `(c, t_c)`, then expose every
/// batch coin so the values can be published outward.
fn member_pipeline<F: Field>(
    cfg: CoinGenConfig,
    wallet: CoinWallet<F>,
) -> impl RoundMachine<CoinGenMsg<F>, Output = Result<Vec<F>, CoinGenError>> {
    let t = cfg.params.t;
    CoinGenMachine::new(cfg, wallet).then(
        move |(_, res): (CoinWallet<F>, Result<CoinBatch<F>, CoinGenError>)| {
            let (mut shares, err) = match res {
                Ok(batch) => (batch.shares, None),
                Err(e) => (Vec::new(), Some(e)),
            };
            shares.reverse(); // pop from the back = original order
            looping((shares, Vec::new(), err), move |(mut shares, vals, err)| {
                if let Some(e) = err {
                    return LoopControl::Break(Err(e));
                }
                match shares.pop() {
                    None => LoopControl::Break(Ok(vals)),
                    Some(s) => LoopControl::Continue(Box::new(
                        ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(
                            move |r| match r {
                                Ok(v) => {
                                    let mut vals = vals;
                                    vals.push(v);
                                    (shares, vals, None)
                                }
                                Err(e) => (Vec::new(), vals, Some(CoinGenError::Coin(e))),
                            },
                        ),
                    )),
                }
            })
        },
    )
}

type MemberSubnet<F> =
    Subnet<Box<dyn RoundMachine<CoinGenMsg<F>, Output = Result<Vec<F>, CoinGenError>> + Send>, CoinGenMsg<F>>;

enum CcStage<F: Field> {
    /// A committee member driving its rank-addressed inner pipeline.
    Member(MemberSubnet<F>),
    /// Everyone: collect member reports until a quorum or the deadline.
    Collect,
    Finished,
}

/// The committee coin generation machine (member and outsider sides).
///
/// Members run the full Coin-Gen pipeline inside a [`Subnet`] of the
/// `c` committee members (so the inner traffic costs `O(c²)` links, not
/// `O(n²)`), expose the resulting batch committee-internally, and
/// publish the value vector to all `n` parties. Every party — member or
/// not — accepts the first vector reported by at least `t_c + 1`
/// distinct committee members: with at most `t_c` corrupt members in the
/// sample, any such quorum contains an honest reporter, so acceptance is
/// sound exactly when the sample is good (see
/// [`committee_soundness_error`] for the probability it is not).
///
/// All parties must construct the machine from the same committee (same
/// beacon seed) in the same round. Outsiders idle (empty outboxes) while
/// the committee works; the `deadline` bounds how long they wait.
pub struct CommitteeCoin<F: Field> {
    committee: Vec<PartyId>,
    t_c: usize,
    deadline: u64,
    /// Per-rank received report (dedup by first arrival).
    reports: Vec<Option<Vec<F>>>,
    /// This member's own pipeline failure, if any (reported if no quorum
    /// forms either).
    own_failure: Option<CoinGenError>,
    stage: CcStage<F>,
}

impl<F: Field> CommitteeCoin<F> {
    /// Build this party's side of a committee run.
    ///
    /// `committee` must be the (sorted) output of [`elect_committee`];
    /// `cfg` holds the committee-internal parameters (`n = c`,
    /// `t = t_c`); `wallet_if_member` must be `Some` exactly when
    /// `my_id` is in the committee (wallets are dealt per committee
    /// *rank* under `cfg.params`).
    ///
    /// # Panics
    ///
    /// If the membership/wallet combination is inconsistent or `cfg`
    /// does not match the committee size.
    pub fn new(
        committee: Vec<PartyId>,
        my_id: PartyId,
        cfg: CoinGenConfig,
        wallet_if_member: Option<CoinWallet<F>>,
        deadline: u64,
    ) -> Self {
        let Params { n: c, t: t_c } = cfg.params;
        assert_eq!(c, committee.len(), "cfg.params.n must equal the committee size");
        let is_member = committee.contains(&my_id);
        assert_eq!(
            is_member,
            wallet_if_member.is_some(),
            "wallet must be supplied iff this party is a committee member"
        );
        let stage = match wallet_if_member {
            Some(wallet) => CcStage::Member(Subnet::new(
                committee.clone(),
                my_id,
                Box::new(member_pipeline(cfg, wallet))
                    as Box<
                        dyn RoundMachine<CoinGenMsg<F>, Output = Result<Vec<F>, CoinGenError>>
                            + Send,
                    >,
            )),
            None => CcStage::Collect,
        };
        CommitteeCoin {
            reports: vec![None; committee.len()],
            committee,
            t_c,
            deadline,
            own_failure: None,
            stage,
        }
    }

    /// Record this round's reports; `Some` once a quorum exists.
    fn absorb<M>(&mut self, view: &RoundView<'_, M>) -> Option<Vec<F>>
    where
        M: Embeds<CoinReport<F>>,
    {
        for r in view.inbox.iter() {
            if let Some(CoinReport(vals)) = <M as Embeds<CoinReport<F>>>::peek(&r.msg) {
                if let Ok(rank) = self.committee.binary_search(&r.from) {
                    if self.reports[rank].is_none() {
                        self.reports[rank] = Some(vals.clone());
                    }
                }
            }
        }
        let filled: Vec<&Vec<F>> = self.reports.iter().flatten().collect();
        for candidate in &filled {
            let support = filled.iter().filter(|v| v == &candidate).count();
            if support > self.t_c {
                return Some((**candidate).clone());
            }
        }
        None
    }
}

impl<M, F> RoundMachine<M> for CommitteeCoin<F>
where
    M: Clone + WireSize + Embeds<CoinGenMsg<F>> + Embeds<CoinReport<F>>,
    F: Field,
{
    type Output = Result<Vec<F>, CommitteeError>;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        match mem::replace(&mut self.stage, CcStage::Finished) {
            CcStage::Member(mut subnet) => match subnet.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = CcStage::Member(subnet);
                    Step::Continue(out)
                }
                Step::Done(res) => {
                    // Publish on success; on failure keep collecting (the
                    // other members' quorum can still land).
                    let mut out = view.outbox();
                    match res {
                        Ok(vals) => {
                            out.send_to_all(<M as Embeds<CoinReport<F>>>::wrap(CoinReport(
                                vals,
                            )));
                        }
                        Err(e) => self.own_failure = Some(e),
                    }
                    self.stage = CcStage::Collect;
                    Step::Continue(out)
                }
            },
            CcStage::Collect => {
                if let Some(vals) = self.absorb(&view) {
                    return Step::Done(Ok(vals));
                }
                if view.round >= self.deadline {
                    let err = match self.own_failure.take() {
                        Some(e) => CommitteeError::Inner(e),
                        None => CommitteeError::NoQuorum { deadline: self.deadline },
                    };
                    return Step::Done(Err(err));
                }
                self.stage = CcStage::Collect;
                Step::Continue(view.outbox())
            }
            // lint: allow(error-discipline) — driver contract: no executor calls round() after Done
            CcStage::Finished => panic!("CommitteeCoin driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            CcStage::Member(_) => "committee/inner",
            CcStage::Collect => "committee/collect",
            CcStage::Finished => "committee/finished",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dealer::TrustedDealer;
    use dprbg_field::Gf2k;
    use dprbg_sim::{BoxedMachine, StepRunner};

    type F = Gf2k<32>;
    type M = CommitteeMsg<F>;

    /// A full fleet for one committee run: members with rank-dealt
    /// wallets, outsiders idle-collecting.
    fn fleet(
        n: usize,
        committee: &[PartyId],
        cfg: CoinGenConfig,
        seed: u64,
        deadline: u64,
    ) -> Vec<BoxedMachine<M, Result<Vec<F>, CommitteeError>>> {
        let mut wallets = TrustedDealer::deal_wallets::<F>(cfg.params, 4, seed);
        (1..=n)
            .map(|id| {
                let wallet = committee
                    .iter()
                    .position(|&m| m == id)
                    .map(|rank| mem::take(&mut wallets[rank]));
                Box::new(CommitteeCoin::new(
                    committee.to_vec(),
                    id,
                    cfg,
                    wallet,
                    deadline,
                )) as BoxedMachine<M, _>
            })
            .collect()
    }

    #[test]
    fn election_is_deterministic_sorted_and_in_range() {
        let n = 129;
        let c = 31;
        let a = elect_committee(0xBEEF, n, c);
        let b = elect_committee(0xBEEF, n, c);
        assert_eq!(a, b, "same seed, same committee");
        assert_eq!(a.len(), c);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted, duplicate-free");
        assert!(a.iter().all(|&p| (1..=n).contains(&p)));
        let other = elect_committee(0xBEEF + 1, n, c);
        assert_ne!(a, other, "different seed, different committee (w.h.p.)");
    }

    #[test]
    fn soundness_error_matches_hand_computation() {
        // n = 5, f = 2, c = 2, t_c = 0: P[X ≥ 1] = 1 − C(3,2)/C(5,2)
        //                                        = 1 − 3/10 = 0.7.
        let eps = committee_soundness_error(5, 2, 2, 0);
        assert!((eps - 0.7).abs() < 1e-12, "got {eps}");
        // Monotone: more tolerance, less error.
        let loose = committee_soundness_error(129, 21, 31, 10);
        let tight = committee_soundness_error(129, 21, 31, 3);
        assert!(loose < tight);
        // Impossible tail is exactly zero.
        assert_eq!(committee_soundness_error(10, 1, 5, 1), 0.0);
    }

    #[test]
    fn committee_run_is_unanimous_across_all_parties() {
        let n = 25;
        let c = 7;
        let committee = elect_committee(42, n, c);
        let cfg = CoinGenConfig {
            params: Params::p2p_model(c, committee_threshold(c)).unwrap(),
            batch_size: 5,
        };
        let res = StepRunner::new(n, 7).run(fleet(n, &committee, cfg, 11, 200));
        let outs = res.unwrap_all();
        let accepted = outs[0].as_ref().expect("quorum must form").clone();
        assert_eq!(accepted.len(), 5, "batch size worth of values");
        for out in &outs {
            assert_eq!(out.as_ref().unwrap(), &accepted, "outsiders agree with members");
        }
    }

    #[test]
    fn quorum_deadline_failure_is_clean() {
        // An impossible deadline: collection gives up before any member
        // can publish.
        let n = 25;
        let c = 7;
        let committee = elect_committee(43, n, c);
        let cfg = CoinGenConfig {
            params: Params::p2p_model(c, committee_threshold(c)).unwrap(),
            batch_size: 5,
        };
        let res = StepRunner::new(n, 8).run(fleet(n, &committee, cfg, 12, 1));
        for (idx, out) in res.unwrap_all().into_iter().enumerate() {
            let id = idx + 1;
            if !committee.contains(&id) {
                assert_eq!(out, Err(CommitteeError::NoQuorum { deadline: 1 }));
            }
        }
    }
}
