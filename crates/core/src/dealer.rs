//! The initial distributed seed (§1.2).
//!
//! "The initial set of coins can be obtained from a trusted third party,
//! as in the case of Rabin \[17\], or through other pre-processing methods
//! (for example, the interpolation of a number m of polynomials … ). We
//! remark that in our approach the services of a trusted dealer would be
//! used only once, and for a small number of coins."
//!
//! [`TrustedDealer`] implements the one-shot trusted setup;
//! [`preprocessing_seed`] implements the dealerless alternative (every
//! party contributes a random polynomial during a fault-free setup window
//! and the contributions are summed — the cost "can be amortized over the
//! entire execution of the system").

use dprbg_field::Field;
use dprbg_poly::{share_polynomial, Poly};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::SeedableRng;

use crate::coin::{CoinWallet, SealedShare};
use crate::params::Params;

/// The one-shot trusted dealer of §1.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrustedDealer;

impl TrustedDealer {
    /// Deal `count` sealed k-ary coins to `n` parties: one wallet per
    /// party, in party order. Deterministic in `seed` (tests and
    /// simulations re-derive identical setups).
    pub fn deal_wallets<F: Field>(params: Params, count: usize, seed: u64) -> Vec<CoinWallet<F>> {
        Self::deal_wallets_with_values(params, count, seed).0
    }

    /// Like [`TrustedDealer::deal_wallets`], also returning the coins'
    /// true values (for assertions in tests and experiments; a real
    /// dealer would discard them).
    pub fn deal_wallets_with_values<F: Field>(
        params: Params,
        count: usize,
        seed: u64,
    ) -> (Vec<CoinWallet<F>>, Vec<F>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut wallets: Vec<CoinWallet<F>> = (0..params.n).map(|_| CoinWallet::new()).collect();
        let mut values = Vec::with_capacity(count);
        for _ in 0..count {
            let value = F::random(&mut rng);
            let poly = share_polynomial(value, params.t, &mut rng);
            for (i, wallet) in wallets.iter_mut().enumerate() {
                wallet.push(SealedShare::of(poly.eval(F::element(i as u64 + 1))));
            }
            values.push(value);
        }
        (wallets, values)
    }
}

/// The dealerless pre-processing alternative: each party contributes a
/// random degree-≤t polynomial per coin during a trusted setup window,
/// and coin polynomials are the sums of all contributions (so any single
/// honest contributor makes the coin uniform).
///
/// This simulates the "interpolation of a number m of polynomials"
/// pre-processing of §1.2. `contribution_seeds[i]` is party `P_{i+1}`'s
/// local randomness.
///
/// # Panics
///
/// Panics unless exactly `n` contribution seeds are supplied.
pub fn preprocessing_seed<F: Field>(
    params: Params,
    count: usize,
    contribution_seeds: &[u64],
) -> Vec<CoinWallet<F>> {
    assert_eq!(
        contribution_seeds.len(),
        params.n,
        "one contribution seed per party"
    );
    let mut rngs: Vec<StdRng> = contribution_seeds
        .iter()
        .map(|&s| StdRng::seed_from_u64(s))
        .collect();
    let mut wallets: Vec<CoinWallet<F>> = (0..params.n).map(|_| CoinWallet::new()).collect();
    for _ in 0..count {
        let total: Poly<F> = rngs
            .iter_mut()
            .map(|rng| Poly::random(params.t, rng))
            .fold(Poly::zero(), |acc, p| acc.add(&p));
        for (i, wallet) in wallets.iter_mut().enumerate() {
            wallet.push(SealedShare::of(total.eval(F::element(i as u64 + 1))));
        }
    }
    wallets
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin::decode_coin;
    use dprbg_field::Gf2k;

    type F = Gf2k<32>;

    #[test]
    fn dealt_coins_decode_to_true_values() {
        let params = Params::p2p_model(7, 1).unwrap();
        let (mut wallets, values) =
            TrustedDealer::deal_wallets_with_values::<F>(params, 3, 42);
        for value in values {
            let pts: Vec<(F, F)> = wallets
                .iter_mut()
                .enumerate()
                .map(|(i, w)| (F::element(i as u64 + 1), w.pop().unwrap().sigma.unwrap()))
                .collect();
            assert_eq!(decode_coin(&pts, params.t).unwrap(), value);
        }
    }

    #[test]
    fn dealing_is_deterministic_in_seed() {
        let params = Params::p2p_model(7, 1).unwrap();
        let a = TrustedDealer::deal_wallets::<F>(params, 2, 5);
        let b = TrustedDealer::deal_wallets::<F>(params, 2, 5);
        let c = TrustedDealer::deal_wallets::<F>(params, 2, 6);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn coins_tolerate_t_corrupted_shares() {
        let params = Params::p2p_model(13, 2).unwrap();
        let (mut wallets, values) =
            TrustedDealer::deal_wallets_with_values::<F>(params, 1, 9);
        let mut pts: Vec<(F, F)> = wallets
            .iter_mut()
            .enumerate()
            .map(|(i, w)| (F::element(i as u64 + 1), w.pop().unwrap().sigma.unwrap()))
            .collect();
        pts[0].1 = F::from_u64(1);
        pts[1].1 = F::from_u64(2);
        assert_eq!(decode_coin(&pts, params.t).unwrap(), values[0]);
    }

    #[test]
    fn preprocessing_matches_dealer_shape() {
        let params = Params::p2p_model(7, 1).unwrap();
        let seeds: Vec<u64> = (0..7).collect();
        let mut wallets = preprocessing_seed::<F>(params, 2, &seeds);
        assert_eq!(wallets.len(), 7);
        for _ in 0..2 {
            let pts: Vec<(F, F)> = wallets
                .iter_mut()
                .enumerate()
                .map(|(i, w)| (F::element(i as u64 + 1), w.pop().unwrap().sigma.unwrap()))
                .collect();
            decode_coin(&pts, params.t).expect("preprocessed coin decodes");
        }
    }

    #[test]
    #[should_panic(expected = "one contribution seed per party")]
    fn preprocessing_validates_seed_count() {
        let params = Params::p2p_model(7, 1).unwrap();
        let _ = preprocessing_seed::<F>(params, 1, &[1, 2, 3]);
    }
}
