//! Protocol parameters: player count, fault threshold, model.

use crate::errors::CoinGenError;

/// System parameters `(n, t)` with the paper's resilience requirements.
///
/// §3's protocols (VSS, Batch-VSS) assume a broadcast channel and
/// `n ≥ 3t + 1`; §4's protocols (Bit-Gen, Coin-Gen, Coin-Expose) remove
/// the broadcast channel and assume `n ≥ 6t + 1`.
///
/// # Examples
///
/// ```
/// use dprbg_core::Params;
/// let p = Params::p2p_model(7, 1).unwrap();
/// assert_eq!((p.n, p.t), (7, 1));
/// assert!(Params::p2p_model(6, 1).is_err());
/// assert_eq!(Params::max_t_p2p(13), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Params {
    /// Total number of players (the paper's `n ≥ 4`).
    pub n: usize,
    /// Maximum number of faulty players tolerated.
    pub t: usize,
}

impl Params {
    /// Parameters for the §3 (broadcast-channel) model: `n ≥ 3t + 1`.
    ///
    /// # Errors
    ///
    /// [`CoinGenError::BadParams`] if the resilience bound or the paper's
    /// `n ≥ 4` baseline fails.
    pub fn broadcast_model(n: usize, t: usize) -> Result<Self, CoinGenError> {
        if n >= 4 && n > 3 * t {
            Ok(Params { n, t })
        } else {
            Err(CoinGenError::BadParams {
                n,
                t,
                need: "n >= max(4, 3t + 1) for the broadcast model",
            })
        }
    }

    /// Parameters for the §4 (point-to-point) model: `n ≥ 6t + 1`.
    ///
    /// # Errors
    ///
    /// [`CoinGenError::BadParams`] if the resilience bound fails.
    pub fn p2p_model(n: usize, t: usize) -> Result<Self, CoinGenError> {
        if n >= 4 && n > 6 * t {
            Ok(Params { n, t })
        } else {
            Err(CoinGenError::BadParams {
                n,
                t,
                need: "n >= max(4, 6t + 1) for the point-to-point model",
            })
        }
    }

    /// Largest `t` the broadcast model tolerates for a given `n`.
    pub fn max_t_broadcast(n: usize) -> usize {
        n.saturating_sub(1) / 3
    }

    /// Largest `t` the point-to-point model tolerates for a given `n`.
    pub fn max_t_p2p(n: usize) -> usize {
        n.saturating_sub(1) / 6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn broadcast_bounds() {
        assert!(Params::broadcast_model(4, 1).is_ok());
        assert!(Params::broadcast_model(3, 0).is_err()); // n >= 4 baseline
        assert!(Params::broadcast_model(6, 2).is_err());
        assert!(Params::broadcast_model(7, 2).is_ok());
    }

    #[test]
    fn p2p_bounds() {
        assert!(Params::p2p_model(7, 1).is_ok());
        assert!(Params::p2p_model(6, 1).is_err());
        assert!(Params::p2p_model(13, 2).is_ok());
        assert!(Params::p2p_model(12, 2).is_err());
        assert!(Params::p2p_model(4, 0).is_ok());
    }

    #[test]
    fn max_t_helpers() {
        assert_eq!(Params::max_t_broadcast(10), 3);
        assert_eq!(Params::max_t_p2p(19), 3);
        assert_eq!(Params::max_t_p2p(0), 0);
    }
}
