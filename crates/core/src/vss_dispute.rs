//! VSS with public dispute resolution — §3.1's remark, made concrete.
//!
//! "It seems that it would be impossible to grant that all the n players'
//! shares will satisfy the polynomial, as some of them might be faulty.
//! Yet it is easy to see that two rounds of broadcast render this
//! possible." (§3.1.)
//!
//! Fig. 2's strict check cannot distinguish a cheating dealer from a
//! cheating *verifier* (either makes the interpolation fail), and the
//! robust check merely tolerates bad verifiers. This module implements
//! the two-broadcast-round resolution the paper alludes to, after which
//! **all n positions** of the sharing are publicly consistent:
//!
//! 1. (Fig. 2 steps 2–3.) The challenge `r` is exposed and everyone
//!    broadcasts `β_i = α_i + r·γ_i`.
//! 2. Everyone Berlekamp–Welch-decodes the majority polynomial `F*`
//!    (degree ≤ t, ≥ n − t agreement; no such polynomial ⇒ the dealer is
//!    disqualified outright). The *outliers* — positions whose broadcast
//!    does not lie on `F*` — are publicly identifiable.
//! 3. Second broadcast round: the **dealer** publishes the dealt pair
//!    `(α_i, γ_i)` for every outlier position. Everyone checks
//!    `α_i + r·γ_i = F*(i)`; any missing or unfitting pair disqualifies
//!    the dealer. An outlier player adopts the published pair as its
//!    share (its original one was either never sent or provably
//!    worthless).
//!
//! Result: an honest dealer is **always** accepted, even with `t`
//! Byzantine verifiers (it simply republishes the shares they lied
//! about), and on acceptance every position of the sharing is consistent
//! — the guarantee the paper's strict model wants. The disputed
//! positions' shares become public, which is inherent to any complaint
//! mechanism (only provably-misbehaving positions are opened).

use std::mem;

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::{bw_decode, Poly};
use dprbg_sim::{Embeds, MachineExt, PartyId, RoundMachine, RoundView, Step};

use crate::coin::{ExposeMachine, ExposeMsg, ExposeVia, SealedShare};
use crate::errors::{CoinError, ProtocolError};
use crate::vss::{DealtShares, VssVerdict};

/// Wire messages of the dispute-resolving VSS (a superset of Fig. 2's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisputeVssMsg<F: Field> {
    /// Dealing: the secret and masking shares.
    Deal {
        /// `α_i = f(i)`.
        alpha: F,
        /// `γ_i = g(i)`.
        gamma: F,
    },
    /// Coin-Expose traffic.
    Expose(ExposeMsg<F>),
    /// The blinded verification share.
    Beta(F),
    /// The dealer's published pairs for the outlier positions.
    Open(Vec<(PartyId, F, F)>),
}

impl<F: Field> WireSize for DisputeVssMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            DisputeVssMsg::Deal { alpha, gamma } => alpha.wire_bytes() + gamma.wire_bytes(),
            DisputeVssMsg::Expose(e) => e.wire_bytes(),
            DisputeVssMsg::Beta(b) => b.wire_bytes(),
            DisputeVssMsg::Open(pairs) => {
                pairs.iter().map(|(_, a, g)| 1 + a.wire_bytes() + g.wire_bytes()).sum()
            }
        }
    }
}

impl<F: Field> Embeds<ExposeMsg<F>> for DisputeVssMsg<F> {
    fn wrap(inner: ExposeMsg<F>) -> Self {
        DisputeVssMsg::Expose(inner)
    }
    fn peek(&self) -> Option<&ExposeMsg<F>> {
        match self {
            DisputeVssMsg::Expose(e) => Some(e),
            _ => None,
        }
    }
}

/// The outcome of the dispute-resolving verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisputeOutcome<F: Field> {
    /// Accept iff all n positions ended consistent.
    pub verdict: VssVerdict,
    /// My (possibly replaced) shares after resolution.
    pub shares: DealtShares<F>,
    /// The outlier positions whose shares were publicly opened.
    pub opened: Vec<PartyId>,
}

/// Dispute-resolving verification — Fig. 2 steps 2–4 plus the second
/// broadcast round of §3.1's remark — as a sans-IO round machine.
/// 3 rounds; consumes one challenge coin. The dealing must already have
/// happened ([`crate::vss::VssDealMachine`] semantics; pass the dealer's
/// polynomials when this party dealt so it can answer disputes).
///
/// Every path through the protocol takes the same number of rounds (a
/// disqualified dealer still burns the dispute round) so fleets of these
/// machines stay in lock-step regardless of verdict. The output
/// propagates [`CoinError`] from the challenge expose.
pub struct VssDisputeMachine<M, F: Field> {
    dealer: PartyId,
    dealer_polys: Option<(Poly<F>, Poly<F>)>,
    t: usize,
    shares: DealtShares<F>,
    stage: DvStage<M, F>,
}

enum DvStage<M, F: Field> {
    /// Fig. 2 step 2 in flight (two calls: share send, then decode +
    /// beta broadcast).
    Expose(ExposeMachine<M, F>),
    /// Inbox holds the broadcast betas: find `F*`, open disputes.
    Betas { r: F },
    /// Inbox holds the dealer's openings: judge.
    Dispute { r: F, f_star: Option<Poly<F>>, outliers: Vec<PartyId> },
    Finished,
}

impl<M, F: Field> VssDisputeMachine<M, F> {
    /// A machine verifying `shares` from `dealer` with `coin` as the
    /// challenge; `dealer_polys` must be `Some` only at the dealer.
    pub fn new(
        dealer: PartyId,
        dealer_polys: Option<(Poly<F>, Poly<F>)>,
        t: usize,
        shares: DealtShares<F>,
        coin: SealedShare<F>,
    ) -> Self {
        VssDisputeMachine {
            dealer,
            dealer_polys,
            t,
            shares,
            stage: DvStage::Expose(ExposeMachine::new(coin, t, ExposeVia::Broadcast)),
        }
    }

    fn judge(
        &self,
        view: &RoundView<'_, M>,
        r: F,
        f_star: Option<Poly<F>>,
        outliers: Vec<PartyId>,
    ) -> DisputeOutcome<F>
    where
        M: Clone + WireSize + Embeds<DisputeVssMsg<F>>,
    {
        let Some(f_star) = f_star else {
            // No consistent majority existed: the dealer was disqualified
            // outright (the dispute round was burned for lock-step).
            return DisputeOutcome {
                verdict: VssVerdict::Reject,
                shares: self.shares,
                opened: Vec::new(),
            };
        };
        if outliers.is_empty() {
            return DisputeOutcome {
                verdict: VssVerdict::Accept,
                shares: self.shares,
                opened: outliers,
            };
        }

        let published = view
            .inbox
            .broadcasts()
            .filter(|rcv| rcv.from == self.dealer)
            .find_map(|rcv| match <M as Embeds<DisputeVssMsg<F>>>::peek(&rcv.msg) {
                Some(DisputeVssMsg::Open(pairs)) => Some(pairs.clone()),
                _ => None,
            });
        let Some(pairs) = published else {
            // Dealer refused to answer the dispute.
            return DisputeOutcome {
                verdict: VssVerdict::Reject,
                shares: self.shares,
                opened: outliers,
            };
        };

        // Every outlier must be answered with a pair fitting F*.
        let mut my_new_shares = self.shares;
        for &i in &outliers {
            let x = F::element(i as u64);
            let answer = pairs.iter().find(|(j, _, _)| *j == i);
            match answer {
                Some(&(_, alpha, gamma)) if alpha + r * gamma == f_star.eval(x) => {
                    if i == view.id {
                        // Adopt the publicly consistent pair.
                        my_new_shares = DealtShares { alpha, gamma };
                    }
                }
                _ => {
                    return DisputeOutcome {
                        verdict: VssVerdict::Reject,
                        shares: my_new_shares,
                        opened: outliers,
                    };
                }
            }
        }
        DisputeOutcome { verdict: VssVerdict::Accept, shares: my_new_shares, opened: outliers }
    }
}

impl<M, F> RoundMachine<M> for VssDisputeMachine<M, F>
where
    M: Clone + WireSize + Embeds<ExposeMsg<F>> + Embeds<DisputeVssMsg<F>>,
    F: Field,
{
    type Output = Result<DisputeOutcome<F>, CoinError>;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        let n = view.n;
        match mem::replace(&mut self.stage, DvStage::Finished) {
            DvStage::Expose(mut expose) => match expose.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = DvStage::Expose(expose);
                    Step::Continue(out)
                }
                Step::Done(Err(e)) => Step::Done(Err(e)),
                Step::Done(Ok(r)) => {
                    // Fig. 2 step 3: broadcast β_i.
                    let beta = self.shares.alpha + r * self.shares.gamma;
                    let mut out = view.outbox();
                    out.broadcast(<M as Embeds<DisputeVssMsg<F>>>::wrap(DisputeVssMsg::Beta(
                        beta,
                    )));
                    self.stage = DvStage::Betas { r };
                    Step::Continue(out)
                }
            },
            DvStage::Betas { r } => {
                let mut betas: Vec<Option<F>> = vec![None; n];
                for rcv in view.inbox.broadcasts() {
                    if let Some(DisputeVssMsg::Beta(b)) =
                        <M as Embeds<DisputeVssMsg<F>>>::peek(&rcv.msg)
                    {
                        if betas[rcv.from - 1].is_none() {
                            betas[rcv.from - 1] = Some(*b);
                        }
                    }
                }

                // The majority polynomial F* and the outlier set (public:
                // everyone computes the same ones from the same
                // broadcasts).
                let points: Vec<(F, F)> = betas
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| b.map(|y| (F::element(i as u64 + 1), y)))
                    .collect();
                let f_star = bw_decode(&points, self.t, self.t).ok().filter(|f| {
                    let agreements =
                        points.iter().filter(|&&(x, y)| f.eval(x) == y).count();
                    agreements >= n - self.t
                });
                let outliers: Vec<PartyId> = match &f_star {
                    Some(f) => (1..=n)
                        .filter(|&i| betas[i - 1] != Some(f.eval(F::element(i as u64))))
                        .collect(),
                    // No majority: nothing to open, but the round is still
                    // burned below so all parties stay in lock-step.
                    None => Vec::new(),
                };

                // Second broadcast round: the dealer opens the outlier
                // positions.
                let mut out = view.outbox();
                if view.id == self.dealer && !outliers.is_empty() {
                    if let Some((f, g)) = &self.dealer_polys {
                        let pairs: Vec<(PartyId, F, F)> = outliers
                            .iter()
                            .map(|&i| {
                                let x = F::element(i as u64);
                                (i, f.eval(x), g.eval(x))
                            })
                            .collect();
                        out.broadcast(<M as Embeds<DisputeVssMsg<F>>>::wrap(
                            DisputeVssMsg::Open(pairs),
                        ));
                    }
                }
                self.stage = DvStage::Dispute { r, f_star, outliers };
                Step::Continue(out)
            }
            DvStage::Dispute { r, f_star, outliers } => {
                Step::Done(Ok(self.judge(&view, r, f_star, outliers)))
            }
            // lint: allow(error-discipline) — driver contract: no executor calls round() after Done
            DvStage::Finished => panic!("VssDisputeMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            DvStage::Expose(expose) => match expose.phase_name() {
                "expose/send" => "vss-dispute/challenge",
                _ => "vss-dispute/betas",
            },
            DvStage::Betas { .. } => "vss-dispute/open",
            DvStage::Dispute { .. } => "vss-dispute/judge",
            DvStage::Finished => "vss-dispute/finished",
        }
    }
}

/// Abort-with-blame: the dispute-resolving verification with a `Reject`
/// converted into [`ProtocolError::Aborted`] naming the dealer.
///
/// The conviction is sound because the dispute protocol **always** accepts
/// an honest dealer (even against `t` Byzantine verifiers it simply
/// republishes the shares they lied about — see the module docs), so any
/// `Reject` proves the dealer deviated. This is the graceful-degradation
/// entry point the campaign harness classifies as "gracefully aborted":
/// the caller learns *who* to exclude before retrying. The output carries
/// [`ProtocolError::Coin`] if the challenge expose fails.
pub fn vss_dispute_or_blame<M, F>(
    dealer: PartyId,
    dealer_polys: Option<(Poly<F>, Poly<F>)>,
    t: usize,
    shares: DealtShares<F>,
    coin: SealedShare<F>,
) -> impl RoundMachine<M, Output = Result<DisputeOutcome<F>, ProtocolError>>
where
    M: Clone + Send + WireSize + Embeds<ExposeMsg<F>> + Embeds<DisputeVssMsg<F>> + 'static,
    F: Field,
{
    VssDisputeMachine::new(dealer, dealer_polys, t, shares, coin).map(move |res| {
        let outcome = res?;
        match outcome.verdict {
            VssVerdict::Accept => Ok(outcome),
            VssVerdict::Reject => Err(ProtocolError::Aborted {
                blame: vec![dealer],
                reason: "VSS dispute resolution convicted the dealer",
            }),
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_poly::{share_points, share_polynomial};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, StepRunner};

    type F = Gf2k<32>;
    type M = DisputeVssMsg<F>;

    fn coin_shares(n: usize, t: usize, seed: u64) -> Vec<SealedShare<F>> {
        let params = Params::broadcast_model(n, t).unwrap();
        TrustedDealer::deal_wallets::<F>(params, 1, seed)
            .into_iter()
            .map(|mut w| w.pop().unwrap())
            .collect()
    }

    /// Dealing helper: honest f, g evaluated per party.
    fn deal(n: usize, t: usize, seed: u64) -> (Poly<F>, Poly<F>, Vec<DealtShares<F>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = share_polynomial(F::from_u64(0xD15B), t, &mut rng);
        let g = Poly::random(t, &mut rng);
        let shares = share_points(&f, n)
            .into_iter()
            .zip(share_points(&g, n))
            .map(|(a, b)| DealtShares { alpha: a.y, gamma: b.y })
            .collect();
        (f, g, shares)
    }

    /// A fleet of dispute machines: party 1 deals (holds the polynomials
    /// when `answering` is true), everyone verifies `shares[id - 1]`.
    fn fleet(
        f: &Poly<F>,
        g: &Poly<F>,
        answering: bool,
        t: usize,
        shares: &[DealtShares<F>],
        coins: &[SealedShare<F>],
    ) -> Vec<BoxedMachine<M, Result<DisputeOutcome<F>, CoinError>>> {
        (1..=shares.len())
            .map(|id| {
                let polys = (answering && id == 1).then(|| (f.clone(), g.clone()));
                Box::new(VssDisputeMachine::new(1, polys, t, shares[id - 1], coins[id - 1]))
                    as BoxedMachine<M, _>
            })
            .collect()
    }

    #[test]
    fn no_disputes_all_honest() {
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 1);
        let (f, g, shares) = deal(n, t, 2);
        let res = StepRunner::new(n, 3).run(fleet(&f, &g, true, t, &shares, &coins));
        for out in res.unwrap_all() {
            let o = out.unwrap();
            assert_eq!(o.verdict, VssVerdict::Accept);
            assert!(o.opened.is_empty());
        }
    }

    #[test]
    fn honest_dealer_survives_byzantine_verifier() {
        // Party 5 broadcasts a garbage β (this frames the dealer under
        // strict Fig. 2); with disputes, the dealer republishes position
        // 5 and is accepted by everyone.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 10);
        let (f, g, shares) = deal(n, t, 11);
        let plan = FaultPlan::explicit(n, vec![5]);
        let machines = plan.machines::<M, Option<DisputeOutcome<F>>>(
            |id| {
                let polys = (id == 1).then(|| (f.clone(), g.clone()));
                Box::new(
                    VssDisputeMachine::new(1, polys, t, shares[id - 1], coins[id - 1])
                        .map(|r: Result<DisputeOutcome<F>, CoinError>| r.ok()),
                )
            },
            |id| {
                let sigma = coins[id - 1].sigma;
                Box::new(from_fn(move |view: RoundView<'_, M>| match view.round {
                    0 => {
                        let mut out = view.outbox();
                        if let Some(s) = sigma {
                            out.broadcast(DisputeVssMsg::Expose(ExposeMsg(s)));
                        }
                        Step::Continue(out)
                    }
                    1 => {
                        let mut out = view.outbox();
                        out.broadcast(DisputeVssMsg::Beta(F::from_u64(0xBAD)));
                        Step::Continue(out)
                    }
                    2 => Step::Continue(view.outbox()),
                    _ => Step::Done(None),
                }))
            },
        );
        let res = StepRunner::new(n, 12).run(machines);
        for id in plan.honest() {
            let o = res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap();
            assert_eq!(o.verdict, VssVerdict::Accept, "party {id}");
            assert_eq!(o.opened, vec![5], "position 5 publicly opened");
        }
    }

    #[test]
    fn cheated_player_gets_corrected_share() {
        // The dealer privately sent party 3 a wrong share but commits to
        // a consistent polynomial: party 3 shows up as the outlier, the
        // dealer must open position 3, and party 3 ends holding the
        // consistent share.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 20);
        let (f, g, mut shares) = deal(n, t, 21);
        shares[2].alpha += F::one(); // the lie to party 3
        let res = StepRunner::new(n, 22).run(fleet(&f, &g, true, t, &shares, &coins));
        let outs = res.unwrap_all();
        for (i, out) in outs.iter().enumerate() {
            let o = out.as_ref().unwrap();
            assert_eq!(o.verdict, VssVerdict::Accept, "party {}", i + 1);
            assert_eq!(o.opened, vec![3]);
        }
        // Party 3's corrected share lies on f now.
        let corrected = outs[2].as_ref().unwrap().shares;
        assert_eq!(corrected.alpha, f.eval(F::element(3)));
    }

    #[test]
    fn unresponsive_dealer_rejected() {
        // Party 5 garbles its β and the dealer refuses to open: reject.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 30);
        let (f, g, mut shares) = deal(n, t, 31);
        shares[4].alpha += F::one();
        // Nobody holds dealer polynomials: the dealer cannot (will not)
        // answer the dispute.
        let res = StepRunner::new(n, 32).run(fleet(&f, &g, false, t, &shares, &coins));
        for out in res.unwrap_all() {
            assert_eq!(out.unwrap().verdict, VssVerdict::Reject);
        }
    }

    #[test]
    fn degree_cheating_dealer_still_rejected() {
        // A dealer committing to a degree-(t+2) polynomial cannot be
        // saved by disputes: no majority F* exists.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 40);
        let mut rng = StdRng::seed_from_u64(41);
        let f = Poly::<F>::random(t + 2, &mut rng);
        let g = Poly::<F>::random(t, &mut rng);
        let shares: Vec<DealtShares<F>> = (1..=n)
            .map(|id| {
                let x = F::element(id as u64);
                DealtShares { alpha: f.eval(x), gamma: g.eval(x) }
            })
            .collect();
        let res = StepRunner::new(n, 42).run(fleet(&f, &g, true, t, &shares, &coins));
        for out in res.unwrap_all() {
            assert_eq!(out.unwrap().verdict, VssVerdict::Reject);
        }
    }

    #[test]
    fn blame_wrapper_accepts_honest_and_convicts_cheater() {
        let n = 7;
        let t = 2;
        // Honest dealer: wrapper passes the outcome through.
        let coins = coin_shares(n, t, 50);
        let (f, g, shares) = deal(n, t, 51);
        let machines: Vec<BoxedMachine<M, Result<DisputeOutcome<F>, ProtocolError>>> = (1..=n)
            .map(|id| {
                let polys = (id == 1).then(|| (f.clone(), g.clone()));
                Box::new(vss_dispute_or_blame(1, polys, t, shares[id - 1], coins[id - 1]))
                    as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 52).run(machines).unwrap_all() {
            assert_eq!(out.unwrap().verdict, VssVerdict::Accept);
        }

        // Unresponsive dealer with a garbled position: every honest party
        // gets Aborted blaming the dealer.
        let coins = coin_shares(n, t, 53);
        let (_, _, mut shares) = deal(n, t, 54);
        shares[4].alpha += F::one();
        let machines: Vec<BoxedMachine<M, Result<DisputeOutcome<F>, ProtocolError>>> = (1..=n)
            .map(|id| {
                Box::new(vss_dispute_or_blame(1, None, t, shares[id - 1], coins[id - 1]))
                    as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 55).run(machines).unwrap_all() {
            match out {
                Err(ProtocolError::Aborted { blame, .. }) => assert_eq!(blame, vec![1]),
                other => panic!("expected Aborted blaming the dealer, got {other:?}"),
            }
        }
    }
}
