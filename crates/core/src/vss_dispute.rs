//! VSS with public dispute resolution — §3.1's remark, made concrete.
//!
//! "It seems that it would be impossible to grant that all the n players'
//! shares will satisfy the polynomial, as some of them might be faulty.
//! Yet it is easy to see that two rounds of broadcast render this
//! possible." (§3.1.)
//!
//! Fig. 2's strict check cannot distinguish a cheating dealer from a
//! cheating *verifier* (either makes the interpolation fail), and the
//! robust check merely tolerates bad verifiers. This module implements
//! the two-broadcast-round resolution the paper alludes to, after which
//! **all n positions** of the sharing are publicly consistent:
//!
//! 1. (Fig. 2 steps 2–3.) The challenge `r` is exposed and everyone
//!    broadcasts `β_i = α_i + r·γ_i`.
//! 2. Everyone Berlekamp–Welch-decodes the majority polynomial `F*`
//!    (degree ≤ t, ≥ n − t agreement; no such polynomial ⇒ the dealer is
//!    disqualified outright). The *outliers* — positions whose broadcast
//!    does not lie on `F*` — are publicly identifiable.
//! 3. Second broadcast round: the **dealer** publishes the dealt pair
//!    `(α_i, γ_i)` for every outlier position. Everyone checks
//!    `α_i + r·γ_i = F*(i)`; any missing or unfitting pair disqualifies
//!    the dealer. An outlier player adopts the published pair as its
//!    share (its original one was either never sent or provably
//!    worthless).
//!
//! Result: an honest dealer is **always** accepted, even with `t`
//! Byzantine verifiers (it simply republishes the shares they lied
//! about), and on acceptance every position of the sharing is consistent
//! — the guarantee the paper's strict model wants. The disputed
//! positions' shares become public, which is inherent to any complaint
//! mechanism (only provably-misbehaving positions are opened).

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::{bw_decode, Poly};
use dprbg_sim::{Embeds, PartyCtx, PartyId};

use crate::coin::{coin_expose, ExposeMsg, ExposeVia, SealedShare};
use crate::errors::{CoinError, ProtocolError};
use crate::vss::{DealtShares, VssVerdict};

/// Wire messages of the dispute-resolving VSS (a superset of Fig. 2's).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DisputeVssMsg<F: Field> {
    /// Dealing: the secret and masking shares.
    Deal {
        /// `α_i = f(i)`.
        alpha: F,
        /// `γ_i = g(i)`.
        gamma: F,
    },
    /// Coin-Expose traffic.
    Expose(ExposeMsg<F>),
    /// The blinded verification share.
    Beta(F),
    /// The dealer's published pairs for the outlier positions.
    Open(Vec<(PartyId, F, F)>),
}

impl<F: Field> WireSize for DisputeVssMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            DisputeVssMsg::Deal { alpha, gamma } => alpha.wire_bytes() + gamma.wire_bytes(),
            DisputeVssMsg::Expose(e) => e.wire_bytes(),
            DisputeVssMsg::Beta(b) => b.wire_bytes(),
            DisputeVssMsg::Open(pairs) => {
                pairs.iter().map(|(_, a, g)| 1 + a.wire_bytes() + g.wire_bytes()).sum()
            }
        }
    }
}

impl<F: Field> Embeds<ExposeMsg<F>> for DisputeVssMsg<F> {
    fn wrap(inner: ExposeMsg<F>) -> Self {
        DisputeVssMsg::Expose(inner)
    }
    fn peek(&self) -> Option<&ExposeMsg<F>> {
        match self {
            DisputeVssMsg::Expose(e) => Some(e),
            _ => None,
        }
    }
}

/// The outcome of the dispute-resolving verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisputeOutcome<F: Field> {
    /// Accept iff all n positions ended consistent.
    pub verdict: VssVerdict,
    /// My (possibly replaced) shares after resolution.
    pub shares: DealtShares<F>,
    /// The outlier positions whose shares were publicly opened.
    pub opened: Vec<PartyId>,
}

/// Dispute-resolving verification: Fig. 2 steps 2–4 plus the second
/// broadcast round of §3.1's remark. 3 rounds; consumes one challenge
/// coin. The dealing must already have happened ([`crate::vss::vss_deal`]
/// semantics; pass the dealer's polynomials when this party dealt so it
/// can answer disputes).
///
/// # Errors
///
/// Propagates [`CoinError`] from the challenge expose.
#[allow(clippy::type_complexity)]
pub fn vss_verify_with_disputes<M, F>(
    ctx: &mut PartyCtx<M>,
    dealer: PartyId,
    dealer_polys: Option<&(Poly<F>, Poly<F>)>,
    t: usize,
    shares: DealtShares<F>,
    coin: SealedShare<F>,
) -> Result<DisputeOutcome<F>, CoinError>
where
    M: Clone + Send + WireSize + Embeds<ExposeMsg<F>> + Embeds<DisputeVssMsg<F>> + 'static,
    F: Field,
{
    let n = ctx.n();
    let me = ctx.id();

    // Fig. 2 step 2: the public random challenge.
    let r = coin_expose(ctx, coin, t, ExposeVia::Broadcast)?;

    // Step 3: broadcast β_i.
    let beta = shares.alpha + r * shares.gamma;
    ctx.broadcast(<M as Embeds<DisputeVssMsg<F>>>::wrap(DisputeVssMsg::Beta(beta)));
    let inbox = ctx.next_round();
    let mut betas: Vec<Option<F>> = vec![None; n];
    for rcv in inbox.broadcasts() {
        if let Some(DisputeVssMsg::Beta(b)) = <M as Embeds<DisputeVssMsg<F>>>::peek(&rcv.msg) {
            if betas[rcv.from - 1].is_none() {
                betas[rcv.from - 1] = Some(*b);
            }
        }
    }

    // The majority polynomial F* and the outlier set (public: everyone
    // computes the same ones from the same broadcasts).
    let points: Vec<(F, F)> = betas
        .iter()
        .enumerate()
        .filter_map(|(i, b)| b.map(|y| (F::element(i as u64 + 1), y)))
        .collect();
    let f_star = bw_decode(&points, t, t).ok().filter(|f| {
        let agreements = points.iter().filter(|&&(x, y)| f.eval(x) == y).count();
        agreements >= n - t
    });
    let Some(f_star) = f_star else {
        // No consistent majority: the dealer is disqualified; burn the
        // dispute round to stay in lock-step.
        let _ = ctx.next_round();
        return Ok(DisputeOutcome {
            verdict: VssVerdict::Reject,
            shares,
            opened: Vec::new(),
        });
    };
    let outliers: Vec<PartyId> = (1..=n)
        .filter(|&i| betas[i - 1] != Some(f_star.eval(F::element(i as u64))))
        .collect();

    // Second broadcast round: the dealer opens the outlier positions.
    if me == dealer && !outliers.is_empty() {
        if let Some((f, g)) = dealer_polys {
            let pairs: Vec<(PartyId, F, F)> = outliers
                .iter()
                .map(|&i| {
                    let x = F::element(i as u64);
                    (i, f.eval(x), g.eval(x))
                })
                .collect();
            ctx.broadcast(<M as Embeds<DisputeVssMsg<F>>>::wrap(DisputeVssMsg::Open(pairs)));
        }
    }
    let inbox = ctx.next_round();

    if outliers.is_empty() {
        return Ok(DisputeOutcome { verdict: VssVerdict::Accept, shares, opened: outliers });
    }

    let published = inbox
        .broadcasts()
        .filter(|rcv| rcv.from == dealer)
        .find_map(|rcv| match <M as Embeds<DisputeVssMsg<F>>>::peek(&rcv.msg) {
            Some(DisputeVssMsg::Open(pairs)) => Some(pairs.clone()),
            _ => None,
        });
    let Some(pairs) = published else {
        // Dealer refused to answer the dispute.
        return Ok(DisputeOutcome {
            verdict: VssVerdict::Reject,
            shares,
            opened: outliers,
        });
    };

    // Every outlier must be answered with a pair fitting F*.
    let mut my_new_shares = shares;
    for &i in &outliers {
        let x = F::element(i as u64);
        let answer = pairs.iter().find(|(j, _, _)| *j == i);
        match answer {
            Some(&(_, alpha, gamma)) if alpha + r * gamma == f_star.eval(x) => {
                if i == me {
                    // Adopt the publicly consistent pair.
                    my_new_shares = DealtShares { alpha, gamma };
                }
            }
            _ => {
                return Ok(DisputeOutcome {
                    verdict: VssVerdict::Reject,
                    shares: my_new_shares,
                    opened: outliers,
                });
            }
        }
    }
    Ok(DisputeOutcome {
        verdict: VssVerdict::Accept,
        shares: my_new_shares,
        opened: outliers,
    })
}

/// Abort-with-blame: run the dispute-resolving verification and convert a
/// `Reject` into [`ProtocolError::Aborted`] naming the dealer.
///
/// The conviction is sound because the dispute protocol **always** accepts
/// an honest dealer (even against `t` Byzantine verifiers it simply
/// republishes the shares they lied about — see the module docs), so any
/// `Reject` proves the dealer deviated. This is the graceful-degradation
/// entry point the campaign harness classifies as "gracefully aborted":
/// the caller learns *who* to exclude before retrying.
///
/// # Errors
///
/// [`ProtocolError::Coin`] if the challenge expose fails;
/// [`ProtocolError::Aborted`] (blaming the dealer) if verification rejects.
pub fn vss_verify_or_blame<M, F>(
    ctx: &mut PartyCtx<M>,
    dealer: PartyId,
    dealer_polys: Option<&(Poly<F>, Poly<F>)>,
    t: usize,
    shares: DealtShares<F>,
    coin: SealedShare<F>,
) -> Result<DisputeOutcome<F>, ProtocolError>
where
    M: Clone + Send + WireSize + Embeds<ExposeMsg<F>> + Embeds<DisputeVssMsg<F>> + 'static,
    F: Field,
{
    let outcome = vss_verify_with_disputes(ctx, dealer, dealer_polys, t, shares, coin)?;
    match outcome.verdict {
        VssVerdict::Accept => Ok(outcome),
        VssVerdict::Reject => Err(ProtocolError::Aborted {
            blame: vec![dealer],
            reason: "VSS dispute resolution convicted the dealer",
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_poly::{share_points, share_polynomial};
    use dprbg_sim::{run_network, Behavior, FaultPlan};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;

    type F = Gf2k<32>;
    type M = DisputeVssMsg<F>;

    fn coin_shares(n: usize, t: usize, seed: u64) -> Vec<SealedShare<F>> {
        let params = Params::broadcast_model(n, t).unwrap();
        TrustedDealer::deal_wallets::<F>(params, 1, seed)
            .into_iter()
            .map(|mut w| w.pop().unwrap())
            .collect()
    }

    /// Dealing helper: honest f, g evaluated per party.
    fn deal(n: usize, t: usize, seed: u64) -> (Poly<F>, Poly<F>, Vec<DealtShares<F>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let f = share_polynomial(F::from_u64(0xD15B), t, &mut rng);
        let g = Poly::random(t, &mut rng);
        let shares = share_points(&f, n)
            .into_iter()
            .zip(share_points(&g, n))
            .map(|(a, b)| DealtShares { alpha: a.y, gamma: b.y })
            .collect();
        (f, g, shares)
    }

    #[test]
    fn no_disputes_all_honest() {
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 1);
        let (f, g, shares) = deal(n, t, 2);
        let behaviors: Vec<Behavior<M, Result<DisputeOutcome<F>, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let my = shares[id - 1];
                let polys = (id == 1).then(|| (f.clone(), g.clone()));
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    vss_verify_with_disputes(ctx, 1, polys.as_ref(), t, my, coin)
                }) as Behavior<_, _>
            })
            .collect();
        for out in run_network(n, 3, behaviors).unwrap_all() {
            let o = out.unwrap();
            assert_eq!(o.verdict, VssVerdict::Accept);
            assert!(o.opened.is_empty());
        }
    }

    #[test]
    fn honest_dealer_survives_byzantine_verifier() {
        // Party 5 broadcasts a garbage β (this frames the dealer under
        // strict Fig. 2); with disputes, the dealer republishes position
        // 5 and is accepted by everyone.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 10);
        let (f, g, shares) = deal(n, t, 11);
        let plan = FaultPlan::explicit(n, vec![5]);
        let behaviors = plan.behaviors::<M, Option<DisputeOutcome<F>>>(
            |id| {
                let coin = coins[id - 1];
                let my = shares[id - 1];
                let polys = (id == 1).then(|| (f.clone(), g.clone()));
                Box::new(move |ctx| {
                    vss_verify_with_disputes(ctx, 1, polys.as_ref(), t, my, coin).ok()
                })
            },
            |id| {
                let coin = coins[id - 1];
                Box::new(move |ctx| {
                    let _ = coin_expose(ctx, coin, 2, ExposeVia::Broadcast);
                    ctx.broadcast(DisputeVssMsg::Beta(F::from_u64(0xBAD)));
                    let _ = ctx.next_round();
                    let _ = ctx.next_round();
                    None
                })
            },
        );
        let res = run_network(n, 12, behaviors);
        for id in plan.honest() {
            let o = res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap();
            assert_eq!(o.verdict, VssVerdict::Accept, "party {id}");
            assert_eq!(o.opened, vec![5], "position 5 publicly opened");
        }
    }

    #[test]
    fn cheated_player_gets_corrected_share() {
        // The dealer privately sent party 3 a wrong share but commits to
        // a consistent polynomial: party 3 shows up as the outlier, the
        // dealer must open position 3, and party 3 ends holding the
        // consistent share.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 20);
        let (f, g, mut shares) = deal(n, t, 21);
        shares[2].alpha += F::one(); // the lie to party 3
        let behaviors: Vec<Behavior<M, Result<DisputeOutcome<F>, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let my = shares[id - 1];
                let polys = (id == 1).then(|| (f.clone(), g.clone()));
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    vss_verify_with_disputes(ctx, 1, polys.as_ref(), t, my, coin)
                }) as Behavior<_, _>
            })
            .collect();
        let outs = run_network(n, 22, behaviors).unwrap_all();
        for (i, out) in outs.iter().enumerate() {
            let o = out.as_ref().unwrap();
            assert_eq!(o.verdict, VssVerdict::Accept, "party {}", i + 1);
            assert_eq!(o.opened, vec![3]);
        }
        // Party 3's corrected share lies on f now.
        let corrected = outs[2].as_ref().unwrap().shares;
        assert_eq!(corrected.alpha, f.eval(F::element(3)));
    }

    #[test]
    fn unresponsive_dealer_rejected() {
        // Party 5 garbles its β and the dealer refuses to open: reject.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 30);
        let (_, _, mut shares) = deal(n, t, 31);
        shares[4].alpha += F::one();
        let behaviors: Vec<Behavior<M, Result<DisputeOutcome<F>, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let my = shares[id - 1];
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    // Nobody passes dealer polynomials: the dealer cannot
                    // (will not) answer the dispute.
                    vss_verify_with_disputes(ctx, 1, None, t, my, coin)
                }) as Behavior<_, _>
            })
            .collect();
        for out in run_network(n, 32, behaviors).unwrap_all() {
            assert_eq!(out.unwrap().verdict, VssVerdict::Reject);
        }
    }

    #[test]
    fn degree_cheating_dealer_still_rejected() {
        // A dealer committing to a degree-(t+2) polynomial cannot be
        // saved by disputes: no majority F* exists.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 40);
        let mut rng = StdRng::seed_from_u64(41);
        let f = Poly::<F>::random(t + 2, &mut rng);
        let g = Poly::<F>::random(t, &mut rng);
        let behaviors: Vec<Behavior<M, Result<DisputeOutcome<F>, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let x = F::element(id as u64);
                let my = DealtShares { alpha: f.eval(x), gamma: g.eval(x) };
                let polys = (id == 1).then(|| (f.clone(), g.clone()));
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    vss_verify_with_disputes(ctx, 1, polys.as_ref(), t, my, coin)
                }) as Behavior<_, _>
            })
            .collect();
        for out in run_network(n, 42, behaviors).unwrap_all() {
            assert_eq!(out.unwrap().verdict, VssVerdict::Reject);
        }
    }

    #[test]
    fn blame_wrapper_accepts_honest_and_convicts_cheater() {
        let n = 7;
        let t = 2;
        // Honest dealer: wrapper passes the outcome through.
        let coins = coin_shares(n, t, 50);
        let (f, g, shares) = deal(n, t, 51);
        let behaviors: Vec<Behavior<M, Result<DisputeOutcome<F>, ProtocolError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let my = shares[id - 1];
                let polys = (id == 1).then(|| (f.clone(), g.clone()));
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    vss_verify_or_blame(ctx, 1, polys.as_ref(), t, my, coin)
                }) as Behavior<_, _>
            })
            .collect();
        for out in run_network(n, 52, behaviors).unwrap_all() {
            assert_eq!(out.unwrap().verdict, VssVerdict::Accept);
        }

        // Unresponsive dealer with a garbled position: every honest party
        // gets Aborted blaming the dealer.
        let coins = coin_shares(n, t, 53);
        let (_, _, mut shares) = deal(n, t, 54);
        shares[4].alpha += F::one();
        let behaviors: Vec<Behavior<M, Result<DisputeOutcome<F>, ProtocolError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let my = shares[id - 1];
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    vss_verify_or_blame(ctx, 1, None, t, my, coin)
                }) as Behavior<_, _>
            })
            .collect();
        for out in run_network(n, 55, behaviors).unwrap_all() {
            match out {
                Err(ProtocolError::Aborted { blame, .. }) => assert_eq!(blame, vec![1]),
                other => panic!("expected Aborted blaming the dealer, got {other:?}"),
            }
        }
    }
}
