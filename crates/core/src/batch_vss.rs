//! Protocol Batch-VSS (Fig. 3): verify M sharings at the cost of one.
//!
//! The paper's first major result (§3.2): "Our protocol for batch VSS
//! allows for the verification of multiple secrets at the same cost of one
//! polynomial interpolation."
//!
//! The dealer has shared `M` polynomials `f_1 … f_M`; player `P_i` holds
//! `α_{i1} … α_{iM}`. Verification:
//!
//! 1. `r ← Coin-Expose(k-ary-coin)`.
//! 2. `P_i` computes the Horner combination
//!    `β_i = (((r·α_{iM} + α_{i(M−1)})r + …)r + α_{i1})·r` — i.e.
//!    `β_i = Σ_j r^j·α_{ij}` — in `M` multiplications and additions.
//! 3. `P_i` broadcasts `β_i`.
//! 4. Interpolate `F(x)` through `β_1 … β_n`; accept iff `deg F ≤ t`.
//!
//! Soundness (Lemma 3): if some `f_j` has degree > t, the combination
//! `Σ r^j f_j(x)|_{t+1}` is a nonzero polynomial in `r` of degree ≤ M, so
//! the check passes with probability ≤ `M/p`.
//!
//! Cost (Lemma 4 / Corollary 1): ~`2Mk log k` additions and **2**
//! interpolations per player for all `M` secrets; 2 rounds; `2n` messages
//! (`2nk` bits) — amortized `O(1)` communication and `2k log k`
//! computation per secret.
//!
//! **Blinding deviation** (see DESIGN.md): the literal Fig. 3 combination
//! reveals `F(0) = Σ r^j·s_j`, a known linear relation on secrets that may
//! be used later as coins. With [`BatchOpts::blinding`] (default **on**)
//! the dealer also shares one masking polynomial `g` and the combination
//! becomes `β_i = γ_i + Σ_j r^j·α_{ij}`, exactly extending Fig. 2's
//! masking idea at `O(1/M)` amortized overhead. Set it to `false` for the
//! verbatim protocol.
//!
//! The `Batch-VSS(l)` variant of the paper — verification restricted to a
//! designated point subset — is [`judge_batch_subset`].

use std::mem;

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::{bw_decode, interpolate, share_polynomial, Poly};
use dprbg_sim::{Embeds, PartyId, RoundMachine, RoundView, Step};
use dprbg_rng::Rng;

use crate::coin::{ExposeMachine, ExposeMsg, ExposeVia, SealedShare};
use crate::errors::CoinError;
pub use crate::vss::{VssMode, VssVerdict};

/// Wire messages of Protocol Batch-VSS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchVssMsg<F: Field> {
    /// Dealing round: the `M` secret shares plus the masking share.
    Deal {
        /// `α_{i1} … α_{iM}`.
        alphas: Vec<F>,
        /// `γ_i = g(i)` (zero when blinding is off).
        gamma: F,
    },
    /// Coin-Expose traffic for the challenge coin.
    Expose(ExposeMsg<F>),
    /// The combined verification share `β_i`.
    Beta(F),
}

impl<F: Field> WireSize for BatchVssMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            BatchVssMsg::Deal { alphas, gamma } => {
                alphas.wire_bytes() + gamma.wire_bytes()
            }
            BatchVssMsg::Expose(e) => e.wire_bytes(),
            BatchVssMsg::Beta(b) => b.wire_bytes(),
        }
    }
}

impl<F: Field> Embeds<ExposeMsg<F>> for BatchVssMsg<F> {
    fn wrap(inner: ExposeMsg<F>) -> Self {
        BatchVssMsg::Expose(inner)
    }
    fn peek(&self) -> Option<&ExposeMsg<F>> {
        match self {
            BatchVssMsg::Expose(e) => Some(e),
            _ => None,
        }
    }
}

/// Options for the batch protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchOpts {
    /// Add the masking polynomial `g` (see module docs). Default `true`.
    pub blinding: bool,
    /// Acceptance rule (strict Fig. 3 vs Berlekamp–Welch-robust).
    pub mode: VssMode,
}

impl Default for BatchOpts {
    fn default() -> Self {
        BatchOpts { blinding: true, mode: VssMode::Strict }
    }
}

/// A party's holdings after the batch dealing round.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BatchShares<F: Field> {
    /// The `M` secret shares.
    pub alphas: Vec<F>,
    /// The masking share (zero when blinding is off or dealer silent).
    pub gamma: F,
}

/// The Horner combination of Fig. 3 step 2 (with optional blinding term):
/// `β = γ + Σ_{j=1..M} r^j α_j`, computed as
/// `((…(r·α_M + α_{M−1})·r + …)·r + α_1)·r + γ` — `M` multiplications,
/// `M` additions.
pub fn horner_combine<F: Field>(alphas: &[F], gamma: F, r: F) -> F {
    let mut acc = F::zero();
    for &a in alphas.iter().rev() {
        acc = (acc + a) * r;
    }
    acc + gamma
}

/// The batch dealing round as a sans-IO round machine: one `Continue`
/// (the dealer's share vectors), then `Done` with this party's holdings
/// `(my shares, dealer polynomials if dealer)`.
///
/// One round; the dealer's message to each player is `Mk` bits (Lemma 6's
/// "n messages each of size Mk").
pub struct BatchVssDealMachine<M, F: Field> {
    dealer: PartyId,
    secrets: Option<Vec<F>>,
    t: usize,
    opts: BatchOpts,
    dealt: Option<Vec<Poly<F>>>,
    sent: bool,
    _wire: std::marker::PhantomData<fn() -> M>,
}

impl<M, F: Field> BatchVssDealMachine<M, F> {
    /// A machine for `dealer`'s batch; `secrets` must be `Some` only at
    /// the dealer itself.
    pub fn new(dealer: PartyId, secrets: Option<Vec<F>>, t: usize, opts: BatchOpts) -> Self {
        BatchVssDealMachine {
            dealer,
            secrets,
            t,
            opts,
            dealt: None,
            sent: false,
            _wire: std::marker::PhantomData,
        }
    }
}

impl<M, F> RoundMachine<M> for BatchVssDealMachine<M, F>
where
    M: Clone + WireSize + Embeds<BatchVssMsg<F>>,
    F: Field,
{
    type Output = (BatchShares<F>, Option<Vec<Poly<F>>>);

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output> {
        if !self.sent {
            self.sent = true;
            let mut out = view.outbox();
            if view.id == self.dealer {
                if let Some(secrets) = self.secrets.take() {
                    let n = view.n;
                    let polys: Vec<Poly<F>> = secrets
                        .iter()
                        .map(|&s| share_polynomial(s, self.t, view.rng))
                        .collect();
                    let blind = if self.opts.blinding {
                        Poly::random(self.t, view.rng)
                    } else {
                        Poly::zero()
                    };
                    for i in 1..=n {
                        let x = F::element(i as u64);
                        let alphas: Vec<F> = polys.iter().map(|f| f.eval(x)).collect();
                        let gamma = blind.eval(x);
                        out.send(
                            i,
                            <M as Embeds<BatchVssMsg<F>>>::wrap(BatchVssMsg::Deal {
                                alphas,
                                gamma,
                            }),
                        );
                    }
                    let mut all = polys;
                    all.push(blind);
                    self.dealt = Some(all);
                }
            }
            return Step::Continue(out);
        }
        let shares = view
            .inbox
            .first_from(self.dealer)
            .and_then(|r| <M as Embeds<BatchVssMsg<F>>>::peek(&r.msg))
            .and_then(|m| match m {
                BatchVssMsg::Deal { alphas, gamma } => Some(BatchShares {
                    alphas: alphas.clone(),
                    gamma: *gamma,
                }),
                _ => None,
            })
            .unwrap_or_default();
        Step::Done((shares, self.dealt.take()))
    }

    fn phase_name(&self) -> &'static str {
        if self.sent {
            "batch-vss/record"
        } else {
            "batch-vss/deal"
        }
    }
}

/// Steps 1–4 of Fig. 3 as a sans-IO round machine: the challenge expose
/// (an embedded [`ExposeMachine`] over the broadcast channel), the
/// combination broadcast, then the interpolation verdict — all `M`
/// sharings verified with one interpolation in 2 rounds.
///
/// `expected_m` is the batch size every player expects; a dealer that
/// sent a different number of shares is rejected outright. Consumes one
/// sealed challenge coin. The output propagates [`CoinError`] from the
/// challenge expose.
pub struct BatchVssVerifyMachine<M, F: Field> {
    t: usize,
    shares: BatchShares<F>,
    expected_m: usize,
    opts: BatchOpts,
    stage: BvStage<M, F>,
}

enum BvStage<M, F: Field> {
    /// Step 1 in flight (two calls: share send, then decode + beta send).
    Expose(ExposeMachine<M, F>),
    /// Inbox holds the broadcast betas; judge.
    Betas,
    Finished,
}

impl<M, F: Field> BatchVssVerifyMachine<M, F> {
    /// A machine verifying `shares` against an expected batch size, with
    /// `coin` as the challenge.
    pub fn new(
        t: usize,
        shares: BatchShares<F>,
        expected_m: usize,
        coin: SealedShare<F>,
        opts: BatchOpts,
    ) -> Self {
        BatchVssVerifyMachine {
            t,
            shares,
            expected_m,
            opts,
            stage: BvStage::Expose(ExposeMachine::new(coin, t, ExposeVia::Broadcast)),
        }
    }
}

impl<M, F> RoundMachine<M> for BatchVssVerifyMachine<M, F>
where
    M: Clone + WireSize + Embeds<ExposeMsg<F>> + Embeds<BatchVssMsg<F>>,
    F: Field,
{
    type Output = Result<VssVerdict, CoinError>;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        match mem::replace(&mut self.stage, BvStage::Finished) {
            BvStage::Expose(mut expose) => match expose.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = BvStage::Expose(expose);
                    Step::Continue(out)
                }
                Step::Done(Err(e)) => Step::Done(Err(e)),
                Step::Done(Ok(r)) => {
                    // A malformed share vector means a misbehaving dealer;
                    // broadcast a *random* combination so the malformed
                    // instance cannot fit any low-degree polynomial
                    // (all-zero fallbacks would themselves interpolate to
                    // a valid sharing).
                    let beta = if self.shares.alphas.len() == self.expected_m {
                        horner_combine(&self.shares.alphas, self.shares.gamma, r)
                    } else {
                        F::random(view.rng)
                    };
                    let mut out = view.outbox();
                    out.broadcast(<M as Embeds<BatchVssMsg<F>>>::wrap(BatchVssMsg::Beta(
                        beta,
                    )));
                    self.stage = BvStage::Betas;
                    Step::Continue(out)
                }
            },
            BvStage::Betas => {
                let mut points: Vec<(F, F)> = Vec::new();
                for rcv in view.inbox.broadcasts() {
                    if let Some(BatchVssMsg::Beta(b)) =
                        <M as Embeds<BatchVssMsg<F>>>::peek(&rcv.msg)
                    {
                        let x = F::element(rcv.from as u64);
                        if points.iter().all(|(px, _)| *px != x) {
                            points.push((x, *b));
                        }
                    }
                }
                Step::Done(Ok(judge_batch(&points, view.n, self.t, self.opts.mode)))
            }
            // lint: allow(error-discipline) — driver contract: no executor calls round() after Done
            BvStage::Finished => panic!("BatchVssVerifyMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            BvStage::Expose(expose) => match expose.phase_name() {
                "expose/send" => "batch-vss/challenge",
                _ => "batch-vss/combine",
            },
            BvStage::Betas => "batch-vss/judge",
            BvStage::Finished => "batch-vss/finished",
        }
    }
}

/// Step 4's decision from the collected combination points.
pub fn judge_batch<F: Field>(
    points: &[(F, F)],
    n: usize,
    t: usize,
    mode: VssMode,
) -> VssVerdict {
    match mode {
        VssMode::Strict => {
            if points.len() < n {
                return VssVerdict::Reject;
            }
            match interpolate(points) {
                Ok(f) if f.degree().is_none_or(|d| d <= t) => VssVerdict::Accept,
                _ => VssVerdict::Reject,
            }
        }
        VssMode::Robust => match bw_decode(points, t, t) {
            Ok(_) => VssVerdict::Accept,
            Err(_) => VssVerdict::Reject,
        },
    }
}

/// The `Batch-VSS(l)` variant: accept iff some degree-≤t polynomial
/// passes through the combination values of the *designated subset* of
/// points (the paper: "accept if there is a polynomial F(x) of degree at
/// most t, which for some given l … satisfies F(i_j) = β_{i_j}").
///
/// Used when only a subset of players' shares must be validated (e.g. a
/// clique in Coin-Gen). The subset must contain at least `t + 1` points.
pub fn judge_batch_subset<F: Field>(
    points: &[(F, F)],
    subset: &[PartyId],
    t: usize,
) -> VssVerdict {
    let sub: Vec<(F, F)> = points
        .iter()
        .filter(|(x, _)| subset.iter().any(|&p| F::element(p as u64) == *x))
        .copied()
        .collect();
    if sub.len() <= t || sub.len() < subset.len() {
        return VssVerdict::Reject;
    }
    match interpolate(&sub[..t + 1]) {
        Ok(f) if f.degree().is_none_or(|d| d <= t)
            && sub[t + 1..].iter().all(|&(x, y)| f.eval(x) == y) =>
        {
            VssVerdict::Accept
        }
        _ => VssVerdict::Reject,
    }
}

/// A cheating dealer's batch for soundness tests: `bad_count` of the `M`
/// polynomials have degree `t + 1`, the rest are honest.
pub fn cheating_batch_deal<F: Field, R: Rng + ?Sized>(
    n: usize,
    t: usize,
    m: usize,
    bad_count: usize,
    rng: &mut R,
) -> Vec<BatchShares<F>> {
    assert!(bad_count <= m, "cannot corrupt more polynomials than exist");
    let polys: Vec<Poly<F>> = (0..m)
        .map(|j| {
            let deg = if j < bad_count { t + 1 } else { t };
            Poly::random(deg, rng)
        })
        .collect();
    let blind = Poly::random(t, rng);
    (1..=n as u64)
        .map(|i| {
            let x = F::element(i);
            BatchShares {
                alphas: polys.iter().map(|f| f.eval(x)).collect(),
                gamma: blind.eval(x),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_poly::{share_points as sp, share_polynomial as spoly};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;
    use dprbg_sim::{BoxedMachine, MachineExt, StepRunner};

    type F = Gf2k<32>;
    type M = BatchVssMsg<F>;

    fn coin_shares(n: usize, t: usize, seed: u64) -> Vec<SealedShare<F>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let poly = spoly(F::random(&mut rng), t, &mut rng);
        sp(&poly, n).into_iter().map(|s| SealedShare::of(s.y)).collect()
    }

    #[test]
    fn horner_matches_direct_sum() {
        let mut rng = StdRng::seed_from_u64(1);
        let alphas: Vec<F> = (0..8).map(|_| F::random(&mut rng)).collect();
        let gamma = F::random(&mut rng);
        let r = F::random(&mut rng);
        let direct: F = gamma
            + alphas
                .iter()
                .enumerate()
                .map(|(j, &a)| a * r.pow(j as u128 + 1))
                .sum::<F>();
        assert_eq!(horner_combine(&alphas, gamma, r), direct);
        // Empty batch: just the blinding term.
        assert_eq!(horner_combine(&[], gamma, r), gamma);
    }

    /// Deal then verify, composed with [`MachineExt::then`] exactly as
    /// straight-line protocol code would sequence the two phases.
    fn run_batch(
        n: usize,
        t: usize,
        m: usize,
        seed: u64,
        opts: BatchOpts,
    ) -> Vec<Result<VssVerdict, CoinError>> {
        let coins = coin_shares(n, t, seed + 1000);
        let fleet: Vec<BoxedMachine<M, Result<VssVerdict, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let secrets: Option<Vec<F>> =
                    (id == 1).then(|| (0..m as u64).map(F::from_u64).collect());
                Box::new(BatchVssDealMachine::new(1, secrets, t, opts).then(
                    move |(shares, _): (BatchShares<F>, _)| {
                        BatchVssVerifyMachine::new(t, shares, m, coin, opts)
                    },
                )) as BoxedMachine<M, _>
            })
            .collect();
        StepRunner::new(n, seed).run(fleet).unwrap_all()
    }

    #[test]
    fn honest_batch_accepted() {
        for blinding in [true, false] {
            let opts = BatchOpts { blinding, mode: VssMode::Strict };
            for out in run_batch(7, 2, 16, 3, opts) {
                assert_eq!(out.unwrap(), VssVerdict::Accept);
            }
        }
    }

    #[test]
    fn single_bad_polynomial_in_large_batch_rejected() {
        // One corrupt polynomial among M = 32 must sink the whole batch.
        let n = 7;
        let t = 2;
        let m = 32;
        let coins = coin_shares(n, t, 7);
        let mut rng = StdRng::seed_from_u64(8);
        let all_shares = cheating_batch_deal::<F, _>(n, t, m, 1, &mut rng);
        // Dealing happened out-of-band; every party verifies directly.
        let fleet: Vec<BoxedMachine<M, Result<VssVerdict, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let shares = all_shares[id - 1].clone();
                Box::new(BatchVssVerifyMachine::new(t, shares, m, coin, BatchOpts::default()))
                    as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 9).run(fleet).unwrap_all() {
            assert_eq!(out.unwrap(), VssVerdict::Reject);
        }
    }

    #[test]
    fn wrong_batch_size_rejected() {
        // Dealer sends 4 shares where 8 are expected.
        let n = 4;
        let t = 1;
        let coins = coin_shares(n, t, 11);
        let fleet: Vec<BoxedMachine<M, Result<VssVerdict, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let secrets: Option<Vec<F>> =
                    (id == 1).then(|| (0..4u64).map(F::from_u64).collect());
                Box::new(
                    BatchVssDealMachine::new(1, secrets, t, BatchOpts::default()).then(
                        move |(shares, _): (BatchShares<F>, _)| {
                            BatchVssVerifyMachine::new(t, shares, 8, coin, BatchOpts::default())
                        },
                    ),
                ) as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 12).run(fleet).unwrap_all() {
            assert_eq!(out.unwrap(), VssVerdict::Reject);
        }
    }

    #[test]
    fn batch_communication_is_constant_in_m() {
        // Lemma 4: the verification phase is 2 rounds and 2n messages of
        // size k regardless of M.
        let n = 7;
        let t = 2;
        for m in [1usize, 64] {
            let coins = coin_shares(n, t, 13);
            let mut rng = StdRng::seed_from_u64(14);
            let all = cheating_batch_deal::<F, _>(n, t, m, 0, &mut rng); // 0 bad = honest
            let fleet: Vec<BoxedMachine<M, Result<VssVerdict, CoinError>>> = (1..=n)
                .map(|id| {
                    let coin = coins[id - 1];
                    let shares = all[id - 1].clone();
                    Box::new(BatchVssVerifyMachine::new(t, shares, m, coin, BatchOpts::default()))
                        as BoxedMachine<M, _>
                })
                .collect();
            let res = StepRunner::new(n, 15).run(fleet);
            assert_eq!(res.report.comm.rounds, 2);
            assert_eq!(res.report.comm.messages as usize, 2 * n, "M = {m}");
            assert_eq!(res.report.comm.bytes as usize, 2 * n * 4, "M = {m}");
            for out in res.unwrap_all() {
                assert_eq!(out.unwrap(), VssVerdict::Accept);
            }
        }
    }

    #[test]
    fn soundness_error_scales_with_m_over_p() {
        // Lemma 3: acceptance probability ≤ M/p. Over GF(2^8) with
        // M = 8, the bound is 8/256 = 1/32 ≈ 3%. Measure it.
        type F8 = Gf2k<8>;
        let n = 4;
        let t = 1;
        let m = 8;
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 3000;
        let mut accepts = 0;
        for _ in 0..trials {
            let shares = cheating_batch_deal::<F8, _>(n, t, m, m, &mut rng);
            let r = F8::random(&mut rng);
            let pts: Vec<(F8, F8)> = shares
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    (
                        F8::element(i as u64 + 1),
                        horner_combine(&s.alphas, s.gamma, r),
                    )
                })
                .collect();
            if judge_batch(&pts, n, t, VssMode::Strict) == VssVerdict::Accept {
                accepts += 1;
            }
        }
        let rate = accepts as f64 / trials as f64;
        assert!(rate < 0.10, "batch soundness error rate {rate} too high");
    }

    #[test]
    fn subset_variant_checks_designated_points() {
        let mut rng = StdRng::seed_from_u64(21);
        let t = 2;
        let f = Poly::<F>::random(t, &mut rng);
        let mut pts: Vec<(F, F)> = (1..=7u64)
            .map(|i| (F::element(i), f.eval(F::element(i))))
            .collect();
        // Corrupt a point *outside* the subset: subset check still accepts.
        pts[6].1 += F::one();
        let subset = vec![1usize, 2, 3, 4, 5];
        assert_eq!(judge_batch_subset(&pts, &subset, t), VssVerdict::Accept);
        // Corrupt a point *inside* the subset: reject.
        pts[2].1 += F::one();
        assert_eq!(judge_batch_subset(&pts, &subset, t), VssVerdict::Reject);
        // Subset with a missing point: reject.
        assert_eq!(
            judge_batch_subset(&pts[..4], &[1, 2, 3, 4, 5], t),
            VssVerdict::Reject
        );
        // Subset too small to determine a polynomial: reject.
        assert_eq!(judge_batch_subset(&pts, &[1, 2], t), VssVerdict::Reject);
    }
}
