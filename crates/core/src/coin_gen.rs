//! Protocol Coin-Gen (Fig. 5): generation of sealed coins, the paper's
//! main protocol.
//!
//! §4 model: `n ≥ 6t + 1`, point-to-point channels only. Every player
//! runs Bit-Gen as a dealer in parallel (all instances sharing one
//! challenge coin), then the players agree on *which* dealers' batches to
//! combine:
//!
//! 1–3. Bit-Gen × n with the shared challenge `r`; per dealer `j`, local
//!      output `(F_j, S_j)`.
//! 4.   Directed graph `G'`: edge `j → k` iff `F_j ≠ ⊥` and `P_k`'s
//!      combination in `S_j` satisfies `F_j(k) = β_k`.
//! 5.   `G`: keep mutual edges.
//! 6.   Find a clique `C` of size ≥ `n − 2t` (Gavril's approximation —
//!      one exists because the ≥ `n − t` honest players are mutually
//!      consistent).
//! 7.   Grade-Cast `{(j, F_j) : j ∈ C}`.
//! 8.   Record each player's grade-cast clique and confidence.
//! 9.   `l ← Coin-Expose(k-ary-coin) mod n` — a random leader.
//! 10.  Run (deterministic) BA with input 1 iff (i) `conf_l = 2`,
//!      (ii) `|C_l| ≥ n − 2t`, and (iii) ≥ `3t + 1` players' combinations
//!      (in this player's own view) satisfy every `F_k`, `k ∈ C_l`.
//! 11.  If BA outputs 1, adopt `C_l`; otherwise repeat from step 9 with a
//!      fresh leader coin (expected O(1) iterations — Lemma 8).
//!
//! The adopted batch seals `M` coins: coin `h` is
//! `Σ_{j ∈ C_l} f_{j,h}(0)`, held as the share-sums
//! `σ_i = Σ_{j ∈ C_l} α_{i,j,h}` (Fig. 6's preparation), with ≥ `2t + 1`
//! honest parties able to vouch for their sums — enough for Coin-Expose's
//! Berlekamp–Welch reconstruction (Theorem 1). Since ≥ `|C_l| − t ≥ 3t + 1`
//! of the summed dealers are honest, the coins are uniform and unknown to
//! any coalition of ≤ t players until exposed.

use std::mem;

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::Poly;
use dprbg_protocols::{
    approx_clique, BaMsg, DiGraph, GcMsg, GradeOutput, GradecastMachine, PhaseKingMachine,
};
use dprbg_sim::{Embeds, PartyId, RoundMachine, RoundView, Step};

use crate::bit_gen::{BitGenMachine, BitGenMode, BitGenMsg, BitGenRun};
use crate::coin::{CoinWallet, ExposeMachine, ExposeMsg, ExposeVia, SealedShare};
use crate::errors::CoinGenError;
use crate::params::Params;

/// The value grade-cast in step 7: the sender's clique with the check
/// polynomial of every member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliqueAnnounce<F: Field> {
    /// Pairs `(j, F_j)` for each dealer `j` in the sender's clique,
    /// ascending by dealer id.
    pub pairs: Vec<(PartyId, Poly<F>)>,
}

impl<F: Field> CliqueAnnounce<F> {
    /// The dealer ids in the announced clique.
    pub fn dealers(&self) -> Vec<PartyId> {
        self.pairs.iter().map(|(j, _)| *j).collect()
    }

    /// Basic well-formedness: ids valid, strictly ascending (hence
    /// unique), polynomials of degree ≤ t.
    pub fn well_formed(&self, n: usize, t: usize) -> bool {
        self.pairs.windows(2).all(|w| w[0].0 < w[1].0)
            && self.pairs.iter().all(|(j, f)| {
                (1..=n).contains(j) && f.degree().is_none_or(|d| d <= t)
            })
    }
}

impl<F: Field> WireSize for CliqueAnnounce<F> {
    fn wire_bytes(&self) -> usize {
        self.pairs
            .iter()
            .map(|(_, f)| 1 + f.wire_bytes())
            .sum()
    }
}

/// The composite wire type of Coin-Gen: Bit-Gen, expose, grade-cast and
/// BA traffic multiplexed over one synchronous network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoinGenMsg<F: Field> {
    /// Bit-Gen dealing/combination traffic.
    BitGen(BitGenMsg<F>),
    /// Coin-Expose shares (challenge `r` and the leader coins).
    Expose(ExposeMsg<F>),
    /// Grade-cast of clique announcements.
    Gc(GcMsg<CliqueAnnounce<F>>),
    /// Byzantine-agreement traffic.
    Ba(BaMsg),
}

impl<F: Field> WireSize for CoinGenMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            CoinGenMsg::BitGen(m) => m.wire_bytes(),
            CoinGenMsg::Expose(m) => m.wire_bytes(),
            CoinGenMsg::Gc(m) => m.wire_bytes(),
            CoinGenMsg::Ba(m) => m.wire_bytes(),
        }
    }
}

macro_rules! embed {
    ($inner:ty, $variant:ident) => {
        impl<F: Field> Embeds<$inner> for CoinGenMsg<F> {
            fn wrap(inner: $inner) -> Self {
                CoinGenMsg::$variant(inner)
            }
            fn peek(&self) -> Option<&$inner> {
                match self {
                    CoinGenMsg::$variant(m) => Some(m),
                    _ => None,
                }
            }
        }
    };
}
embed!(BitGenMsg<F>, BitGen);
embed!(ExposeMsg<F>, Expose);
embed!(GcMsg<CliqueAnnounce<F>>, Gc);
embed!(BaMsg, Ba);

/// The wire-type capability Coin-Gen needs: any message enum that can
/// carry Bit-Gen, Coin-Expose, Grade-Cast and BA traffic.
///
/// [`CoinGenMsg`] is the canonical implementation; applications that
/// multiplex their own traffic over the same network define their own
/// enum, implement the four [`Embeds`] instances, and get this trait for
/// free via the blanket impl.
pub trait CoinGenWire<F: Field>:
    Clone
    + Send
    + WireSize
    + Embeds<BitGenMsg<F>>
    + Embeds<ExposeMsg<F>>
    + Embeds<GcMsg<CliqueAnnounce<F>>>
    + Embeds<BaMsg>
    + 'static
{
}

impl<F: Field, T> CoinGenWire<F> for T where
    T: Clone
        + Send
        + WireSize
        + Embeds<BitGenMsg<F>>
        + Embeds<ExposeMsg<F>>
        + Embeds<GcMsg<CliqueAnnounce<F>>>
        + Embeds<BaMsg>
        + 'static
{
}

/// Configuration of one Coin-Gen execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoinGenConfig {
    /// System parameters (`n ≥ 6t + 1`).
    pub params: Params,
    /// `M`: sealed coins produced per run (per dealer batch).
    pub batch_size: usize,
}

/// The sealed coins a party walks away with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoinBatch<F: Field> {
    /// The agreed dealer set `C_l` whose secrets are summed.
    pub dealers: Vec<PartyId>,
    /// This party's share of each of the `M` coins (`None` = cannot
    /// vouch / abstains from the expose).
    pub shares: Vec<SealedShare<F>>,
    /// Leader-selection attempts the BA loop took (Lemma 8: expected
    /// O(1)).
    pub attempts: usize,
    /// Seed coins consumed from the wallet (1 challenge + 1 per attempt).
    pub seeds_consumed: usize,
}

impl<F: Field> CoinBatch<F> {
    /// Number of coins sealed.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }
}

/// Leader attempts before giving up (the expected number is constant —
/// Lemma 8 — so hitting this limit indicates seed exhaustion or a model
/// violation).
const MAX_LEADER_ATTEMPTS: usize = 32;

/// Protocol Coin-Gen (Fig. 5) as a sans-IO round machine: the Bit-Gen
/// phase ([`BitGenMachine`]) followed by the dealer agreement
/// (`AgreeMachine`), with the share sums computed at the end. See the
/// module docs for the step list.
///
/// Consumes `1 + attempts` sealed coins from the wallet (the challenge
/// `r` plus one leader coin per BA iteration). All honest parties must
/// start this machine in the same round with wallets in the same state.
/// The machine owns the wallet for the duration of the run and hands it
/// back (minus the consumed seed coins) in its output, so the same wallet
/// keeps working under any executor.
///
/// The result half of the output is [`CoinGenError::SeedExhausted`] if
/// the wallet runs dry, [`CoinGenError::Coin`] if an expose fails, and
/// [`CoinGenError::NoAgreement`] if the BA loop exceeds its budget.
pub struct CoinGenMachine<M, F: Field> {
    cfg: CoinGenConfig,
    stage: CgStage<M, F>,
}

enum CgStage<M, F: Field> {
    /// First call: pop the challenge and start the Bit-Gen deal.
    Start { wallet: CoinWallet<F> },
    /// Steps 1–3 in flight.
    BitGen { bg: BitGenMachine<M, F>, wallet: CoinWallet<F> },
    /// Steps 4–11 in flight.
    Agree { agree: AgreeMachine<M, F> },
    Finished,
}

impl<M, F: Field> CoinGenMachine<M, F> {
    /// A machine sealing one batch per `cfg`, consuming seeds from
    /// `wallet`.
    pub fn new(cfg: CoinGenConfig, wallet: CoinWallet<F>) -> Self {
        CoinGenMachine { cfg, stage: CgStage::Start { wallet } }
    }
}

impl<M, F> RoundMachine<M> for CoinGenMachine<M, F>
where
    M: Clone
        + WireSize
        + Embeds<BitGenMsg<F>>
        + Embeds<ExposeMsg<F>>
        + Embeds<GcMsg<CliqueAnnounce<F>>>
        + Embeds<BaMsg>,
    F: Field,
{
    type Output = (CoinWallet<F>, Result<CoinBatch<F>, CoinGenError>);

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        let Params { n, t } = self.cfg.params;
        let m = self.cfg.batch_size;
        match mem::replace(&mut self.stage, CgStage::Finished) {
            CgStage::Start { mut wallet } => {
                assert_eq!(view.n, n, "network size must match the configured n");
                // Steps 1–3: n parallel Bit-Gens under one challenge coin.
                let r_coin = match wallet.pop() {
                    Ok(c) => c,
                    Err(_) => {
                        return Step::Done((wallet, Err(CoinGenError::SeedExhausted)))
                    }
                };
                let dealers: Vec<PartyId> = (1..=n).collect();
                let mut bg =
                    BitGenMachine::new(t, m, r_coin, dealers, BitGenMode::RandomCoins);
                let Step::Continue(out) = bg.round(view.reborrow()) else {
                    unreachable!("bit-gen deals on its first call")
                };
                self.stage = CgStage::BitGen { bg, wallet };
                Step::Continue(out)
            }
            CgStage::BitGen { mut bg, wallet } => match bg.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = CgStage::BitGen { bg, wallet };
                    Step::Continue(out)
                }
                Step::Done(Err(e)) => Step::Done((wallet, Err(e.into()))),
                Step::Done(Ok(run)) => {
                    // Steps 4–11: agree on a dealer clique.
                    let mut agree = AgreeMachine::new(self.cfg.params, wallet, run);
                    let Step::Continue(out) = agree.round(view.reborrow()) else {
                        unreachable!("agreement grade-casts on its first call")
                    };
                    self.stage = CgStage::Agree { agree };
                    Step::Continue(out)
                }
            },
            CgStage::Agree { mut agree } => match agree.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = CgStage::Agree { agree };
                    Step::Continue(out)
                }
                Step::Done((_, wallet, Err(e))) => Step::Done((wallet, Err(e))),
                Step::Done((run, wallet, Ok(agreement))) => {
                    let announce = &agreement.announce;
                    let dealers = announce.dealers();

                    // Can I vouch for my share sums? Only if my own
                    // combination fits every adopted dealer's polynomial
                    // (then, w.h.p., each of my individual shares is
                    // correct — the random-challenge argument).
                    let my_point = F::element(view.id as u64);
                    let i_fit = announce.pairs.iter().all(|(j, f)| {
                        run.views[j - 1].my_beta == Some(f.eval(my_point))
                            && run.views[j - 1].alphas.len() == m
                    });

                    let shares: Vec<SealedShare<F>> = (0..m)
                        .map(|h| {
                            if i_fit {
                                let sigma: F = dealers
                                    .iter()
                                    .map(|&j| run.views[j - 1].alphas[h])
                                    .sum();
                                SealedShare::of(sigma)
                            } else {
                                SealedShare::absent()
                            }
                        })
                        .collect();

                    Step::Done((
                        wallet,
                        Ok(CoinBatch {
                            dealers,
                            shares,
                            attempts: agreement.attempts,
                            seeds_consumed: 1 + agreement.seeds_consumed,
                        }),
                    ))
                }
            },
            // lint: allow(error-discipline) — driver contract: no executor calls round() after Done
            CgStage::Finished => panic!("CoinGenMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            CgStage::Start { .. } => "coin-gen/start",
            CgStage::BitGen { bg, .. } => bg.phase_name(),
            CgStage::Agree { agree } => agree.phase_name(),
            CgStage::Finished => "coin-gen/finished",
        }
    }
}

/// The outcome of Coin-Gen steps 4–11: an agreed dealer clique.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct DealerAgreement<F: Field> {
    /// The adopted clique announcement (dealers + check polynomials),
    /// identical at every honest party.
    pub announce: CliqueAnnounce<F>,
    /// Leader attempts the BA loop took.
    pub attempts: usize,
    /// Seed coins consumed by the leader elections.
    pub seeds_consumed: usize,
}

/// Coin-Gen steps 4–11 (shared with the proactive refresh of
/// [`crate::refresh`]) as a sans-IO round machine: build the agreement
/// graph over a completed Bit-Gen run, find a clique, grade-cast it, and
/// repeat leader-election + BA until a clique is adopted.
///
/// Leader elections are *biased away from failed parties*: a leader whose
/// announcement a BA round unanimously voted down is blacklisted, and
/// later coins index into the surviving candidate list. BA unanimity
/// keeps the blacklist — and hence the elected leader — identical at
/// every honest party (a local-confidence filter would not be: grade-cast
/// confidences may differ between honest parties). See DESIGN.md.
///
/// The machine owns the wallet and Bit-Gen run while it executes and
/// returns both in its output so the enclosing phase can finish its
/// share accounting.
pub(crate) struct AgreeMachine<M, F: Field> {
    n: usize,
    t: usize,
    wallet: CoinWallet<F>,
    run: BitGenRun<F>,
    graded: Vec<GradeOutput<CliqueAnnounce<F>>>,
    /// Leaders a BA has already rejected (step-9 bias).
    rejected: Vec<PartyId>,
    attempts: usize,
    seeds_consumed: usize,
    stage: AgStage<M, F>,
}

/// What [`AgreeMachine`] yields: the Bit-Gen run and wallet it owned,
/// plus the agreement (or the failure that ended the loop).
pub(crate) type AgreeOutput<F> =
    (BitGenRun<F>, CoinWallet<F>, Result<DealerAgreement<F>, CoinGenError>);

enum AgStage<M, F: Field> {
    /// First call: build the graph/clique and send the grade-cast value.
    Start,
    /// Steps 7–8 in flight.
    Gc(GradecastMachine<M, CliqueAnnounce<F>>),
    /// Step 9: a leader coin mid-expose.
    Expose(ExposeMachine<M, F>),
    /// Step 10: BA on the elected leader's announcement.
    Ba { ba: PhaseKingMachine<M>, leader: PartyId },
    Finished,
}

impl<M, F: Field> AgreeMachine<M, F> {
    pub(crate) fn new(params: Params, wallet: CoinWallet<F>, run: BitGenRun<F>) -> Self {
        AgreeMachine {
            n: params.n,
            t: params.t,
            wallet,
            run,
            graded: Vec::new(),
            rejected: Vec::new(),
            attempts: 0,
            seeds_consumed: 0,
            stage: AgStage::Start,
        }
    }

    fn finish(&mut self, res: Result<DealerAgreement<F>, CoinGenError>) -> Step<M, AgreeOutput<F>> {
        let run = mem::replace(
            &mut self.run,
            BitGenRun { r: F::zero(), views: Vec::new(), my_polys: None },
        );
        Step::Done((run, mem::take(&mut self.wallet), res))
    }

    /// Steps 9–11, loop entry: pop a leader coin and start its expose.
    fn start_attempt(&mut self, view: &mut RoundView<'_, M>) -> Step<M, AgreeOutput<F>>
    where
        M: Clone + WireSize + Embeds<ExposeMsg<F>>,
    {
        if self.attempts >= MAX_LEADER_ATTEMPTS {
            return self
                .finish(Err(CoinGenError::NoAgreement { attempts: MAX_LEADER_ATTEMPTS }));
        }
        self.attempts += 1;
        let l_coin = match self.wallet.pop() {
            Ok(c) => c,
            Err(_) => return self.finish(Err(CoinGenError::SeedExhausted)),
        };
        self.seeds_consumed += 1;
        let mut expose = ExposeMachine::new(l_coin, self.t, ExposeVia::PointToPoint);
        let Step::Continue(out) = expose.round(view.reborrow()) else {
            unreachable!("expose sends on its first call")
        };
        self.stage = AgStage::Expose(expose);
        Step::Continue(out)
    }
}

impl<M, F> RoundMachine<M> for AgreeMachine<M, F>
where
    M: Clone
        + WireSize
        + Embeds<ExposeMsg<F>>
        + Embeds<GcMsg<CliqueAnnounce<F>>>
        + Embeds<BaMsg>,
    F: Field,
{
    type Output = AgreeOutput<F>;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        let n = self.n;
        let t = self.t;
        match mem::replace(&mut self.stage, AgStage::Finished) {
            AgStage::Start => {
                // Steps 4–5: the agreement graph.
                let mut digraph = DiGraph::new(n);
                for v in &self.run.views {
                    if let Some(f) = &v.check_poly {
                        for k in 1..=n {
                            if let Some(beta) = v.betas[k - 1] {
                                if f.eval(F::element(k as u64)) == beta {
                                    digraph.add_edge(v.dealer, k);
                                }
                            }
                        }
                    }
                }
                let graph = digraph.mutual();

                // Step 6: the clique approximation.
                let clique = approx_clique(&graph);

                // Step 7: grade-cast my clique with its check polynomials.
                let announce = CliqueAnnounce {
                    pairs: clique
                        .iter()
                        .filter_map(|&j| {
                            self.run.views[j - 1].check_poly.clone().map(|f| (j, f))
                        })
                        .collect(),
                };
                let mut gc = GradecastMachine::new(announce);
                let Step::Continue(out) = gc.round(view.reborrow()) else {
                    unreachable!("grade-cast sends on its first call")
                };
                self.stage = AgStage::Gc(gc);
                Step::Continue(out)
            }
            AgStage::Gc(mut gc) => match gc.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = AgStage::Gc(gc);
                    Step::Continue(out)
                }
                // Step 8: everyone's announcements with confidences are
                // in; move straight into the first leader election.
                Step::Done(graded) => {
                    self.graded = graded;
                    self.start_attempt(&mut view)
                }
            },
            AgStage::Expose(mut expose) => {
                let l_value = match expose.round(view.reborrow()) {
                    Step::Done(Ok(v)) => v,
                    Step::Done(Err(e)) => return self.finish(Err(e.into())),
                    Step::Continue(_) => unreachable!("expose decodes on its second call"),
                };

                // Step 9, biased: elect among the parties no BA has
                // rejected yet.
                let candidates: Vec<PartyId> =
                    (1..=n).filter(|p| !self.rejected.contains(p)).collect();
                if candidates.is_empty() {
                    let attempts = self.attempts;
                    return self.finish(Err(CoinGenError::NoAgreement { attempts }));
                }
                let leader = candidates[(l_value.to_u64() % candidates.len() as u64) as usize];

                // Step 10's input conditions.
                let grade = &self.graded[leader - 1];
                let candidate = grade.value.as_ref().filter(|a| a.well_formed(n, t));
                let my_input = match candidate {
                    Some(a) if grade.confidence == 2 => {
                        a.dealers().len() >= n - 2 * t
                            && count_universal_fitters(a, &self.run, n) > 3 * t
                    }
                    _ => false,
                };

                let mut ba = PhaseKingMachine::new(my_input, t);
                let Step::Continue(out) = ba.round(view.reborrow()) else {
                    unreachable!("BA suggests on its first call")
                };
                self.stage = AgStage::Ba { ba, leader };
                Step::Continue(out)
            }
            AgStage::Ba { mut ba, leader } => match ba.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = AgStage::Ba { ba, leader };
                    Step::Continue(out)
                }
                Step::Done(false) => {
                    // Step 11: the leader was voted down — unanimously, by
                    // BA agreement — so bias later elections away from it.
                    self.rejected.push(leader);
                    self.start_attempt(&mut view)
                }
                Step::Done(true) => {
                    // Adopt C_l. Grade-cast guarantees every honest party
                    // holds the same announcement (confidence ≥ 1) once
                    // one honest party voted with confidence 2.
                    let grade = &self.graded[leader - 1];
                    let res = grade
                        .value
                        .as_ref()
                        .filter(|a| a.well_formed(n, t))
                        .or(grade.value.as_ref())
                        .cloned()
                        .map(|announce| DealerAgreement {
                            announce,
                            attempts: self.attempts,
                            seeds_consumed: self.seeds_consumed,
                        })
                        .ok_or(CoinGenError::NoAgreement { attempts: self.attempts });
                    self.finish(res)
                }
            },
            // lint: allow(error-discipline) — driver contract: no executor calls round() after Done
            AgStage::Finished => panic!("AgreeMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            AgStage::Start => "coin-gen/clique",
            AgStage::Gc(gc) => gc.phase_name(),
            AgStage::Expose(expose) => expose.phase_name(),
            AgStage::Ba { ba, .. } => ba.phase_name(),
            AgStage::Finished => "coin-gen/agreed",
        }
    }
}

/// Condition (iii) of step 10: how many players' combinations — in *my*
/// view of the Bit-Gen exchanges — satisfy every announced dealer's
/// polynomial.
fn count_universal_fitters<F: Field>(
    announce: &CliqueAnnounce<F>,
    run: &BitGenRun<F>,
    n: usize,
) -> usize {
    (1..=n)
        .filter(|&j| {
            let x = F::element(j as u64);
            announce.pairs.iter().all(|(k, f)| {
                run.views[k - 1].betas[j - 1] == Some(f.eval(x))
            })
        })
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin::decode_coin;
    use crate::dealer::TrustedDealer;
    use dprbg_field::Gf2k;
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, MachineExt, StepRunner};

    type F = Gf2k<32>;
    type M = CoinGenMsg<F>;

    fn cfg(n: usize, t: usize, m: usize) -> CoinGenConfig {
        CoinGenConfig {
            params: Params::p2p_model(n, t).unwrap(),
            batch_size: m,
        }
    }

    /// An honest fleet that drops the returned wallet and keeps the batch
    /// result.
    fn honest_fleet(
        c: CoinGenConfig,
        wallets: Vec<CoinWallet<F>>,
    ) -> Vec<BoxedMachine<M, Result<CoinBatch<F>, CoinGenError>>> {
        wallets
            .into_iter()
            .map(|w| {
                Box::new(CoinGenMachine::new(c, w).map(|(_, res)| res)) as BoxedMachine<M, _>
            })
            .collect()
    }

    #[test]
    fn all_honest_one_attempt() {
        let n = 7;
        let t = 1;
        let c = cfg(n, t, 4);
        let wallets = TrustedDealer::deal_wallets::<F>(c.params, 4, 1);
        let outs = StepRunner::new(n, 2).run(honest_fleet(c, wallets)).unwrap_all();
        let first = outs[0].as_ref().unwrap();
        assert_eq!(first.attempts, 1);
        assert_eq!(first.len(), 4);
        assert_eq!(first.dealers.len(), n); // everyone honest → full clique
        for out in &outs {
            let b = out.as_ref().unwrap();
            assert_eq!(b.dealers, first.dealers);
            assert!(b.shares.iter().all(|s| s.sigma.is_some()));
        }
    }

    #[test]
    fn sealed_coins_are_consistent_and_unanimous() {
        // Decode each sealed coin from the parties' share sums directly:
        // every coin must be a degree-≤t polynomial's constant term.
        let n = 7;
        let t = 1;
        let m = 3;
        let c = cfg(n, t, m);
        let wallets = TrustedDealer::deal_wallets::<F>(c.params, 4, 7);
        let outs = StepRunner::new(n, 8).run(honest_fleet(c, wallets)).unwrap_all();
        for h in 0..m {
            let pts: Vec<(F, F)> = outs
                .iter()
                .enumerate()
                .map(|(i, o)| {
                    (
                        F::element(i as u64 + 1),
                        o.as_ref().unwrap().shares[h].sigma.unwrap(),
                    )
                })
                .collect();
            decode_coin(&pts, t).expect("sealed coin must decode");
        }
    }

    #[test]
    fn tolerates_fully_byzantine_party() {
        // One party deals garbage, sends corrupt betas, lies in gradecast
        // and BA. The honest 6 still seal a batch and agree on dealers.
        let n = 7;
        let t = 1;
        let m = 2;
        let c = cfg(n, t, m);
        let plan = FaultPlan::explicit(n, vec![2]);
        let mut wallets = TrustedDealer::deal_wallets::<F>(c.params, 4, 21);
        let mut honest_wallets: Vec<CoinWallet<F>> = Vec::new();
        for id in 1..=n {
            let w = wallets.remove(0);
            if !plan.is_faulty(id) {
                honest_wallets.push(w);
            }
        }
        let fleet = plan.machines::<M, Option<CoinBatch<F>>>(
            |_| {
                let w = honest_wallets.remove(0);
                Box::new(CoinGenMachine::new(c, w).map(|(_, res)| res.ok()))
            },
            |_| {
                Box::new(from_fn(move |view: dprbg_sim::RoundView<'_, M>| {
                    let n = view.n;
                    let mut out = view.outbox();
                    match view.round {
                        0 => {
                            // Garbage dealing.
                            for i in 1..=n {
                                out.send(
                                    i,
                                    CoinGenMsg::BitGen(BitGenMsg::Deal {
                                        alphas: vec![F::from_u64(i as u64); 2],
                                        gamma: F::zero(),
                                    }),
                                );
                            }
                            Step::Continue(out)
                        }
                        1 => {
                            // Corrupt expose share.
                            out.send_to_all(CoinGenMsg::Expose(crate::coin::ExposeMsg(
                                F::from_u64(0xEF11u64),
                            )));
                            Step::Continue(out)
                        }
                        2 => {
                            // Garbage betas.
                            let garbage: Vec<(dprbg_sim::PartyId, F)> =
                                (1..=n).map(|d| (d, F::from_u64(d as u64 * 3))).collect();
                            out.send_to_all(CoinGenMsg::BitGen(BitGenMsg::Betas(garbage)));
                            Step::Continue(out)
                        }
                        // Stay silent through gradecast (3 rounds), then
                        // vanish (the executor carries the rest).
                        3..=5 => Step::Continue(out),
                        _ => Step::Done(None),
                    }
                }))
            },
        );
        let res = StepRunner::new(n, 22).run(fleet);
        let honest_batches: Vec<&CoinBatch<F>> = plan
            .honest()
            .map(|id| res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap())
            .collect();
        let dealers = &honest_batches[0].dealers;
        assert!(dealers.len() >= n - 2 * t);
        for b in &honest_batches {
            assert_eq!(&b.dealers, dealers);
            assert_eq!(b.len(), m);
        }
        // The sealed coins decode consistently from honest contributions.
        for h in 0..m {
            let pts: Vec<(F, F)> = plan
                .honest()
                .filter_map(|id| {
                    res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap().shares[h]
                        .sigma
                        .map(|s| (F::element(id as u64), s))
                })
                .collect();
            assert!(pts.len() > 2 * t);
            decode_coin(&pts, t).expect("coin must decode from honest shares");
        }
    }

    #[test]
    fn seed_exhaustion_is_reported() {
        let n = 7;
        let t = 1;
        let c = cfg(n, t, 2);
        // Empty wallets: the very first pop must fail on every party.
        let wallets = vec![CoinWallet::new(); n];
        for out in StepRunner::new(n, 30).run(honest_fleet(c, wallets)).unwrap_all() {
            assert_eq!(out.unwrap_err(), CoinGenError::SeedExhausted);
        }
    }

    #[test]
    fn batch_accounting_fields() {
        let n = 7;
        let t = 1;
        let c = cfg(n, t, 5);
        let wallets = TrustedDealer::deal_wallets::<F>(c.params, 6, 40);
        let fleet: Vec<BoxedMachine<M, (CoinWallet<F>, Result<CoinBatch<F>, CoinGenError>)>> =
            wallets
                .into_iter()
                .map(|w| Box::new(CoinGenMachine::new(c, w)) as BoxedMachine<M, _>)
                .collect();
        for (wallet, out) in StepRunner::new(n, 41).run(fleet).unwrap_all() {
            let b = out.unwrap();
            assert_eq!(b.seeds_consumed, 1 + b.attempts);
            assert!(!b.is_empty());
            // The machine hands back the unconsumed seeds.
            assert_eq!(wallet.len(), 6 - b.seeds_consumed);
        }
    }
}
