//! Protocol Bit-Gen (Fig. 4): sealed-bit generation, point-to-point model.
//!
//! §4 model: `n ≥ 6t + 1`, **no broadcast channel**. "Bit-Gen enables a
//! dealer to share M secrets, while allowing the players to verify that
//! the dealer has shared proper secrets." Because announcements travel on
//! private channels only, players reach merely *local* verdicts — the
//! output is the pair `(F(x), S)` per instance, which Coin-Gen later
//! reconciles via the agreement-graph/clique machinery.
//!
//! Per instance (dealer `D`):
//!
//! 1. `D` defines `f_1 … f_M` (degree ≤ t, random — these are the future
//!    coins) and sends `P_i` the values `f_j(i)`.
//! 2. `r ← Coin-Expose(k-ary-coin)` — the same `r` serves all `n`
//!    parallel instances (the computation saving noted in Theorem 2).
//! 3. `P_i` computes the Horner combination `β_i` and sends it to all
//!    players.
//! 4. `S ← {β_{i1}, …}` as received.
//! 5. Using the Berlekamp–Welch decoder, interpolate `F(x)` through the
//!    shares in `S`; if `deg F ≤ t` and ≥ `n − t` values in `S` satisfy
//!    `F(i_j) = β_{i_j}`, output `(F(x), S)`, else `(⊥, S)`.
//!
//! Soundness (Lemma 5): a dealer whose sharing is invalid on ≥ `n − 2t`
//! honest players survives with probability ≤ `M/p`. Cost (Lemma 6):
//! `O(M(t + 2)k log k)` additions, 2 interpolations, 3 rounds,
//! `nMk + 2n²k` bits; Corollary 2: amortized `≈ n` bits of communication
//! per generated bit.
//!
//! Like Batch-VSS, the combination is blinded with one extra masking
//! polynomial per dealer by default (see DESIGN.md deviation #2).

use std::mem;

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::{bw_decode, Poly};
use dprbg_sim::{Embeds, PartyId, RoundMachine, RoundView, Step};

use crate::batch_vss::horner_combine;
use crate::coin::{ExposeMachine, ExposeMsg, ExposeVia, SealedShare};
use crate::errors::CoinError;

/// Wire messages of the `n` parallel Bit-Gen instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BitGenMsg<F: Field> {
    /// Round 1: the dealer's share vector for the recipient (instance =
    /// sender).
    Deal {
        /// `f_1(i) … f_M(i)`.
        alphas: Vec<F>,
        /// The masking share `g(i)`.
        gamma: F,
    },
    /// Coin-Expose traffic for the shared challenge.
    Expose(ExposeMsg<F>),
    /// Round 3: the sender's combined shares, one entry per dealer
    /// instance it holds valid shares in (batched into a single message
    /// of size ≈ nk — Theorem 2's "n² messages of size kn").
    Betas(Vec<(PartyId, F)>),
}

impl<F: Field> WireSize for BitGenMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            BitGenMsg::Deal { alphas, gamma } => alphas.wire_bytes() + gamma.wire_bytes(),
            BitGenMsg::Expose(e) => e.wire_bytes(),
            // Dealer tags are log n bits; charge one byte per entry.
            BitGenMsg::Betas(entries) => {
                entries.iter().map(|(_, b)| 1 + b.wire_bytes()).sum()
            }
        }
    }
}

impl<F: Field> Embeds<ExposeMsg<F>> for BitGenMsg<F> {
    fn wrap(inner: ExposeMsg<F>) -> Self {
        BitGenMsg::Expose(inner)
    }
    fn peek(&self) -> Option<&ExposeMsg<F>> {
        match self {
            BitGenMsg::Expose(e) => Some(e),
            _ => None,
        }
    }
}

/// This party's record of one dealer's Bit-Gen instance — the `(F(x), S)`
/// output of Fig. 4 plus the shares the party must keep for Coin-Expose.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DealerView<F: Field> {
    /// The instance's dealer.
    pub dealer: PartyId,
    /// My shares `f_1(i) … f_M(i)` from this dealer (empty if the dealer
    /// stayed silent or sent a malformed vector).
    pub alphas: Vec<F>,
    /// My masking share `g(i)`.
    pub gamma: F,
    /// My own combination `β_i` (what I sent; `None` if I had no valid
    /// shares).
    pub my_beta: Option<F>,
    /// The set `S`: combination values received, indexed by party − 1.
    pub betas: Vec<Option<F>>,
    /// `F(x)` if step 5 succeeded (degree ≤ t, ≥ n − t agreement), else
    /// `⊥`.
    pub check_poly: Option<Poly<F>>,
}

/// The result of running the `n` parallel Bit-Gen instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitGenRun<F: Field> {
    /// The exposed challenge `r`.
    pub r: F,
    /// One view per dealer instance, indexed by dealer − 1.
    pub views: Vec<DealerView<F>>,
    /// If this party dealt, its secret polynomials (`f_1 … f_M`) — the
    /// coins it contributed.
    pub my_polys: Option<Vec<Poly<F>>>,
}

/// What the dealers share — fresh random coins (Coin-Gen) or zero
/// sharings (the proactive refresh of [`crate::refresh`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BitGenMode {
    /// Fig. 4 verbatim: `M` uniformly random secrets, blinded combination.
    #[default]
    RandomCoins,
    /// Proactive refresh: `M` sharings of **zero** (`f_j(0) = 0`),
    /// unblinded, and acceptance additionally requires `F(0) = 0` — so a
    /// cheating dealer cannot shift existing coin values (w.p. > 1 − M/p).
    ZeroRefresh,
}

/// The `n` parallel Bit-Gen instances (Fig. 4) as a sans-IO round
/// machine: deal, challenge expose (an embedded [`ExposeMachine`]), and
/// combination exchange — Lemma 6's exact 3 rounds, one `Continue` each.
///
/// Every party in `dealers` acts as a dealer of `m` sealed secrets, all
/// instances sharing one challenge coin (Coin-Gen step 3: "using the same
/// coin r for all invocations"). The output propagates [`CoinError`] from
/// the challenge expose.
pub struct BitGenMachine<M, F: Field> {
    t: usize,
    m: usize,
    dealers: Vec<PartyId>,
    mode: BitGenMode,
    stage: BgStage<M, F>,
}

enum BgStage<M, F: Field> {
    /// First call: deal (if a dealer) and bank the challenge share.
    Deal { coin: SealedShare<F> },
    /// Inbox holds deals: record them, then start the challenge expose.
    Deals { coin: SealedShare<F>, my_polys: Option<Vec<Poly<F>>> },
    /// Inbox holds expose shares: decode `r`, send the combinations.
    Expose {
        expose: ExposeMachine<M, F>,
        views: Vec<DealerView<F>>,
        my_polys: Option<Vec<Poly<F>>>,
    },
    /// Inbox holds combinations: fill `S` and decode every instance.
    Betas { r: F, views: Vec<DealerView<F>>, my_polys: Option<Vec<Poly<F>>> },
    Finished,
}

impl<M, F: Field> BitGenMachine<M, F> {
    /// A machine running the parallel instances dealt by `dealers`, `m`
    /// secrets each, sharing the challenge `coin`.
    pub fn new(
        t: usize,
        m: usize,
        coin: SealedShare<F>,
        dealers: Vec<PartyId>,
        mode: BitGenMode,
    ) -> Self {
        BitGenMachine { t, m, dealers, mode, stage: BgStage::Deal { coin } }
    }
}

impl<M, F> RoundMachine<M> for BitGenMachine<M, F>
where
    M: Clone + WireSize + Embeds<ExposeMsg<F>> + Embeds<BitGenMsg<F>>,
    F: Field,
{
    type Output = Result<BitGenRun<F>, CoinError>;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        let n = view.n;
        match mem::replace(&mut self.stage, BgStage::Finished) {
            BgStage::Deal { coin } => {
                // Round 1: deal. Each dealer samples M secret polynomials
                // and one masking polynomial, and sends each player its
                // share vector.
                let mut out = view.outbox();
                let mut my_polys = None;
                if self.dealers.contains(&view.id) {
                    let polys: Vec<Poly<F>> = (0..self.m)
                        .map(|_| match self.mode {
                            BitGenMode::RandomCoins => Poly::random(self.t, view.rng),
                            BitGenMode::ZeroRefresh => {
                                Poly::random_with_constant(F::zero(), self.t, view.rng)
                            }
                        })
                        .collect();
                    let blind = match self.mode {
                        BitGenMode::RandomCoins => Poly::random(self.t, view.rng),
                        // Zero sharings need no blinding: the revealed
                        // combination's constant term is zero by
                        // construction and the z's are pure masking
                        // randomness.
                        BitGenMode::ZeroRefresh => Poly::zero(),
                    };
                    for i in 1..=n {
                        let x = F::element(i as u64);
                        let alphas: Vec<F> = polys.iter().map(|f| f.eval(x)).collect();
                        out.send(
                            i,
                            <M as Embeds<BitGenMsg<F>>>::wrap(BitGenMsg::Deal {
                                alphas,
                                gamma: blind.eval(x),
                            }),
                        );
                    }
                    my_polys = Some(polys);
                }
                self.stage = BgStage::Deals { coin, my_polys };
                Step::Continue(out)
            }
            BgStage::Deals { coin, my_polys } => {
                let mut views: Vec<DealerView<F>> = (1..=n)
                    .map(|dealer| DealerView {
                        dealer,
                        alphas: Vec::new(),
                        gamma: F::zero(),
                        my_beta: None,
                        betas: vec![None; n],
                        check_poly: None,
                    })
                    .collect();
                for rcv in view.inbox.iter() {
                    if let Some(BitGenMsg::Deal { alphas, gamma }) =
                        <M as Embeds<BitGenMsg<F>>>::peek(&rcv.msg)
                    {
                        let slot = &mut views[rcv.from - 1];
                        if slot.alphas.is_empty() && alphas.len() == self.m {
                            slot.alphas = alphas.clone();
                            slot.gamma = *gamma;
                        }
                    }
                }

                // Round 2: the shared challenge.
                let mut expose = ExposeMachine::new(coin, self.t, ExposeVia::PointToPoint);
                let Step::Continue(out) = expose.round(view.reborrow()) else {
                    unreachable!("expose sends on its first call")
                };
                self.stage = BgStage::Expose { expose, views, my_polys };
                Step::Continue(out)
            }
            BgStage::Expose { mut expose, mut views, my_polys } => {
                let r = match expose.round(view.reborrow()) {
                    Step::Done(Ok(r)) => r,
                    Step::Done(Err(e)) => return Step::Done(Err(e)),
                    Step::Continue(_) => unreachable!("expose decodes on its second call"),
                };

                // Round 3: per instance, combine and exchange (n² messages
                // of size k).
                for v in views.iter_mut() {
                    if v.alphas.len() == self.m {
                        v.my_beta = Some(horner_combine(&v.alphas, v.gamma, r));
                    }
                }
                let entries: Vec<(PartyId, F)> = views
                    .iter()
                    .filter_map(|v| v.my_beta.map(|b| (v.dealer, b)))
                    .collect();
                let mut out = view.outbox();
                if !entries.is_empty() {
                    out.send_to_all(<M as Embeds<BitGenMsg<F>>>::wrap(BitGenMsg::Betas(
                        entries,
                    )));
                }
                self.stage = BgStage::Betas { r, views, my_polys };
                Step::Continue(out)
            }
            BgStage::Betas { r, mut views, my_polys } => {
                for rcv in view.inbox.iter() {
                    if let Some(BitGenMsg::Betas(entries)) =
                        <M as Embeds<BitGenMsg<F>>>::peek(&rcv.msg)
                    {
                        for (dealer, beta) in entries {
                            if (1..=n).contains(dealer) {
                                let slot = &mut views[dealer - 1].betas[rcv.from - 1];
                                if slot.is_none() {
                                    *slot = Some(*beta);
                                }
                            }
                        }
                    }
                }

                // Step 5: Berlekamp–Welch per instance.
                for v in views.iter_mut() {
                    v.check_poly = decode_instance(&v.betas, n, self.t);
                    if self.mode == BitGenMode::ZeroRefresh {
                        // Zero sharings: the combination must vanish at the
                        // origin, or the dealer is shifting coin values.
                        if v.check_poly
                            .as_ref()
                            .is_some_and(|f| !f.constant_term().is_zero())
                        {
                            v.check_poly = None;
                        }
                    }
                }
                Step::Done(Ok(BitGenRun { r, views, my_polys }))
            }
            // lint: allow(error-discipline) — driver contract: no executor calls round() after Done
            BgStage::Finished => panic!("BitGenMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            BgStage::Deal { .. } => "bit-gen/deal",
            BgStage::Deals { .. } => "bit-gen/record",
            BgStage::Expose { .. } => "bit-gen/challenge",
            BgStage::Betas { .. } => "bit-gen/combine",
            BgStage::Finished => "bit-gen/finished",
        }
    }
}

/// Fig. 4 step 5: decode `F(x)` from the received combinations; `Some`
/// iff `deg F ≤ t` and at least `n − t` received values lie on `F`.
fn decode_instance<F: Field>(betas: &[Option<F>], n: usize, t: usize) -> Option<Poly<F>> {
    let points: Vec<(F, F)> = betas
        .iter()
        .enumerate()
        .filter_map(|(i, b)| b.map(|y| (F::element(i as u64 + 1), y)))
        .collect();
    if points.len() < n - t {
        return None;
    }
    let f = bw_decode(&points, t, t).ok()?;
    let agreements = points.iter().filter(|&&(x, y)| f.eval(x) == y).count();
    (agreements >= n - t).then_some(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_poly::{share_points, share_polynomial};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, MachineExt, StepRunner};

    type F = Gf2k<32>;
    type M = BitGenMsg<F>;

    fn coin_shares(n: usize, t: usize, seed: u64) -> Vec<SealedShare<F>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let poly = share_polynomial(F::random(&mut rng), t, &mut rng);
        share_points(&poly, n)
            .into_iter()
            .map(|s| SealedShare::of(s.y))
            .collect()
    }

    fn machine(
        t: usize,
        m: usize,
        coin: SealedShare<F>,
        dealers: &[PartyId],
    ) -> BoxedMachine<M, Result<BitGenRun<F>, CoinError>> {
        Box::new(BitGenMachine::new(t, m, coin, dealers.to_vec(), BitGenMode::RandomCoins))
    }

    fn run_all(
        n: usize,
        t: usize,
        m: usize,
        seed: u64,
    ) -> Vec<Result<BitGenRun<F>, CoinError>> {
        let coins = coin_shares(n, t, seed + 500);
        let dealers: Vec<PartyId> = (1..=n).collect();
        let fleet = (1..=n).map(|id| machine(t, m, coins[id - 1], &dealers)).collect();
        StepRunner::new(n, seed).run(fleet).unwrap_all()
    }

    #[test]
    fn all_honest_every_instance_validates() {
        let n = 7;
        let t = 1;
        let m = 4;
        let outs = run_all(n, t, m, 1);
        for (i, out) in outs.iter().enumerate() {
            let run = out.as_ref().unwrap();
            for view in &run.views {
                assert!(
                    view.check_poly.is_some(),
                    "party {} rejected dealer {}",
                    i + 1,
                    view.dealer
                );
                assert_eq!(view.alphas.len(), m);
            }
        }
        // All parties exposed the same challenge.
        let r0 = outs[0].as_ref().unwrap().r;
        assert!(outs.iter().all(|o| o.as_ref().unwrap().r == r0));
    }

    #[test]
    fn shares_reconstruct_dealers_secrets() {
        let n = 7;
        let t = 1;
        let m = 3;
        let outs = run_all(n, t, m, 2);
        let dealer_polys = outs[0].as_ref().unwrap().my_polys.clone().unwrap();
        for (h, poly) in dealer_polys.iter().enumerate() {
            // Gather every party's h-th share from dealer 1 and decode.
            let shares: Vec<dprbg_poly::Share<F>> = outs
                .iter()
                .enumerate()
                .map(|(i, o)| dprbg_poly::Share {
                    x: F::element(i as u64 + 1),
                    y: o.as_ref().unwrap().views[0].alphas[h],
                })
                .collect();
            assert_eq!(
                dprbg_poly::reconstruct_secret(&shares, t).unwrap(),
                poly.constant_term()
            );
        }
    }

    #[test]
    fn cheating_dealer_detected_by_all_honest() {
        // Dealer 1 shares a degree-(t+1) polynomial among its M.
        let n = 7;
        let t = 1;
        let m = 4;
        let coins = coin_shares(n, t, 10);
        let plan = FaultPlan::explicit(n, vec![1]);
        let dealers: Vec<PartyId> = (1..=n).collect();
        let fleet = plan.machines::<M, Option<BitGenRun<F>>>(
            |id| {
                let coin = coins[id - 1];
                let dealers = dealers.clone();
                Box::new(
                    BitGenMachine::new(t, m, coin, dealers, BitGenMode::RandomCoins)
                        .map(|r: Result<BitGenRun<F>, CoinError>| r.ok()),
                )
            },
            |id| {
                let coin = coins[id - 1];
                Box::new(from_fn(move |view: RoundView<'_, M>| {
                    let n = view.n;
                    let mut out = view.outbox();
                    match view.round {
                        0 => {
                            // Deal one high-degree polynomial among honest
                            // ones.
                            let mut polys: Vec<Poly<F>> =
                                (0..m - 1).map(|_| Poly::random(t, view.rng)).collect();
                            polys.push(Poly::random(t + 1, view.rng));
                            let blind = Poly::random(t, view.rng);
                            for i in 1..=n {
                                let x = F::element(i as u64);
                                out.send(
                                    i,
                                    BitGenMsg::Deal {
                                        alphas: polys.iter().map(|f| f.eval(x)).collect(),
                                        gamma: blind.eval(x),
                                    },
                                );
                            }
                            Step::Continue(out)
                        }
                        1 => {
                            // Participate honestly in the challenge expose.
                            if let Some(sigma) = coin.sigma {
                                out.send_to_all(BitGenMsg::Expose(ExposeMsg(sigma)));
                            }
                            Step::Continue(out)
                        }
                        _ => Step::Done(None),
                    }
                }))
            },
        );
        let res = StepRunner::new(n, 11).run(fleet);
        for id in plan.honest() {
            let run = res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap();
            assert!(
                run.views[0].check_poly.is_none(),
                "party {id} failed to reject the cheating dealer"
            );
            // Honest dealers still validate.
            for j in plan.honest() {
                assert!(run.views[j - 1].check_poly.is_some());
            }
        }
    }

    #[test]
    fn byzantine_beta_senders_cannot_break_honest_instances() {
        let n = 7;
        let t = 1;
        let m = 2;
        let coins = coin_shares(n, t, 20);
        let plan = FaultPlan::explicit(n, vec![4]);
        let dealers: Vec<PartyId> = plan.honest().collect();
        let fleet = plan.machines::<M, Option<BitGenRun<F>>>(
            |id| {
                let coin = coins[id - 1];
                let dealers = dealers.clone();
                Box::new(
                    BitGenMachine::new(t, m, coin, dealers, BitGenMode::RandomCoins)
                        .map(|r: Result<BitGenRun<F>, CoinError>| r.ok()),
                )
            },
            |_| {
                Box::new(from_fn(move |view: RoundView<'_, M>| {
                    let n = view.n;
                    let mut out = view.outbox();
                    match view.round {
                        // No dealing, skip the expose.
                        0 | 1 => Step::Continue(out),
                        2 => {
                            // Round 3: garbage betas in every instance.
                            let garbage: Vec<(PartyId, F)> =
                                (1..=n).map(|d| (d, F::from_u64(0xBAD))).collect();
                            out.send_to_all(BitGenMsg::Betas(garbage));
                            Step::Continue(out)
                        }
                        _ => Step::Done(None),
                    }
                }))
            },
        );
        let res = StepRunner::new(n, 21).run(fleet);
        for id in plan.honest() {
            let run = res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap();
            for j in plan.honest() {
                assert!(
                    run.views[j - 1].check_poly.is_some(),
                    "party {id} rejected honest dealer {j}"
                );
            }
        }
    }

    #[test]
    fn silent_dealer_yields_bottom() {
        let n = 7;
        let t = 1;
        let m = 2;
        let coins = coin_shares(n, t, 30);
        // Only parties 2..=n deal; instance 1 must come out ⊥ everywhere.
        let dealers: Vec<PartyId> = (2..=n).collect();
        let fleet = (1..=n).map(|id| machine(t, m, coins[id - 1], &dealers)).collect();
        for out in StepRunner::new(n, 31).run(fleet).unwrap_all() {
            let run = out.unwrap();
            assert!(run.views[0].check_poly.is_none());
            assert!(run.views[0].my_beta.is_none());
        }
    }

    #[test]
    fn three_rounds_and_message_shape() {
        // Lemma 6: 3 rounds; round 1 has n dealer messages of ~Mk bits
        // each per dealer, rounds 2-3 have n² messages of ~k bits.
        let n = 7;
        let t = 1;
        let m = 8;
        let res = {
            let coins = coin_shares(n, t, 40);
            let dealers: Vec<PartyId> = (1..=n).collect();
            let fleet = (1..=n).map(|id| machine(t, m, coins[id - 1], &dealers)).collect();
            StepRunner::new(n, 41).run(fleet)
        };
        assert_eq!(res.report.comm.rounds, 3);
        // n² deal + n² expose + n² (batched) beta messages.
        assert_eq!(res.report.comm.messages as usize, 3 * n * n);
        let k_bytes = 4;
        let deal_bytes = n * n * (m + 1) * k_bytes;
        let expose_bytes = n * n * k_bytes;
        // Each beta message carries n (dealer, value) entries.
        let beta_bytes = n * n * n * (k_bytes + 1);
        assert_eq!(
            res.report.comm.bytes as usize,
            deal_bytes + expose_bytes + beta_bytes
        );
    }
}
