//! Protocol VSS (Fig. 2): single-secret verifiable secret sharing.
//!
//! §3 model: broadcast channel available, `n ≥ 3t + 1`. The dealer has
//! distributed shares `α_i = f(i)` of a degree-≤t polynomial; the players
//! verify the sharing *without revealing their shares*:
//!
//! 1. The dealer shares an additional random polynomial `g(x)`, giving
//!    each `P_i` a masking share `γ_i = g(i)`.
//! 2. `r ← Coin-Expose(k-ary-coin)` — a random public challenge that the
//!    dealer could not predict at dealing time.
//! 3. `P_i` broadcasts `β_i = α_i + r·γ_i` (one multiplication, one
//!    addition — the blinded share reveals nothing about `α_i`).
//! 4. Interpolate `F(x)` through `β_1 … β_n`; accept iff `deg(F) ≤ t`.
//!
//! Soundness (Lemma 1): if no degree-≤t polynomial fits the honest
//! players' shares, a cheating dealer passes with probability ≤ `1/p` —
//! the masking coefficient would have to equal `−a_j/r` for an `r` chosen
//! *after* `g` was fixed.
//!
//! Cost (Lemma 2): `n + O(k log k)` additions and **2 interpolations** per
//! player, 2 communication rounds (after dealing), `2n` messages of size
//! `k` = `2nk` bits.
//!
//! [`VssMode`] selects the acceptance rule: `Strict` is Fig. 2 verbatim
//! (interpolate through all `n` broadcast values — appropriate when the
//! *verifiers* are honest, the setting of the paper's cost lemmas);
//! `Robust` accepts iff a degree-≤t polynomial matches ≥ `n − t` of the
//! broadcasts (the Bit-Gen-style rule, §4), so ≤ t faulty *verifiers*
//! cannot frame an honest dealer.

use std::mem;

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::{bw_decode, interpolate, share_points, share_polynomial, Poly};
use dprbg_sim::{Embeds, MachineExt, PartyId, RoundMachine, RoundView, Step};
use dprbg_rng::Rng;

use crate::coin::{ExposeMachine, ExposeMsg, ExposeVia, SealedShare};
use crate::errors::CoinError;

/// Wire messages of Protocol VSS.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VssMsg<F: Field> {
    /// Dealing round: the secret share and the masking share.
    Deal {
        /// `α_i = f(i)`.
        alpha: F,
        /// `γ_i = g(i)`.
        gamma: F,
    },
    /// Coin-Expose traffic for the challenge coin.
    Expose(ExposeMsg<F>),
    /// The blinded verification share `β_i = α_i + r·γ_i`.
    Beta(F),
}

impl<F: Field> WireSize for VssMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            VssMsg::Deal { alpha, gamma } => alpha.wire_bytes() + gamma.wire_bytes(),
            VssMsg::Expose(e) => e.wire_bytes(),
            VssMsg::Beta(b) => b.wire_bytes(),
        }
    }
}

impl<F: Field> Embeds<ExposeMsg<F>> for VssMsg<F> {
    fn wrap(inner: ExposeMsg<F>) -> Self {
        VssMsg::Expose(inner)
    }
    fn peek(&self) -> Option<&ExposeMsg<F>> {
        match self {
            VssMsg::Expose(e) => Some(e),
            _ => None,
        }
    }
}

/// A party's holdings after the dealing round.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DealtShares<F: Field> {
    /// The secret share `α_i` (zero if the dealer sent nothing).
    pub alpha: F,
    /// The masking share `γ_i`.
    pub gamma: F,
}

/// The verification outcome (all honest players output the same verdict
/// when the broadcasts are consistent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VssVerdict {
    /// A valid degree-≤t sharing exists.
    Accept,
    /// No valid sharing — the dealer is disqualified.
    Reject,
}

/// Acceptance rule for step 4 — see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VssMode {
    /// Fig. 2 verbatim: all `n` broadcast values must interpolate to
    /// degree ≤ t.
    #[default]
    Strict,
    /// Accept iff some degree-≤t polynomial matches ≥ `n − t` broadcasts.
    Robust,
}

/// The dealing round (the "Given" of Fig. 2 plus its step 1) as a
/// sans-IO round machine: one `Continue` (the dealer's shares), then
/// `Done` with `(my shares, dealer polynomials if dealer)`.
///
/// If the machine was built with a secret *and* this party is `dealer`,
/// it acts as the dealer `D`: it samples the secret polynomial `f` (with
/// `f(0)` = the secret) and the masking polynomial `g`, and privately
/// sends `(f(i), g(i))` to each player. Everyone outputs their received
/// shares (zeros if the dealer stayed silent — a silent dealer is
/// rejected later with certainty).
pub struct VssDealMachine<M, F: Field> {
    dealer: PartyId,
    secret: Option<F>,
    t: usize,
    dealt: Option<(Poly<F>, Poly<F>)>,
    sent: bool,
    _wire: std::marker::PhantomData<fn() -> M>,
}

impl<M, F: Field> VssDealMachine<M, F> {
    /// A machine for `dealer`'s sharing; `secret_if_dealer` must be
    /// `Some` only at the dealer itself.
    pub fn new(dealer: PartyId, secret_if_dealer: Option<F>, t: usize) -> Self {
        VssDealMachine {
            dealer,
            secret: secret_if_dealer,
            t,
            dealt: None,
            sent: false,
            _wire: std::marker::PhantomData,
        }
    }
}

impl<M, F> RoundMachine<M> for VssDealMachine<M, F>
where
    M: Clone + WireSize + Embeds<VssMsg<F>>,
    F: Field,
{
    type Output = (DealtShares<F>, Option<(Poly<F>, Poly<F>)>);

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output> {
        if !self.sent {
            self.sent = true;
            let mut out = view.outbox();
            if view.id == self.dealer {
                if let Some(secret) = self.secret.take() {
                    let f = share_polynomial(secret, self.t, view.rng);
                    let g = Poly::random(self.t, view.rng);
                    for (i, (fs, gs)) in share_points(&f, view.n)
                        .into_iter()
                        .zip(share_points(&g, view.n))
                        .enumerate()
                    {
                        out.send(
                            i + 1,
                            <M as Embeds<VssMsg<F>>>::wrap(VssMsg::Deal {
                                alpha: fs.y,
                                gamma: gs.y,
                            }),
                        );
                    }
                    self.dealt = Some((f, g));
                }
            }
            return Step::Continue(out);
        }
        let shares = view
            .inbox
            .first_from(self.dealer)
            .and_then(|r| <M as Embeds<VssMsg<F>>>::peek(&r.msg))
            .and_then(|m| match m {
                VssMsg::Deal { alpha, gamma } => {
                    Some(DealtShares { alpha: *alpha, gamma: *gamma })
                }
                _ => None,
            })
            .unwrap_or_default();
        Step::Done((shares, self.dealt.take()))
    }

    fn phase_name(&self) -> &'static str {
        if self.sent {
            "vss/record"
        } else {
            "vss/deal"
        }
    }
}

/// Steps 2–4 of Fig. 2 (the verification proper) as a sans-IO round
/// machine: the challenge expose (an embedded [`ExposeMachine`] over the
/// broadcast channel), the blinded-share broadcast, then the
/// interpolation verdict — 2 rounds, plus the two interpolations of
/// Lemma 2. Consumes one sealed challenge coin; the output propagates
/// [`CoinError`] if the challenge coin cannot be exposed.
pub struct VssVerifyMachine<M, F: Field> {
    t: usize,
    shares: DealtShares<F>,
    mode: VssMode,
    stage: VvStage<M, F>,
}

enum VvStage<M, F: Field> {
    /// Step 2 in flight (two calls: share send, then decode + beta send).
    Expose(ExposeMachine<M, F>),
    /// Inbox holds the broadcast betas; judge.
    Betas,
    Finished,
}

impl<M, F: Field> VssVerifyMachine<M, F> {
    /// A machine verifying `shares` with `coin` as the challenge.
    pub fn new(t: usize, shares: DealtShares<F>, coin: SealedShare<F>, mode: VssMode) -> Self {
        VssVerifyMachine {
            t,
            shares,
            mode,
            stage: VvStage::Expose(ExposeMachine::new(coin, t, ExposeVia::Broadcast)),
        }
    }
}

impl<M, F> RoundMachine<M> for VssVerifyMachine<M, F>
where
    M: Clone + WireSize + Embeds<ExposeMsg<F>> + Embeds<VssMsg<F>>,
    F: Field,
{
    type Output = Result<VssVerdict, CoinError>;

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        match mem::replace(&mut self.stage, VvStage::Finished) {
            VvStage::Expose(mut expose) => match expose.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = VvStage::Expose(expose);
                    Step::Continue(out)
                }
                Step::Done(Err(e)) => Step::Done(Err(e)),
                Step::Done(Ok(r)) => {
                    // Step 3: broadcast the blinded share β_i = α_i + r·γ_i.
                    let beta = self.shares.alpha + r * self.shares.gamma;
                    let mut out = view.outbox();
                    out.broadcast(<M as Embeds<VssMsg<F>>>::wrap(VssMsg::Beta(beta)));
                    self.stage = VvStage::Betas;
                    Step::Continue(out)
                }
            },
            VvStage::Betas => {
                let mut points: Vec<(F, F)> = Vec::new();
                for rcv in view.inbox.broadcasts() {
                    if let Some(VssMsg::Beta(b)) = <M as Embeds<VssMsg<F>>>::peek(&rcv.msg) {
                        let x = F::element(rcv.from as u64);
                        if points.iter().all(|(px, _)| *px != x) {
                            points.push((x, *b));
                        }
                    }
                }
                Step::Done(Ok(judge(&points, view.n, self.t, self.mode)))
            }
            // lint: allow(error-discipline) — driver contract: no executor calls round() after Done
            VvStage::Finished => panic!("VssVerifyMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            VvStage::Expose(expose) => match expose.phase_name() {
                "expose/send" => "vss/challenge",
                _ => "vss/combine",
            },
            VvStage::Betas => "vss/judge",
            VvStage::Finished => "vss/finished",
        }
    }
}

/// Step 4's acceptance decision from the collected broadcast points.
fn judge<F: Field>(points: &[(F, F)], n: usize, t: usize, mode: VssMode) -> VssVerdict {
    match mode {
        VssMode::Strict => {
            if points.len() < n {
                // Someone withheld their broadcast: no full interpolation
                // exists, the sharing cannot be validated.
                return VssVerdict::Reject;
            }
            match interpolate(points) {
                Ok(f) if f.degree().is_none_or(|d| d <= t) => VssVerdict::Accept,
                _ => VssVerdict::Reject,
            }
        }
        VssMode::Robust => match bw_decode(points, t, t) {
            Ok(_) => VssVerdict::Accept,
            Err(_) => VssVerdict::Reject,
        },
    }
}

/// The complete protocol — dealing + verification, 3 rounds — composed
/// from [`VssDealMachine`] and [`VssVerifyMachine`] with
/// [`MachineExt::then`]. The output carries the verdict together with the
/// shares this party now holds, and propagates [`CoinError`] from the
/// challenge expose.
pub fn vss_machine<M, F>(
    dealer: PartyId,
    secret_if_dealer: Option<F>,
    t: usize,
    coin: SealedShare<F>,
    mode: VssMode,
) -> impl RoundMachine<M, Output = Result<(VssVerdict, DealtShares<F>), CoinError>>
where
    M: Clone + Send + WireSize + Embeds<ExposeMsg<F>> + Embeds<VssMsg<F>> + 'static,
    F: Field,
{
    VssDealMachine::new(dealer, secret_if_dealer, t).then(move |(shares, _)| {
        VssVerifyMachine::new(t, shares, coin, mode)
            .map(move |res| res.map(|verdict| (verdict, shares)))
    })
}

/// A cheating dealer's strategy used by soundness tests and the E6
/// experiment: deal shares of a degree-`bad_degree` polynomial (with
/// `bad_degree > t` there is no valid sharing) and an honest masking
/// polynomial, then follow the protocol.
pub fn cheating_high_degree_deal<F: Field, R: Rng + ?Sized>(
    n: usize,
    t: usize,
    bad_degree: usize,
    rng: &mut R,
) -> (Vec<DealtShares<F>>, Poly<F>, Poly<F>) {
    let f = Poly::random(bad_degree, rng);
    let g = Poly::random(t, rng);
    let shares = (1..=n as u64)
        .map(|i| DealtShares {
            alpha: f.eval(F::element(i)),
            gamma: g.eval(F::element(i)),
        })
        .collect();
    (shares, f, g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_poly::{share_points as sp, share_polynomial as spoly};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, StepRunner};

    type F = Gf2k<32>;
    type M = VssMsg<F>;

    fn coin_shares(n: usize, t: usize, seed: u64) -> Vec<SealedShare<F>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let poly = spoly(F::random(&mut rng), t, &mut rng);
        sp(&poly, n).into_iter().map(|s| SealedShare::of(s.y)).collect()
    }

    fn run_vss(
        n: usize,
        t: usize,
        seed: u64,
        mode: VssMode,
    ) -> Vec<Result<(VssVerdict, DealtShares<F>), CoinError>> {
        let coins = coin_shares(n, t, seed.wrapping_add(1000));
        let fleet: Vec<BoxedMachine<M, Result<(VssVerdict, DealtShares<F>), CoinError>>> =
            (1..=n)
                .map(|id| {
                    let secret = (id == 1).then(|| F::from_u64(0xC0FFEE));
                    Box::new(vss_machine(1, secret, t, coins[id - 1], mode))
                        as BoxedMachine<M, _>
                })
                .collect();
        StepRunner::new(n, seed).run(fleet).unwrap_all()
    }

    #[test]
    fn honest_dealer_accepted_strict_and_robust() {
        for mode in [VssMode::Strict, VssMode::Robust] {
            for (id, out) in run_vss(7, 2, 1, mode).into_iter().enumerate() {
                let (verdict, _) = out.unwrap();
                assert_eq!(verdict, VssVerdict::Accept, "party {} under {mode:?}", id + 1);
            }
        }
    }

    #[test]
    fn shares_reconstruct_the_secret() {
        let outs = run_vss(7, 2, 2, VssMode::Strict);
        let shares: Vec<dprbg_poly::Share<F>> = outs
            .iter()
            .enumerate()
            .map(|(i, o)| dprbg_poly::Share {
                x: F::element(i as u64 + 1),
                y: o.as_ref().unwrap().1.alpha,
            })
            .collect();
        assert_eq!(
            dprbg_poly::reconstruct_secret(&shares, 2).unwrap(),
            F::from_u64(0xC0FFEE)
        );
    }

    #[test]
    fn high_degree_dealer_rejected() {
        // Dealer shares a degree-(t+2) polynomial: every honest party must
        // reject (w.p. 1 − 1/p; the challenge field is 2^32 so the test is
        // deterministic in practice).
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 42);
        let mut rng = StdRng::seed_from_u64(43);
        let (bad_shares, _, _) = cheating_high_degree_deal::<F, _>(n, t, t + 2, &mut rng);
        // Dealing already happened out-of-band (cheating dealer); every
        // party verifies directly.
        let fleet: Vec<BoxedMachine<M, Result<VssVerdict, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let share = bad_shares[id - 1];
                Box::new(VssVerifyMachine::new(t, share, coin, VssMode::Strict))
                    as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 44).run(fleet).unwrap_all() {
            assert_eq!(out.unwrap(), VssVerdict::Reject);
        }
    }

    #[test]
    fn silent_dealer_rejected() {
        let n = 4;
        let t = 1;
        let coins = coin_shares(n, t, 50);
        let fleet: Vec<BoxedMachine<M, Result<VssVerdict, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                if id == 1 {
                    // Dealer crashes before dealing.
                    Box::new(from_fn(|_view: RoundView<'_, M>| {
                        Step::Done(Ok(VssVerdict::Reject))
                    })) as BoxedMachine<M, _>
                } else {
                    Box::new(
                        vss_machine(1, None, t, coin, VssMode::Strict)
                            .map(|res| res.map(|(v, _)| v)),
                    )
                }
            })
            .collect();
        let res = StepRunner::new(n, 51).run(fleet);
        for id in 2..=n {
            assert_eq!(res.outputs[id - 1], Some(Ok(VssVerdict::Reject)));
        }
    }

    #[test]
    fn robust_mode_survives_faulty_verifier() {
        // An honest dealer with one Byzantine *verifier* broadcasting a
        // garbage β: Strict rejects (can't tell who lied), Robust accepts.
        let n = 7;
        let t = 2;
        for (mode, expected) in [(VssMode::Strict, VssVerdict::Reject), (VssMode::Robust, VssVerdict::Accept)]
        {
            let coins = coin_shares(n, t, 60);
            let plan = FaultPlan::explicit(n, vec![5]);
            let fleet = plan.machines::<M, Option<VssVerdict>>(
                |id| {
                    let coin = coins[id - 1];
                    let secret = (id == 1).then(|| F::from_u64(7));
                    Box::new(
                        vss_machine(1, secret, t, coin, mode)
                            .map(|res| res.ok().map(|(v, _)| v)),
                    )
                },
                |id| {
                    let coin = coins[id - 1];
                    Box::new(from_fn(move |view: RoundView<'_, M>| {
                        let mut out = view.outbox();
                        match view.round {
                            // Sit out the dealing round.
                            0 => Step::Continue(out),
                            1 => {
                                // Expose the challenge honestly…
                                if let Some(sigma) = coin.sigma {
                                    out.broadcast(VssMsg::Expose(ExposeMsg(sigma)));
                                }
                                Step::Continue(out)
                            }
                            2 => {
                                // …then broadcast a garbage β.
                                out.broadcast(VssMsg::Beta(F::from_u64(0xBAD)));
                                Step::Continue(out)
                            }
                            _ => Step::Done(None),
                        }
                    }))
                },
            );
            let res = StepRunner::new(n, 61).run(fleet);
            for id in plan.honest() {
                assert_eq!(
                    res.outputs[id - 1],
                    Some(Some(expected)),
                    "party {id} in {mode:?}"
                );
            }
        }
    }

    #[test]
    fn verification_takes_two_rounds_and_2n_messages() {
        // Lemma 2's communication claim, measured: 2 rounds, 2n messages
        // of size k each (n expose shares + n broadcasts), 2nk bits.
        let n = 7;
        let t = 2;
        let coins = coin_shares(n, t, 70);
        let mut rng = StdRng::seed_from_u64(71);
        let f = spoly(F::from_u64(5), t, &mut rng);
        let g = dprbg_poly::Poly::random(t, &mut rng);
        let fleet: Vec<BoxedMachine<M, Result<VssVerdict, CoinError>>> = (1..=n)
            .map(|id| {
                let coin = coins[id - 1];
                let shares = DealtShares {
                    alpha: f.eval(F::element(id as u64)),
                    gamma: g.eval(F::element(id as u64)),
                };
                Box::new(VssVerifyMachine::new(t, shares, coin, VssMode::Strict))
                    as BoxedMachine<M, _>
            })
            .collect();
        let res = StepRunner::new(n, 72).run(fleet);
        assert_eq!(res.report.comm.rounds, 2);
        assert_eq!(res.report.comm.messages as usize, 2 * n);
        assert_eq!(res.report.comm.bytes as usize, 2 * n * 4); // k = 32 bits
        for out in res.unwrap_all() {
            assert_eq!(out.unwrap(), VssVerdict::Accept);
        }
    }

    #[test]
    fn soundness_error_rate_small_field() {
        // Over GF(2^8) a cheating dealer survives with probability ≈ 1/256
        // (Lemma 1). Run many trials and check the rate is in that
        // ballpark — sequentially, via the pure judge() path.
        type F8 = Gf2k<8>;
        let n = 4;
        let t = 1;
        let mut rng = StdRng::seed_from_u64(99);
        let trials = 2000;
        let mut accepts = 0;
        for _ in 0..trials {
            let (shares, _, _) = cheating_high_degree_deal::<F8, _>(n, t, t + 1, &mut rng);
            let r = F8::random(&mut rng);
            let pts: Vec<(F8, F8)> = shares
                .iter()
                .enumerate()
                .map(|(i, s)| (F8::element(i as u64 + 1), s.alpha + r * s.gamma))
                .collect();
            if judge(&pts, n, t, VssMode::Strict) == VssVerdict::Accept {
                accepts += 1;
            }
        }
        let rate = accepts as f64 / trials as f64;
        assert!(rate < 0.03, "soundness error rate {rate} too high");
    }
}
