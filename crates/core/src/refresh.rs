//! Proactive share refresh: the §1.2 extension.
//!
//! "One of the motivations and applications of our work is pro-active
//! security (e.g., [8, 16]), which deals with settings where intruders
//! are allowed to move over time. Our solution to multiple-coin
//! generation can be easily adapted to this scenario." (§1.2.)
//!
//! A *mobile* adversary corrupts different parties in different epochs;
//! if the shares of a sealed coin stay fixed, the adversary can collect
//! more than `t` of them across epochs and read the coin early. The
//! classical fix (Herzberg–Jarecki–Krawczyk–Yung \[16\]) re-randomizes
//! every share at each epoch boundary by adding fresh sharings of
//! **zero** — the coin values are untouched, but shares from different
//! epochs become mutually useless.
//!
//! [`RefreshMachine`] is exactly the paper's machinery "adapted to this
//! scenario": every party runs Bit-Gen in [`BitGenMode::ZeroRefresh`]
//! (dealing `W` zero-polynomials, one per wallet coin; acceptance
//! additionally checks the combination vanishes at the origin, so a
//! cheating dealer cannot shift coin values w.p. > 1 − W/p), the
//! Coin-Gen clique/grade-cast/BA pipeline agrees on which dealers'
//! zero-batches to apply, and each party replaces its share of coin `h`
//! by `σ'_i = σ_i + Σ_{j∈C} z_{j,h}(i)`.
//!
//! Cost: identical to one Coin-Gen run at batch size `W` — the refresh
//! rides the same amortization (Corollary 3).

use std::mem;

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_protocols::BaMsg;
use dprbg_sim::{Embeds, PartyId, RoundMachine, RoundView, Step};

use crate::bit_gen::{BitGenMachine, BitGenMode, BitGenMsg};
use crate::coin::{CoinWallet, ExposeMsg, SealedShare};
use crate::coin_gen::{AgreeMachine, CliqueAnnounce, CoinGenConfig};
use crate::errors::CoinGenError;
use crate::params::Params;
use dprbg_protocols::GcMsg;

/// The outcome of one wallet refresh.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefreshReport {
    /// The agreed set of zero-dealers whose maskings were applied.
    pub dealers: Vec<PartyId>,
    /// Coins re-randomized (the wallet size at refresh time).
    pub coins_refreshed: usize,
    /// Leader attempts the agreement loop took.
    pub attempts: usize,
    /// Seed coins consumed (1 challenge + 1 per attempt).
    pub seeds_consumed: usize,
}

/// The proactive refresh as a sans-IO round machine: Bit-Gen in
/// [`BitGenMode::ZeroRefresh`] followed by the dealer agreement
/// (`AgreeMachine`), with the zero-maskings folded into the surviving
/// wallet coins at the end.
///
/// Every honest party runs this machine in the same round with wallets
/// of the same length. The run consumes `1 + attempts` coins from the
/// wallet to drive the protocol (those are spent, not refreshed); every
/// remaining coin's *value* is preserved while its shares are replaced.
/// A party whose zero-shares fail the fit check keeps
/// [`SealedShare::absent()`] for the epoch (it still learns coins from
/// the other parties' exposes). The error half of the output has the
/// same failure modes as [`crate::coin_gen::CoinGenMachine`].
pub struct RefreshMachine<M, F: Field> {
    params: Params,
    stage: RfStage<M, F>,
}

enum RfStage<M, F: Field> {
    /// First call: pop the challenge, fix `W_upper`, start the zero deal.
    Start { wallet: CoinWallet<F> },
    /// Steps 1–3 (ZeroRefresh) in flight.
    BitGen { bg: BitGenMachine<M, F>, wallet: CoinWallet<F>, w_upper: usize },
    /// Steps 4–11 in flight.
    Agree { agree: AgreeMachine<M, F>, w_upper: usize },
    Finished,
}

impl<M, F: Field> RefreshMachine<M, F> {
    /// A machine refreshing every share in `wallet` under `cfg.params`
    /// (the batch size is the wallet length; `cfg.batch_size` is unused).
    pub fn new(cfg: CoinGenConfig, wallet: CoinWallet<F>) -> Self {
        RefreshMachine { params: cfg.params, stage: RfStage::Start { wallet } }
    }
}

impl<M, F> RoundMachine<M> for RefreshMachine<M, F>
where
    M: Clone
        + WireSize
        + Embeds<BitGenMsg<F>>
        + Embeds<ExposeMsg<F>>
        + Embeds<GcMsg<CliqueAnnounce<F>>>
        + Embeds<BaMsg>,
    F: Field,
{
    type Output = (CoinWallet<F>, Result<RefreshReport, CoinGenError>);

    fn round(&mut self, mut view: RoundView<'_, M>) -> Step<M, Self::Output> {
        let Params { n, t } = self.params;
        match mem::replace(&mut self.stage, RfStage::Finished) {
            RfStage::Start { mut wallet } => {
                assert_eq!(view.n, n, "network size must match the configured n");

                // The protocol itself consumes seed coins; pop the
                // challenge first so the refreshed count is what remains.
                let r_coin = match wallet.pop() {
                    Ok(c) => c,
                    Err(_) => {
                        return Step::Done((wallet, Err(CoinGenError::SeedExhausted)))
                    }
                };

                // Upper-bound the zero-sharings: the agreement loop still
                // consumes leader coins off the front, so deal one
                // zero-polynomial per coin that can possibly survive.
                let w_upper = wallet.len();
                if w_upper == 0 {
                    return Step::Done((wallet, Err(CoinGenError::SeedExhausted)));
                }

                // Steps 1–3 in ZeroRefresh mode.
                let dealers: Vec<PartyId> = (1..=n).collect();
                let mut bg = BitGenMachine::new(
                    t,
                    w_upper,
                    r_coin,
                    dealers,
                    BitGenMode::ZeroRefresh,
                );
                let Step::Continue(out) = bg.round(view.reborrow()) else {
                    unreachable!("bit-gen deals on its first call")
                };
                self.stage = RfStage::BitGen { bg, wallet, w_upper };
                Step::Continue(out)
            }
            RfStage::BitGen { mut bg, wallet, w_upper } => {
                match bg.round(view.reborrow()) {
                    Step::Continue(out) => {
                        self.stage = RfStage::BitGen { bg, wallet, w_upper };
                        Step::Continue(out)
                    }
                    Step::Done(Err(e)) => Step::Done((wallet, Err(e.into()))),
                    Step::Done(Ok(run)) => {
                        // Steps 4–11: agree on the zero-dealer clique.
                        let mut agree = AgreeMachine::new(self.params, wallet, run);
                        let Step::Continue(out) = agree.round(view.reborrow()) else {
                            unreachable!("agreement grade-casts on its first call")
                        };
                        self.stage = RfStage::Agree { agree, w_upper };
                        Step::Continue(out)
                    }
                }
            }
            RfStage::Agree { mut agree, w_upper } => match agree.round(view.reborrow()) {
                Step::Continue(out) => {
                    self.stage = RfStage::Agree { agree, w_upper };
                    Step::Continue(out)
                }
                Step::Done((_, wallet, Err(e))) => Step::Done((wallet, Err(e))),
                Step::Done((run, mut wallet, Ok(agreement))) => {
                    let announce = &agreement.announce;
                    let dealer_set = announce.dealers();

                    // Apply the maskings to every coin still in the
                    // wallet. Coin index alignment: wallet coins are
                    // refreshed oldest-first with the first zero-sharings;
                    // the leader coins the loop consumed came off the
                    // front, so surviving coin `h` (0-based from the
                    // current front) uses zero-sharing
                    // `h + consumed_by_loop`.
                    let offset = agreement.seeds_consumed;
                    let my_point = F::element(view.id as u64);
                    let i_fit = announce.pairs.iter().all(|(j, f)| {
                        run.views[j - 1].my_beta == Some(f.eval(my_point))
                            && run.views[j - 1].alphas.len() == w_upper
                    });

                    let survivors = wallet.len();
                    let mut refreshed = CoinWallet::new();
                    let mut h = 0;
                    while let Ok(old) = wallet.pop() {
                        let idx = h + offset;
                        let share = match (old.sigma, i_fit) {
                            (Some(sigma), true) if idx < w_upper => {
                                let mask: F = dealer_set
                                    .iter()
                                    .map(|&j| run.views[j - 1].alphas[idx])
                                    .sum();
                                SealedShare::of(sigma + mask)
                            }
                            // Either I could not vouch before, my
                            // zero-shares do not fit, or the sharing index
                            // ran out — abstain for this epoch.
                            _ => SealedShare::absent(),
                        };
                        refreshed.push(share);
                        h += 1;
                    }

                    Step::Done((
                        refreshed,
                        Ok(RefreshReport {
                            dealers: dealer_set,
                            coins_refreshed: survivors,
                            attempts: agreement.attempts,
                            seeds_consumed: 1 + agreement.seeds_consumed,
                        }),
                    ))
                }
            },
            // lint: allow(error-discipline) — driver contract: no executor calls round() after Done
            RfStage::Finished => panic!("RefreshMachine driven past completion"),
        }
    }

    fn phase_name(&self) -> &'static str {
        match &self.stage {
            RfStage::Start { .. } => "refresh/start",
            RfStage::BitGen { bg, .. } => bg.phase_name(),
            RfStage::Agree { agree, .. } => agree.phase_name(),
            RfStage::Finished => "refresh/finished",
        }
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use crate::coin::{decode_coin, ExposeMachine, ExposeVia};
    use crate::coin_gen::CoinGenMsg;
    use crate::dealer::TrustedDealer;
    use crate::errors::CoinError;
    use dprbg_field::Gf2k;
    use dprbg_poly::bw_decode;
    use dprbg_sim::{looping, BoxedMachine, FaultPlan, LoopControl, MachineExt, StepRunner};

    type F = Gf2k<32>;
    type M = CoinGenMsg<F>;

    fn cfg(n: usize, t: usize) -> CoinGenConfig {
        CoinGenConfig {
            params: Params::p2p_model(n, t).unwrap(),
            batch_size: 0, // unused by refresh
        }
    }

    /// Expose every coin left in `w`, one round-trip per coin, collecting
    /// the decoded values in order.
    fn expose_all(
        w: CoinWallet<F>,
        report: RefreshReport,
        t: usize,
    ) -> impl RoundMachine<M, Output = (RefreshReport, Vec<F>)> {
        looping((w, report, Vec::new()), move |(mut w, report, vals)| match w.pop() {
            Err(_) => LoopControl::Break((report, vals)),
            Ok(s) => LoopControl::Continue(Box::new(
                ExposeMachine::new(s, t, ExposeVia::PointToPoint).map(
                    move |r: Result<F, CoinError>| {
                        let mut vals = vals;
                        vals.push(r.expect("expose succeeds"));
                        (w, report, vals)
                    },
                ),
            )),
        })
    }

    /// Refresh, then expose every surviving coin to check the values.
    fn refresh_then_expose(
        c: CoinGenConfig,
        wallet: CoinWallet<F>,
        t: usize,
    ) -> BoxedMachine<M, (RefreshReport, Vec<F>)> {
        Box::new(RefreshMachine::new(c, wallet).then(
            move |(w, res): (CoinWallet<F>, Result<RefreshReport, CoinGenError>)| {
                expose_all(w, res.expect("refresh succeeds"), t)
            },
        ))
    }

    #[test]
    fn values_preserved_shares_changed() {
        let n = 7;
        let t = 1;
        let c = cfg(n, t);
        let (wallets, values) =
            TrustedDealer::deal_wallets_with_values::<F>(c.params, 8, 5);
        let machines: Vec<BoxedMachine<M, (RefreshReport, Vec<F>)>> =
            wallets.into_iter().map(|w| refresh_then_expose(c, w, t)).collect();
        let outs = StepRunner::new(n, 6).run(machines).unwrap_all();
        let (report, vals) = &outs[0];
        assert_eq!(report.seeds_consumed, 2);
        assert_eq!(report.coins_refreshed, 6); // 8 dealt − 2 consumed
        // The exposed values equal the original dealer values, shifted by
        // the 2 consumed coins.
        assert_eq!(vals.as_slice(), &values[2..]);
        for (_, v) in &outs {
            assert_eq!(v, vals, "unanimity after refresh");
        }
    }

    #[test]
    fn mixed_epoch_shares_do_not_reconstruct() {
        // The proactive property: t shares from before the refresh plus
        // honest shares from after belong to *different* polynomials —
        // the mobile adversary cannot combine epochs.
        let n = 7;
        let t = 1;
        let c = cfg(n, t);
        let (wallets, values) =
            TrustedDealer::deal_wallets_with_values::<F>(c.params, 4, 9);
        let pre_refresh: Vec<Option<F>> = wallets
            .iter()
            .map(|w| {
                // Peek at what will be coin index 2 (first survivor).
                let mut copy = w.clone();
                copy.pop().unwrap();
                copy.pop().unwrap();
                copy.pop().unwrap().sigma
            })
            .collect();
        let machines: Vec<BoxedMachine<M, Option<F>>> = wallets
            .into_iter()
            .map(|w| {
                Box::new(RefreshMachine::new(c, w).map(
                    |(mut w, res): (CoinWallet<F>, Result<RefreshReport, CoinGenError>)| {
                        res.ok()?;
                        w.pop().ok()?.sigma
                    },
                )) as BoxedMachine<M, _>
            })
            .collect();
        let post: Vec<Option<F>> = StepRunner::new(n, 10).run(machines).unwrap_all();

        // Post-refresh shares alone reconstruct the original value.
        let post_pts: Vec<(F, F)> = post
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.map(|y| (F::element(i as u64 + 1), y)))
            .collect();
        assert_eq!(decode_coin(&post_pts, t).unwrap(), values[2]);

        // A mixed set — old shares from parties 1..=3, new from 4..=7 —
        // fits NO degree-≤t polynomial (the whole point of refreshing).
        let mixed: Vec<(F, F)> = (0..n)
            .filter_map(|i| {
                let s = if i < 3 { pre_refresh[i] } else { post[i] };
                s.map(|y| (F::element(i as u64 + 1), y))
            })
            .collect();
        assert!(
            bw_decode(&mixed, t, 0).is_err(),
            "mixed-epoch shares must not form a valid sharing"
        );
    }

    #[test]
    fn refresh_survives_byzantine_zero_dealer() {
        // A faulty party deals NON-zero "zero" sharings (trying to shift
        // coin values): the F(0) = 0 acceptance check must exclude it,
        // and values stay intact.
        let n = 7;
        let t = 1;
        let c = cfg(n, t);
        let plan = FaultPlan::explicit(n, vec![3]);
        let (all, values) = TrustedDealer::deal_wallets_with_values::<F>(c.params, 5, 11);
        let machines = plan.machines::<M, Option<(usize, Vec<F>)>>(
            |id| {
                let w = all[id - 1].clone();
                Box::new(
                    RefreshMachine::new(c, w)
                        .then(
                            move |(w, res): (
                                CoinWallet<F>,
                                Result<RefreshReport, CoinGenError>,
                            )| {
                                let report = res.expect("refresh succeeds");
                                // The value-shifting dealer must not be in
                                // the set.
                                assert!(!report.dealers.contains(&3));
                                expose_all(w, report, 1)
                            },
                        )
                        .map(|(report, vals)| Some((report.seeds_consumed, vals))),
                )
            },
            |_| {
                // Run the honest protocol but with RandomCoins mode: i.e.
                // deal *random* (value-shifting) polynomials in the
                // refresh. Then vanish.
                let mut w = all[2].clone();
                let r_coin = w.pop().expect("wallet not empty");
                let dealers: Vec<PartyId> = (1..=n).collect();
                Box::new(
                    BitGenMachine::<M, F>::new(1, 4, r_coin, dealers, BitGenMode::RandomCoins)
                        .map(|_| None),
                )
            },
        );
        let res = StepRunner::new(n, 12).run(machines);
        // How many seed coins the agreement burned is execution-dependent
        // (the leader coin can keep electing the crashed party, Lemma 8
        // only bounds the *expected* attempts); the survivors must equal
        // the dealt values with exactly that prefix consumed.
        let mut seen: Option<&(usize, Vec<F>)> = None;
        for id in plan.honest() {
            let out = res.outputs[id - 1].as_ref().unwrap().as_ref().unwrap();
            let (seeds_consumed, vals) = out;
            assert!(*seeds_consumed >= 2, "challenge + at least one leader coin");
            // Leader elections are biased away from BA-rejected parties,
            // so the crashed dealer can cost at most one wasted attempt:
            // challenge + its rejection + one honest leader.
            assert!(*seeds_consumed <= 3, "rejected leader must not be re-elected");
            assert_eq!(
                vals.as_slice(),
                &values[*seeds_consumed..],
                "values preserved at {id}"
            );
            match seen {
                None => seen = Some(out),
                Some(prev) => assert_eq!(prev, out, "unanimity after refresh"),
            }
        }
    }

    #[test]
    fn empty_wallet_fails_cleanly() {
        let n = 7;
        let t = 1;
        let c = cfg(n, t);
        let machines: Vec<BoxedMachine<M, Option<CoinGenError>>> = (0..n)
            .map(|_| {
                Box::new(
                    RefreshMachine::new(c, CoinWallet::<F>::new())
                        .map(|(_, res): (CoinWallet<F>, _)| res.err()),
                ) as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 13).run(machines).unwrap_all() {
            assert_eq!(out, Some(CoinGenError::SeedExhausted));
        }
    }
}
