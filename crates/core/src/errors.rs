//! Error types of the core protocols.

use std::fmt;

/// Errors exposing a sealed coin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinError {
    /// Too few shares arrived to determine the coin (more crashes than the
    /// model allows).
    NotEnoughShares {
        /// Shares received.
        got: usize,
        /// Shares needed (`t + 1` after error correction headroom).
        need: usize,
    },
    /// The received shares do not fit any degree-≤t polynomial within the
    /// error radius (more corruption than the model allows).
    DecodeFailed,
    /// The party's wallet has no sealed coin left to consume.
    WalletEmpty,
}

impl fmt::Display for CoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoinError::NotEnoughShares { got, need } => {
                write!(f, "coin expose received {got} shares, needs {need}")
            }
            CoinError::DecodeFailed => write!(f, "coin shares decode to no valid polynomial"),
            CoinError::WalletEmpty => write!(f, "no sealed coins left in the wallet"),
        }
    }
}

impl std::error::Error for CoinError {}

/// Errors running the generation protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinGenError {
    /// The `(n, t)` pair violates the model's resilience requirement.
    BadParams {
        /// Offered player count.
        n: usize,
        /// Offered fault bound.
        t: usize,
        /// The violated requirement.
        need: &'static str,
    },
    /// A seed coin was needed but the wallet ran dry mid-protocol.
    SeedExhausted,
    /// A coin-expose step failed (propagated [`CoinError`]).
    Coin(CoinError),
    /// The Byzantine-agreement loop exceeded its iteration budget (the
    /// expected number of iterations is constant — Lemma 8 — so this
    /// signals either seed exhaustion or a model violation).
    NoAgreement {
        /// Leader-selection attempts made.
        attempts: usize,
    },
}

impl fmt::Display for CoinGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoinGenError::BadParams { n, t, need } => {
                write!(f, "invalid parameters n = {n}, t = {t}: {need}")
            }
            CoinGenError::SeedExhausted => write!(f, "distributed seed exhausted"),
            CoinGenError::Coin(e) => write!(f, "coin expose failed: {e}"),
            CoinGenError::NoAgreement { attempts } => {
                write!(f, "no agreement after {attempts} leader attempts")
            }
        }
    }
}

impl std::error::Error for CoinGenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoinGenError::Coin(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoinError> for CoinGenError {
    fn from(e: CoinError) -> Self {
        CoinGenError::Coin(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoinError::NotEnoughShares { got: 2, need: 4 };
        assert!(e.to_string().contains('2') && e.to_string().contains('4'));
        assert!(!CoinError::DecodeFailed.to_string().is_empty());
        assert!(!CoinError::WalletEmpty.to_string().is_empty());
        let g: CoinGenError = CoinError::WalletEmpty.into();
        assert!(g.to_string().contains("wallet"));
        assert!(std::error::Error::source(&g).is_some());
        let b = CoinGenError::BadParams { n: 6, t: 1, need: "n >= 6t+1" };
        assert!(b.to_string().contains("6t+1"));
    }
}
