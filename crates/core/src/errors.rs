//! Error types of the core protocols.

use std::fmt;

/// Errors exposing a sealed coin.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinError {
    /// Too few shares arrived to determine the coin (more crashes than the
    /// model allows).
    NotEnoughShares {
        /// Shares received.
        got: usize,
        /// Shares needed (`t + 1` after error correction headroom).
        need: usize,
    },
    /// The received shares do not fit any degree-≤t polynomial within the
    /// error radius (more corruption than the model allows).
    DecodeFailed,
    /// The party's wallet has no sealed coin left to consume.
    WalletEmpty,
}

impl fmt::Display for CoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoinError::NotEnoughShares { got, need } => {
                write!(f, "coin expose received {got} shares, needs {need}")
            }
            CoinError::DecodeFailed => write!(f, "coin shares decode to no valid polynomial"),
            CoinError::WalletEmpty => write!(f, "no sealed coins left in the wallet"),
        }
    }
}

impl std::error::Error for CoinError {}

/// Errors running the generation protocols.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoinGenError {
    /// The `(n, t)` pair violates the model's resilience requirement.
    BadParams {
        /// Offered player count.
        n: usize,
        /// Offered fault bound.
        t: usize,
        /// The violated requirement.
        need: &'static str,
    },
    /// A seed coin was needed but the wallet ran dry mid-protocol.
    SeedExhausted,
    /// A coin-expose step failed (propagated [`CoinError`]).
    Coin(CoinError),
    /// The Byzantine-agreement loop exceeded its iteration budget (the
    /// expected number of iterations is constant — Lemma 8 — so this
    /// signals either seed exhaustion or a model violation).
    NoAgreement {
        /// Leader-selection attempts made.
        attempts: usize,
    },
}

impl fmt::Display for CoinGenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoinGenError::BadParams { n, t, need } => {
                write!(f, "invalid parameters n = {n}, t = {t}: {need}")
            }
            CoinGenError::SeedExhausted => write!(f, "distributed seed exhausted"),
            CoinGenError::Coin(e) => write!(f, "coin expose failed: {e}"),
            CoinGenError::NoAgreement { attempts } => {
                write!(f, "no agreement after {attempts} leader attempts")
            }
        }
    }
}

impl std::error::Error for CoinGenError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoinGenError::Coin(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoinError> for CoinGenError {
    fn from(e: CoinError) -> Self {
        CoinGenError::Coin(e)
    }
}

/// Unified error taxonomy for every core protocol, absorbing both
/// [`CoinError`] and [`CoinGenError`] so callers can `?` across layers.
///
/// The graceful-degradation paths ([`crate::coin_gen_with_retry`],
/// [`crate::vss_dispute_or_blame`]) all surface through this type: an
/// `Aborted` carries the parties the dispute protocol convicted, and a
/// `SeedBudgetExceeded` records exactly how many wallet coins retries
/// were allowed to burn before giving up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// A coin-expose step failed (propagated [`CoinError`]).
    Coin(CoinError),
    /// The `(n, t)` pair violates the model's resilience requirement.
    BadParams {
        /// Offered player count.
        n: usize,
        /// Offered fault bound.
        t: usize,
        /// The violated requirement.
        need: &'static str,
    },
    /// A seed coin was needed but the wallet ran dry mid-protocol.
    SeedExhausted,
    /// The Byzantine-agreement loop exceeded its iteration budget.
    NoAgreement {
        /// Leader-selection attempts made.
        attempts: usize,
    },
    /// The protocol aborted and the dispute sub-protocol convicted the
    /// listed parties; the run is safe to retry without them.
    Aborted {
        /// Parties blamed for the abort (1-based ids).
        blame: Vec<usize>,
        /// Human-readable reason for the abort.
        reason: &'static str,
    },
    /// Bounded retry gave up: the next attempt would push seed spending
    /// past the caller's budget.
    SeedBudgetExceeded {
        /// Seed coins consumed by the attempts actually made.
        spent: usize,
        /// The caller's seed budget.
        budget: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Coin(e) => write!(f, "coin expose failed: {e}"),
            ProtocolError::BadParams { n, t, need } => {
                write!(f, "invalid parameters n = {n}, t = {t}: {need}")
            }
            ProtocolError::SeedExhausted => write!(f, "distributed seed exhausted"),
            ProtocolError::NoAgreement { attempts } => {
                write!(f, "no agreement after {attempts} leader attempts")
            }
            ProtocolError::Aborted { blame, reason } => {
                write!(f, "protocol aborted ({reason}); blamed parties: {blame:?}")
            }
            ProtocolError::SeedBudgetExceeded { spent, budget } => {
                write!(f, "retry seed budget exceeded: spent {spent} of {budget} seed coins")
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Coin(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoinError> for ProtocolError {
    fn from(e: CoinError) -> Self {
        ProtocolError::Coin(e)
    }
}

impl From<CoinGenError> for ProtocolError {
    fn from(e: CoinGenError) -> Self {
        match e {
            CoinGenError::BadParams { n, t, need } => ProtocolError::BadParams { n, t, need },
            CoinGenError::SeedExhausted => ProtocolError::SeedExhausted,
            CoinGenError::Coin(c) => ProtocolError::Coin(c),
            CoinGenError::NoAgreement { attempts } => ProtocolError::NoAgreement { attempts },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = CoinError::NotEnoughShares { got: 2, need: 4 };
        assert!(e.to_string().contains('2') && e.to_string().contains('4'));
        assert!(!CoinError::DecodeFailed.to_string().is_empty());
        assert!(!CoinError::WalletEmpty.to_string().is_empty());
        let g: CoinGenError = CoinError::WalletEmpty.into();
        assert!(g.to_string().contains("wallet"));
        assert!(std::error::Error::source(&g).is_some());
        let b = CoinGenError::BadParams { n: 6, t: 1, need: "n >= 6t+1" };
        assert!(b.to_string().contains("6t+1"));
    }

    #[test]
    fn protocol_error_absorbs_both_layers() {
        let p: ProtocolError = CoinError::DecodeFailed.into();
        assert_eq!(p, ProtocolError::Coin(CoinError::DecodeFailed));
        assert!(std::error::Error::source(&p).is_some());

        let p: ProtocolError = CoinGenError::NoAgreement { attempts: 9 }.into();
        assert_eq!(p, ProtocolError::NoAgreement { attempts: 9 });

        let p: ProtocolError = CoinGenError::Coin(CoinError::WalletEmpty).into();
        assert_eq!(p, ProtocolError::Coin(CoinError::WalletEmpty));

        // `?` chains compile across all three layers.
        fn chain() -> Result<(), ProtocolError> {
            fn inner() -> Result<(), CoinError> {
                Err(CoinError::WalletEmpty)
            }
            fn mid() -> Result<(), CoinGenError> {
                inner()?;
                Ok(())
            }
            mid()?;
            Ok(())
        }
        assert_eq!(chain(), Err(ProtocolError::Coin(CoinError::WalletEmpty)));
    }

    #[test]
    fn protocol_error_display_covers_new_variants() {
        let a = ProtocolError::Aborted { blame: vec![3], reason: "dealer rejected" };
        assert!(a.to_string().contains('3') && a.to_string().contains("dealer rejected"));
        let s = ProtocolError::SeedBudgetExceeded { spent: 5, budget: 4 };
        assert!(s.to_string().contains('5') && s.to_string().contains('4'));
    }
}
