//! The D-PRBG abstraction (§1.1).
//!
//! "A D-PRBG is a protocol which 'expands' a 'distributed seed,'
//! consisting of shared coins, into a longer 'sequence' of shared coins,
//! at low amortized cost per coin produced."
//!
//! [`dprbg_expand`] is that protocol: it consumes a handful of sealed
//! seed coins from the party's wallet (the challenge coin plus an
//! expected-O(1) number of leader coins) and deposits `M` fresh sealed
//! coins back into it. With `M ≫ seeds consumed`, each run *grows* the
//! reservoir — the property bootstrapping (Fig. 1) relies on.

use dprbg_field::Field;
use dprbg_sim::{MachineExt, PartyId, RoundMachine};

use crate::coin::CoinWallet;
use crate::coin_gen::{CoinGenConfig, CoinGenMachine, CoinGenWire};
use crate::errors::CoinGenError;

/// Statistics of one D-PRBG expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DprbgRun {
    /// Coins produced (the configured batch size `M`).
    pub coins_produced: usize,
    /// Seed coins consumed (1 challenge + 1 per leader attempt).
    pub seeds_consumed: usize,
    /// Leader attempts the BA loop took.
    pub attempts: usize,
    /// The agreed dealer set backing the new coins.
    pub dealers: Vec<PartyId>,
}

impl DprbgRun {
    /// The net growth of the reservoir: produced − consumed.
    pub fn net_gain(&self) -> isize {
        self.coins_produced as isize - self.seeds_consumed as isize
    }
}

/// A machine running the D-PRBG once: expand the distributed seed in
/// `wallet` by `M` fresh sealed coins (appended to the wallet's back).
///
/// All honest parties start this machine in the same round with
/// consistent wallets; the output pairs the grown wallet with the run
/// statistics. The error half of the output has the same failure modes
/// as [`crate::coin_gen::CoinGenMachine`].
pub fn dprbg_expand<M: CoinGenWire<F>, F: Field>(
    cfg: CoinGenConfig,
    wallet: CoinWallet<F>,
) -> impl RoundMachine<M, Output = (CoinWallet<F>, Result<DprbgRun, CoinGenError>)> {
    CoinGenMachine::new(cfg, wallet).map(|(mut wallet, res)| match res {
        Err(e) => (wallet, Err(e)),
        Ok(batch) => {
            let run = DprbgRun {
                coins_produced: batch.len(),
                seeds_consumed: batch.seeds_consumed,
                attempts: batch.attempts,
                dealers: batch.dealers.clone(),
            };
            wallet.extend(batch.shares);
            (wallet, Ok(run))
        }
    })
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use crate::coin_gen::CoinGenMsg;
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_sim::{BoxedMachine, StepRunner};

    type F = Gf2k<32>;
    type M = CoinGenMsg<F>;

    #[test]
    fn expansion_grows_the_wallet() {
        let n = 7;
        let t = 1;
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = CoinGenConfig { params, batch_size: 16 };
        let wallets = TrustedDealer::deal_wallets::<F>(params, 4, 3);
        let machines: Vec<BoxedMachine<M, Result<(usize, DprbgRun), CoinGenError>>> = wallets
            .into_iter()
            .map(|w| {
                Box::new(
                    dprbg_expand::<M, F>(cfg, w)
                        .map(|(w, res)| res.map(|run| (w.len(), run))),
                ) as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 4).run(machines).unwrap_all() {
            let (after, run) = out.unwrap();
            assert_eq!(run.coins_produced, 16);
            assert_eq!(after, 4 - run.seeds_consumed + 16);
            assert!(run.net_gain() > 0, "the generator must stretch the seed");
        }
    }

    #[test]
    fn expanded_coins_are_spendable_as_next_seed() {
        // Two back-to-back expansions: the second runs entirely on coins
        // produced by the first (the seed of run 2 was generated, not
        // dealt) — the essence of the D-PRBG.
        let n = 7;
        let t = 1;
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = CoinGenConfig { params, batch_size: 8 };
        let wallets = TrustedDealer::deal_wallets::<F>(params, 2, 5);
        let machines: Vec<BoxedMachine<M, (DprbgRun, DprbgRun)>> = wallets
            .into_iter()
            .map(|w| {
                Box::new(dprbg_expand::<M, F>(cfg, w).then(
                    move |(mut w, res): (CoinWallet<F>, Result<DprbgRun, CoinGenError>)| {
                        let run1 = res.expect("run 1 succeeds");
                        // Drop any leftover dealer-seeded coins so run 2
                        // can only draw generated ones.
                        for _ in 0..(2usize.saturating_sub(run1.seeds_consumed)) {
                            let _ = w.pop();
                        }
                        dprbg_expand::<M, F>(cfg, w)
                            .map(move |(_, res2)| (run1, res2.expect("run 2 succeeds")))
                    },
                )) as BoxedMachine<M, _>
            })
            .collect();
        for (run1, run2) in StepRunner::new(n, 6).run(machines).unwrap_all() {
            assert_eq!(run1.coins_produced, 8);
            assert_eq!(run2.coins_produced, 8);
        }
    }
}
