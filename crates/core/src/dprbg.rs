//! The D-PRBG abstraction (§1.1).
//!
//! "A D-PRBG is a protocol which 'expands' a 'distributed seed,'
//! consisting of shared coins, into a longer 'sequence' of shared coins,
//! at low amortized cost per coin produced."
//!
//! [`dprbg_expand`] is that protocol: it consumes a handful of sealed
//! seed coins from the party's wallet (the challenge coin plus an
//! expected-O(1) number of leader coins) and deposits `M` fresh sealed
//! coins back into it. With `M ≫ seeds consumed`, each run *grows* the
//! reservoir — the property bootstrapping (Fig. 1) relies on.

use dprbg_field::Field;
use dprbg_sim::{PartyCtx, PartyId};

use crate::coin::CoinWallet;
use crate::coin_gen::{coin_gen, CoinGenConfig, CoinGenWire};
use crate::errors::CoinGenError;

/// Statistics of one D-PRBG expansion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DprbgRun {
    /// Coins produced (the configured batch size `M`).
    pub coins_produced: usize,
    /// Seed coins consumed (1 challenge + 1 per leader attempt).
    pub seeds_consumed: usize,
    /// Leader attempts the BA loop took.
    pub attempts: usize,
    /// The agreed dealer set backing the new coins.
    pub dealers: Vec<PartyId>,
}

impl DprbgRun {
    /// The net growth of the reservoir: produced − consumed.
    pub fn net_gain(&self) -> isize {
        self.coins_produced as isize - self.seeds_consumed as isize
    }
}

/// Run the D-PRBG once: expand the distributed seed in `wallet` by `M`
/// fresh sealed coins (appended to the wallet's back).
///
/// All honest parties call this in the same round with consistent
/// wallets.
///
/// # Errors
///
/// See [`crate::coin_gen::coin_gen`].
pub fn dprbg_expand<M: CoinGenWire<F>, F: Field>(
    ctx: &mut PartyCtx<M>,
    cfg: &CoinGenConfig,
    wallet: &mut CoinWallet<F>,
) -> Result<DprbgRun, CoinGenError> {
    let batch = coin_gen(ctx, cfg, wallet)?;
    let run = DprbgRun {
        coins_produced: batch.len(),
        seeds_consumed: batch.seeds_consumed,
        attempts: batch.attempts,
        dealers: batch.dealers.clone(),
    };
    wallet.extend(batch.shares);
    Ok(run)
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use crate::coin_gen::CoinGenMsg;
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_sim::{run_network, Behavior};

    type F = Gf2k<32>;
    type M = CoinGenMsg<F>;

    #[test]
    fn expansion_grows_the_wallet() {
        let n = 7;
        let t = 1;
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = CoinGenConfig { params, batch_size: 16 };
        let mut wallets = TrustedDealer::deal_wallets::<F>(params, 4, 3);
        let behaviors: Vec<Behavior<M, Result<(usize, usize, DprbgRun), CoinGenError>>> = (0..n)
            .map(|_| {
                let mut w = wallets.remove(0);
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    let before = w.len();
                    let run = dprbg_expand(ctx, &cfg, &mut w)?;
                    Ok::<_, CoinGenError>((before, w.len(), run))
                }) as Behavior<M, _>
            })
            .collect();
        for out in run_network(n, 4, behaviors).unwrap_all() {
            let (before, after, run) = out.unwrap();
            assert_eq!(before, 4);
            assert_eq!(run.coins_produced, 16);
            assert_eq!(after, before - run.seeds_consumed + 16);
            assert!(run.net_gain() > 0, "the generator must stretch the seed");
        }
    }

    #[test]
    fn expanded_coins_are_spendable_as_next_seed() {
        // Two back-to-back expansions: the second runs entirely on coins
        // produced by the first (the seed of run 2 was generated, not
        // dealt) — the essence of the D-PRBG.
        let n = 7;
        let t = 1;
        let params = Params::p2p_model(n, t).unwrap();
        let cfg = CoinGenConfig { params, batch_size: 8 };
        let mut wallets = TrustedDealer::deal_wallets::<F>(params, 2, 5);
        let behaviors: Vec<Behavior<M, Result<(DprbgRun, DprbgRun), CoinGenError>>> = (0..n)
            .map(|_| {
                let mut w = wallets.remove(0);
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    let run1 = dprbg_expand(ctx, &cfg, &mut w)?;
                    // Drop any leftover dealer-seeded coins so run 2 can
                    // only draw generated ones.
                    for _ in 0..(2usize.saturating_sub(run1.seeds_consumed)) {
                        let _ = w.pop();
                    }
                    let run2 = dprbg_expand(ctx, &cfg, &mut w)?;
                    Ok::<_, CoinGenError>((run1, run2))
                }) as Behavior<M, _>
            })
            .collect();
        for out in run_network(n, 6, behaviors).unwrap_all() {
            let (run1, run2) = out.unwrap();
            assert_eq!(run1.coins_produced, 8);
            assert_eq!(run2.coins_produced, 8);
        }
    }
}
