#![forbid(unsafe_code)]
#![deny(missing_docs)]

//! # `dprbg-core` — Distributed Pseudo-Random Bit Generators
//!
//! The primary contribution of Bellare, Garay and Rabin, *"Distributed
//! Pseudo-Random Bit Generators — A New Way to Speed-Up Shared Coin
//! Tossing"* (PODC 1996), implemented in full:
//!
//! | Paper artifact | Module |
//! |---|---|
//! | Protocol VSS (Fig. 2) | [`mod@vss`] |
//! | VSS dispute resolution (§3.1's "two rounds of broadcast") | [`vss_dispute`] |
//! | Protocol Batch-VSS (Fig. 3), incl. `Batch-VSS(l)` | [`mod@batch_vss`] |
//! | Protocol Bit-Gen (Fig. 4) | [`bit_gen`] |
//! | Protocol Coin-Gen (Fig. 5) | [`mod@coin_gen`] |
//! | Protocol Coin-Expose (Fig. 6) | [`coin`] |
//! | The D-PRBG abstraction (§1.1) | [`dprbg`] |
//! | Bootstrapping (Fig. 1, §1.2) | [`bootstrap`] |
//! | Proactive share refresh (§1.2's mobile-adversary setting) | [`refresh`] |
//! | Common-coin randomized BA (the §1.1 application) | [`app_ba`] |
//! | Committee-sampled Coin-Gen for large `n` | [`committee`] |
//! | Initial seed via trusted dealer / preprocessing (§1.2) | [`dealer`] |
//!
//! A **shared (sealed) coin** is a random field element `F(0)` of a
//! degree-≤t polynomial jointly held as Shamir shares: no coalition of ≤ t
//! parties can predict or bias it, and one round of share exchange plus a
//! Berlekamp–Welch decode reveals it unanimously. A **D-PRBG** stretches a
//! small *distributed seed* of such coins into `M` fresh ones at an
//! amortized cost far below generating each from scratch; **bootstrapping**
//! reserves a few output coins as the next run's seed so the source never
//! runs dry.
//!
//! # Quick start
//!
//! Every protocol is a [`dprbg_sim::RoundMachine`]: a sans-IO state
//! machine advanced one synchronous round at a time by an executor
//! ([`dprbg_sim::StepRunner`] single-threaded, [`dprbg_sim::ParRunner`]
//! work-stealing — bit-identical outputs).
//!
//! ```
//! use dprbg_core::{dealer::TrustedDealer, CoinGenConfig, CoinGenMachine, CoinGenMsg, Params};
//! use dprbg_field::Gf2k;
//! use dprbg_sim::{BoxedMachine, MachineExt, StepRunner};
//!
//! type F = Gf2k<32>;
//! type M = CoinGenMsg<F>;
//! let params = Params::p2p_model(7, 1).unwrap();
//! let cfg = CoinGenConfig { params, batch_size: 8 };
//! // One-time setup: a trusted dealer seeds each party's wallet (§1.2).
//! let wallets = TrustedDealer::deal_wallets::<F>(params, 4, 99);
//! // One machine per party, all driven in lock-step by the executor.
//! let fleet: Vec<BoxedMachine<M, usize>> = wallets
//!     .into_iter()
//!     .map(|w| {
//!         Box::new(
//!             CoinGenMachine::new(cfg, w)
//!                 .map(|(_, res)| res.expect("no faults injected").len()),
//!         ) as BoxedMachine<M, usize>
//!     })
//!     .collect();
//! for sealed in StepRunner::new(7, 7).run(fleet).unwrap_all() {
//!     assert_eq!(sealed, 8); // everyone sealed 8 fresh coins
//! }
//! ```

pub mod app_ba;
pub mod batch_vss;
pub mod bit_gen;
pub mod bootstrap;
pub mod coin;
pub mod coin_gen;
pub mod committee;
pub mod dealer;
pub mod degrade;
pub mod dprbg;
mod errors;
mod params;
pub mod refresh;
pub mod vss;
pub mod vss_dispute;

pub use app_ba::{common_coin_ba, CcbaOutcome, CcbaVote};
pub use batch_vss::{
    horner_combine, BatchOpts, BatchShares, BatchVssDealMachine, BatchVssMsg,
    BatchVssVerifyMachine,
};
pub use bit_gen::{BitGenMachine, BitGenMode, BitGenMsg, BitGenRun, DealerView};
pub use bootstrap::{Bootstrap, BootstrapConfig, BootstrapStats};
pub use coin::{decode_coin, CoinWallet, ExposeMachine, ExposeMsg, ExposeVia, SealedShare};
pub use coin_gen::{
    CliqueAnnounce, CoinBatch, CoinGenConfig, CoinGenMachine, CoinGenMsg, CoinGenWire,
};
pub use committee::{
    committee_soundness_error, committee_threshold, elect_committee, CoinReport, CommitteeCoin,
    CommitteeError, CommitteeMsg,
};
pub use dealer::{preprocessing_seed, TrustedDealer};
pub use degrade::{coin_gen_with_retry, RetryPolicy, RetryReport, MIN_SEEDS_PER_ATTEMPT};
pub use dprbg::{dprbg_expand, DprbgRun};
pub use errors::{CoinError, CoinGenError, ProtocolError};
pub use params::Params;
pub use refresh::{RefreshMachine, RefreshReport};
pub use vss::{
    vss_machine, DealtShares, VssDealMachine, VssMode, VssMsg, VssVerdict, VssVerifyMachine,
};
pub use vss_dispute::{
    vss_dispute_or_blame, DisputeOutcome, DisputeVssMsg, VssDisputeMachine,
};
