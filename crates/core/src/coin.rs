//! Sealed coins, wallets, and Protocol Coin-Expose (Fig. 6).
//!
//! A **sealed k-ary coin** is a uniformly random element of GF(2^k) held
//! jointly: each party `P_i` holds a Shamir share `σ_i = G(i)` of a
//! degree-≤t polynomial `G`, and the coin's value is `G(0)`. Until the
//! expose, no coalition of ≤ t parties learns anything about the value;
//! at expose, all honest parties reconstruct the *same* value (unanimity)
//! despite up to `t` corrupted shares, via the Berlekamp–Welch decoder:
//!
//! > "Using the Berlekamp-Welch decoder, interpolate a polynomial F(x)
//! > through the shares received in the previous step. Set
//! > coin_h = F(0)." (Fig. 6.)
//!
//! The paper's Fig. 6 computes `σ_i` as the sum of the party's h-th shares
//! from the chosen clique's dealers; in this crate that sum is performed at
//! the end of Coin-Gen, so a wallet uniformly stores one ready-to-send
//! share per coin regardless of whether the coin came from a trusted
//! dealer (§1.2) or from a Coin-Gen batch.

use std::collections::VecDeque;
use std::marker::PhantomData;

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::{bw_decode, Poly};
use dprbg_sim::{Embeds, RoundMachine, RoundView, Step};

use crate::errors::CoinError;

/// One party's share of one sealed coin.
///
/// `None` means this party cannot contribute to the expose (it did not
/// hold valid shares from every summed dealer); it still *learns* the coin
/// from the other parties' contributions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SealedShare<F: Field> {
    /// The share value `G(i)`, if this party can vouch for it.
    pub sigma: Option<F>,
}

impl<F: Field> SealedShare<F> {
    /// A contributing share.
    pub fn of(value: F) -> Self {
        SealedShare { sigma: Some(value) }
    }

    /// A non-contributing placeholder.
    pub fn absent() -> Self {
        SealedShare { sigma: None }
    }
}

/// The wire message of Coin-Expose: a bare share (size `k`, matching the
/// paper's "n messages, each of size k").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExposeMsg<F: Field>(pub F);

impl<F: Field> WireSize for ExposeMsg<F> {
    fn wire_bytes(&self) -> usize {
        self.0.wire_bytes()
    }
}

/// A party's FIFO reserve of sealed-coin shares (the bootstrap reservoir
/// of Fig. 1).
///
/// All honest parties' wallets stay in lock-step: they push the same
/// batches and pop in the same protocol steps, so "coin `h`" means the
/// same polynomial at every party.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CoinWallet<F: Field> {
    shares: VecDeque<SealedShare<F>>,
}

impl<F: Field> CoinWallet<F> {
    /// An empty wallet.
    pub fn new() -> Self {
        CoinWallet { shares: VecDeque::new() }
    }

    /// Number of sealed coins remaining.
    pub fn len(&self) -> usize {
        self.shares.len()
    }

    /// Whether no coins remain.
    pub fn is_empty(&self) -> bool {
        self.shares.is_empty()
    }

    /// Add a freshly sealed coin share (newest coins go to the back).
    pub fn push(&mut self, share: SealedShare<F>) {
        self.shares.push_back(share);
    }

    /// Consume the oldest sealed coin share.
    ///
    /// # Errors
    ///
    /// [`CoinError::WalletEmpty`] if no coin remains.
    pub fn pop(&mut self) -> Result<SealedShare<F>, CoinError> {
        self.shares.pop_front().ok_or(CoinError::WalletEmpty)
    }

    /// Consume the coin at position `index` (0 = oldest) — the paper's
    /// "random access to the bits" (§1.4): any sealed coin can be
    /// revealed out of order, as long as all honest parties pick the same
    /// index.
    ///
    /// # Errors
    ///
    /// [`CoinError::WalletEmpty`] if `index` is out of range.
    pub fn remove_at(&mut self, index: usize) -> Result<SealedShare<F>, CoinError> {
        self.shares.remove(index).ok_or(CoinError::WalletEmpty)
    }

    /// Inspect (without consuming) the share at `index`.
    pub fn peek_at(&self, index: usize) -> Option<&SealedShare<F>> {
        self.shares.get(index)
    }
}

impl<F: Field> Extend<SealedShare<F>> for CoinWallet<F> {
    fn extend<I: IntoIterator<Item = SealedShare<F>>>(&mut self, iter: I) {
        self.shares.extend(iter);
    }
}

impl<F: Field> FromIterator<SealedShare<F>> for CoinWallet<F> {
    fn from_iter<I: IntoIterator<Item = SealedShare<F>>>(iter: I) -> Self {
        CoinWallet { shares: iter.into_iter().collect() }
    }
}

/// How expose shares travel — the two models of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ExposeVia {
    /// §3 model: publish the share on the ideal broadcast channel — one
    /// message per contributor (Lemma 2 counts `n` messages of size `k`).
    Broadcast,
    /// §4 model: private channels only — each contributor sends its share
    /// to every player individually (`n²` messages, Theorem 2's counting).
    #[default]
    PointToPoint,
}

/// Protocol Coin-Expose (Fig. 6) as a sans-IO round machine: one
/// `Continue` (the share send — or nothing, for a non-contributor),
/// then `Done` with the Berlekamp–Welch-decoded coin.
///
/// Every honest party runs this machine in the same round with its share
/// of the same coin. One communication round: contributors send their
/// share to all players (over `via`); everyone Berlekamp–Welch-decodes
/// the received shares (tolerating up to `t` corrupted ones) and outputs
/// `F(0)`. The paper's per-player cost (discussion after Lemma 2): `n`
/// additions and a single interpolation.
///
/// The output is [`CoinError::NotEnoughShares`] /
/// [`CoinError::DecodeFailed`] when the adversary exceeds the model
/// (fewer than `t + 1` honest contributors, or shares beyond the
/// decoding radius).
///
/// Larger phases ([`BitGenMachine`](crate::BitGenMachine), Batch-VSS
/// verification, Coin-Gen's leader elections) embed this machine for
/// their expose sub-steps via [`RoundView::reborrow`].
pub struct ExposeMachine<M, F: Field> {
    share: SealedShare<F>,
    t: usize,
    via: ExposeVia,
    sent: bool,
    _wire: PhantomData<fn() -> M>,
}

impl<M, F: Field> ExposeMachine<M, F> {
    /// A machine exposing `share` with decoding threshold `t` over `via`.
    pub fn new(share: SealedShare<F>, t: usize, via: ExposeVia) -> Self {
        ExposeMachine { share, t, via, sent: false, _wire: PhantomData }
    }
}

impl<M, F> RoundMachine<M> for ExposeMachine<M, F>
where
    M: Clone + WireSize + Embeds<ExposeMsg<F>>,
    F: Field,
{
    type Output = Result<F, CoinError>;

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output> {
        if !self.sent {
            self.sent = true;
            let mut out = view.outbox();
            if let Some(sigma) = self.share.sigma {
                let msg = <M as Embeds<ExposeMsg<F>>>::wrap(ExposeMsg(sigma));
                match self.via {
                    ExposeVia::Broadcast => out.broadcast(msg),
                    ExposeVia::PointToPoint => out.send_to_all(msg),
                }
            }
            return Step::Continue(out);
        }
        let mut points: Vec<(F, F)> = Vec::new();
        for r in view.inbox.iter() {
            if let Some(ExposeMsg(y)) = <M as Embeds<ExposeMsg<F>>>::peek(&r.msg) {
                let x = F::element(r.from as u64);
                if points.iter().all(|(px, _)| *px != x) {
                    points.push((x, *y));
                }
            }
        }
        Step::Done(decode_coin(&points, self.t))
    }

    fn phase_name(&self) -> &'static str {
        if self.sent {
            "expose/decode"
        } else {
            "expose/send"
        }
    }
}

/// Decode a coin value from collected `(party point, share)` pairs.
///
/// Shared by [`ExposeMachine`], committee outsider acceptance, and tests;
/// applies the radius policy `e = min(t, ⌊(m − t − 1)/2⌋)` of the
/// Berlekamp–Welch decoder.
///
/// # Errors
///
/// See [`ExposeMachine`].
pub fn decode_coin<F: Field>(points: &[(F, F)], t: usize) -> Result<F, CoinError> {
    let poly: Poly<F> = bw_decode(points, t, t).map_err(|e| match e {
        dprbg_poly::BwError::TooFewPoints { got, need } => {
            CoinError::NotEnoughShares { got, need }
        }
        _ => CoinError::DecodeFailed,
    })?;
    Ok(poly.constant_term())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_poly::{share_points, share_polynomial};
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, MachineExt, StepRunner};

    type F = Gf2k<32>;
    type M = ExposeMsg<F>;

    /// Deal one coin to n parties; return (true value, per-party shares).
    fn deal_coin(n: usize, t: usize, seed: u64) -> (F, Vec<SealedShare<F>>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let value = F::random(&mut rng);
        let poly = share_polynomial(value, t, &mut rng);
        let shares = share_points(&poly, n)
            .into_iter()
            .map(|s| SealedShare::of(s.y))
            .collect();
        (value, shares)
    }

    /// An honest expose fleet over point-to-point channels.
    fn expose_fleet(
        shares: Vec<SealedShare<F>>,
        t: usize,
    ) -> Vec<BoxedMachine<M, Result<F, CoinError>>> {
        shares
            .into_iter()
            .map(|s| {
                Box::new(ExposeMachine::new(s, t, ExposeVia::PointToPoint)) as BoxedMachine<M, _>
            })
            .collect()
    }

    /// A corrupt party that sends `payloads` to everyone in round 0, then
    /// quits.
    fn spammer(payloads: Vec<F>) -> BoxedMachine<M, Option<F>> {
        Box::new(from_fn(move |view: dprbg_sim::RoundView<'_, M>| {
            if view.round == 0 {
                let mut out = view.outbox();
                for &p in &payloads {
                    out.send_to_all(ExposeMsg(p));
                }
                Step::Continue(out)
            } else {
                Step::Done(None)
            }
        }))
    }

    #[test]
    fn wallet_random_access() {
        let mut w: CoinWallet<F> = (0..5).map(|i| SealedShare::of(F::from_u64(i))).collect();
        // Random access (§1.4): pull coin 3 out of order.
        assert_eq!(w.remove_at(3).unwrap().sigma, Some(F::from_u64(3)));
        assert_eq!(w.len(), 4);
        assert_eq!(w.peek_at(0).unwrap().sigma, Some(F::from_u64(0)));
        // FIFO continues around the hole.
        assert_eq!(w.pop().unwrap().sigma, Some(F::from_u64(0)));
        assert_eq!(w.remove_at(2).unwrap().sigma, Some(F::from_u64(4)));
        assert_eq!(w.remove_at(9), Err(CoinError::WalletEmpty));
    }

    #[test]
    fn wallet_fifo_semantics() {
        let mut w = CoinWallet::<F>::new();
        assert!(w.is_empty());
        assert_eq!(w.pop(), Err(CoinError::WalletEmpty));
        w.push(SealedShare::of(F::from_u64(1)));
        w.push(SealedShare::absent());
        assert_eq!(w.len(), 2);
        assert_eq!(w.pop().unwrap().sigma, Some(F::from_u64(1)));
        assert_eq!(w.pop().unwrap().sigma, None);
        let w2: CoinWallet<F> = (0..3).map(|i| SealedShare::of(F::from_u64(i))).collect();
        assert_eq!(w2.len(), 3);
    }

    #[test]
    fn unanimous_expose_all_honest() {
        let n = 7;
        let t = 1;
        let (value, shares) = deal_coin(n, t, 1);
        let res = StepRunner::new(n, 2).run(expose_fleet(shares, t));
        for out in res.unwrap_all() {
            assert_eq!(out.unwrap(), value);
        }
    }

    #[test]
    fn unanimity_despite_byzantine_shares() {
        let n = 7;
        let t = 1;
        let plan = FaultPlan::first_t(n, t);
        let (value, shares) = deal_coin(n, t, 3);
        let fleet = plan.machines::<M, Option<F>>(
            |id| {
                let s = shares[id - 1];
                Box::new(
                    ExposeMachine::new(s, t, ExposeVia::PointToPoint)
                        .map(|r: Result<F, CoinError>| r.ok()),
                )
            },
            // Send a corrupted share.
            |_| spammer(vec![F::from_u64(0xBAD)]),
        );
        let res = StepRunner::new(n, 4).run(fleet);
        for id in plan.honest() {
            assert_eq!(res.outputs[id - 1], Some(Some(value)), "party {id}");
        }
    }

    #[test]
    fn absent_contributors_tolerated() {
        // n = 7, t = 1: two parties abstain; the rest still reconstruct.
        let n = 7;
        let t = 1;
        let (value, mut shares) = deal_coin(n, t, 5);
        shares[2] = SealedShare::absent();
        shares[6] = SealedShare::absent();
        let res = StepRunner::new(n, 6).run(expose_fleet(shares, t));
        for out in res.unwrap_all() {
            assert_eq!(out.unwrap(), value);
        }
    }

    #[test]
    fn too_few_shares_reported() {
        let n = 4;
        let t = 1;
        let (_, mut shares) = deal_coin(n, t, 7);
        // Only party 1 contributes: 1 point < t + 1.
        for s in shares.iter_mut().skip(1) {
            *s = SealedShare::absent();
        }
        let res = StepRunner::new(n, 8).run(expose_fleet(shares, t));
        for out in res.unwrap_all() {
            assert_eq!(out, Err(CoinError::NotEnoughShares { got: 1, need: 2 }));
        }
    }

    #[test]
    fn duplicate_sender_shares_ignored() {
        // A faulty party sending two different shares only gets its first
        // counted (deterministic inbox order), never a decode crash.
        let n = 7;
        let t = 1;
        let (value, shares) = deal_coin(n, t, 9);
        let plan = FaultPlan::explicit(n, vec![2]);
        let fleet = plan.machines::<M, Option<F>>(
            |id| {
                let s = shares[id - 1];
                Box::new(
                    ExposeMachine::new(s, t, ExposeVia::PointToPoint)
                        .map(|r: Result<F, CoinError>| r.ok()),
                )
            },
            |_| spammer(vec![F::from_u64(111), F::from_u64(222)]),
        );
        let res = StepRunner::new(n, 10).run(fleet);
        for id in plan.honest() {
            assert_eq!(res.outputs[id - 1], Some(Some(value)));
        }
    }

    #[test]
    fn decode_coin_radius_policy() {
        let n = 7;
        let t = 2;
        let (value, shares) = deal_coin(n, t, 11);
        let mut pts: Vec<(F, F)> = shares
            .iter()
            .enumerate()
            .map(|(i, s)| (F::element(i as u64 + 1), s.sigma.unwrap()))
            .collect();
        assert_eq!(decode_coin(&pts, t).unwrap(), value);
        // Corrupt exactly t shares: still decodes.
        pts[0].1 = F::from_u64(1);
        pts[1].1 = F::from_u64(2);
        assert_eq!(decode_coin(&pts, t).unwrap(), value);
    }
}
