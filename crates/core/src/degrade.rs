//! Graceful degradation: bounded retry with explicit seed-budget
//! accounting.
//!
//! The paper's protocols consume *sealed coins* as a resource: Coin-Gen
//! burns `1 + attempts` wallet coins per run (the challenge plus one per
//! leader election). When a run fails — seed exhaustion, a failed expose,
//! no agreement — the natural recovery is to retry, but naive retry loops
//! can silently drain the distributed seed that the whole system's
//! amortized cost story depends on (Theorem 2 charges `O(1)` seeds per
//! batch *in expectation*; an adversary that forces retries attacks
//! exactly that expectation).
//!
//! [`coin_gen_with_retry`] makes the trade-off explicit: the caller sets a
//! [`RetryPolicy`] with an attempt cap **and a seed budget**, every wallet
//! coin consumed (by successes and failures alike) is accounted against
//! the budget, and the loop refuses to start an attempt the budget cannot
//! cover — surfacing [`ProtocolError::SeedBudgetExceeded`] with exact
//! spending figures instead of an empty wallet. All honest parties make
//! identical retry decisions (failures are symmetric deterministic
//! functions of the same traffic), so the loop stays in lock-step without
//! extra coordination.

use dprbg_field::Field;
use dprbg_sim::{looping, LoopControl, MachineExt, RoundMachine};

use crate::coin::CoinWallet;
use crate::coin_gen::{CoinBatch, CoinGenConfig, CoinGenMachine, CoinGenWire};
use crate::errors::{CoinGenError, ProtocolError};

/// The cheapest possible Coin-Gen run: one challenge coin plus one
/// leader-election coin.
pub const MIN_SEEDS_PER_ATTEMPT: usize = 2;

/// Bounds on a retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum protocol runs (≥ 1; the first run counts as an attempt).
    pub max_attempts: usize,
    /// Total wallet coins the loop may consume across all attempts.
    pub seed_budget: usize,
}

impl RetryPolicy {
    /// A single attempt with `budget` seeds — retry disabled.
    pub fn single(budget: usize) -> Self {
        RetryPolicy { max_attempts: 1, seed_budget: budget }
    }
}

/// What a (successful) retry loop actually cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryReport {
    /// Protocol runs made, including the successful one.
    pub attempts: usize,
    /// Wallet coins consumed across all runs (failures included).
    pub seeds_spent: usize,
}

/// Loop state threaded between Coin-Gen attempts.
struct RetrySt<F: Field> {
    wallet: CoinWallet<F>,
    attempts: usize,
    seeds_spent: usize,
    /// Wallet length when the attempt in flight started.
    before: usize,
    /// The attempt's result, once it lands.
    outcome: Option<Result<CoinBatch<F>, CoinGenError>>,
}

/// A machine running Coin-Gen under `policy`, retrying failed runs while
/// the attempt cap and seed budget allow.
///
/// Every attempt's wallet consumption is measured as the wallet-length
/// delta, so the accounting covers failed runs (which still burn the
/// challenge and any leader coins popped before the failure). The
/// seed-budget bound is asserted on success: a batch is never returned
/// with more than `policy.seed_budget` coins spent.
///
/// The result half of the output carries
/// [`ProtocolError::SeedBudgetExceeded`] when the budget cannot cover the
/// next attempt (including a budget below [`MIN_SEEDS_PER_ATTEMPT`] up
/// front); otherwise the final attempt's error, converted into the
/// unified taxonomy.
///
/// # Panics
///
/// If `policy.max_attempts` is zero.
#[allow(clippy::type_complexity)]
pub fn coin_gen_with_retry<M: CoinGenWire<F>, F: Field>(
    cfg: CoinGenConfig,
    wallet: CoinWallet<F>,
    policy: RetryPolicy,
) -> impl RoundMachine<
    M,
    Output = (CoinWallet<F>, Result<(CoinBatch<F>, RetryReport), ProtocolError>),
> {
    assert!(policy.max_attempts >= 1, "retry policy must allow one attempt");
    let init = RetrySt { wallet, attempts: 0, seeds_spent: 0, before: 0, outcome: None };
    looping(init, move |mut st: RetrySt<F>| {
        if let Some(res) = st.outcome.take() {
            st.seeds_spent += st.before - st.wallet.len();
            st.attempts += 1;
            match res {
                Ok(batch) => {
                    debug_assert_eq!(
                        batch.seeds_consumed,
                        st.before - st.wallet.len(),
                        "wallet delta must match the batch's own accounting"
                    );
                    assert!(
                        st.seeds_spent <= policy.seed_budget + batch.seeds_consumed,
                        "seed spending {} violates budget {} by more than the final \
                         attempt's own cost",
                        st.seeds_spent,
                        policy.seed_budget
                    );
                    let report =
                        RetryReport { attempts: st.attempts, seeds_spent: st.seeds_spent };
                    return LoopControl::Break((st.wallet, Ok((batch, report))));
                }
                Err(e) => {
                    if st.attempts >= policy.max_attempts
                        || st.wallet.len() < MIN_SEEDS_PER_ATTEMPT
                    {
                        return LoopControl::Break((st.wallet, Err(e.into())));
                    }
                    // Otherwise fall through: the budget check below
                    // decides whether another run may start.
                }
            }
        }
        if st.seeds_spent + MIN_SEEDS_PER_ATTEMPT > policy.seed_budget {
            return LoopControl::Break((
                st.wallet,
                Err(ProtocolError::SeedBudgetExceeded {
                    spent: st.seeds_spent,
                    budget: policy.seed_budget,
                }),
            ));
        }
        let RetrySt { wallet, attempts, seeds_spent, .. } = st;
        let before = wallet.len();
        LoopControl::Continue(Box::new(CoinGenMachine::new(cfg, wallet).map(
            move |(w, res)| RetrySt {
                wallet: w,
                attempts,
                seeds_spent,
                before,
                outcome: Some(res),
            },
        )))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin_gen::CoinGenMsg;
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_sim::{from_fn, BoxedMachine, FaultPlan, RoundView, Step, StepRunner};

    type F = Gf2k<32>;
    type M = CoinGenMsg<F>;

    fn wallets(n: usize, t: usize, count: usize, seed: u64) -> Vec<CoinWallet<F>> {
        let params = Params::p2p_model(n, t).unwrap();
        TrustedDealer::deal_wallets::<F>(params, count, seed)
    }

    #[test]
    fn first_try_success_accounts_exactly() {
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        let policy = RetryPolicy { max_attempts: 3, seed_budget: 8 };
        type Out = Result<(CoinBatch<F>, RetryReport), ProtocolError>;
        let machines: Vec<BoxedMachine<M, Out>> = wallets(n, t, 8, 100)
            .into_iter()
            .map(|w| {
                Box::new(coin_gen_with_retry::<M, F>(cfg, w, policy).map(|(_, res)| res))
                    as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 101).run(machines).unwrap_all() {
            let (batch, report) = out.unwrap();
            assert_eq!(report.attempts, 1);
            assert_eq!(report.seeds_spent, batch.seeds_consumed);
            assert!(report.seeds_spent <= 8);
        }
    }

    #[test]
    fn unaffordable_budget_rejected_up_front() {
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        // A budget of 1 cannot cover even the cheapest run.
        let policy = RetryPolicy::single(1);
        type Out = Result<(CoinBatch<F>, RetryReport), ProtocolError>;
        let machines: Vec<BoxedMachine<M, Out>> = wallets(n, t, 8, 110)
            .into_iter()
            .map(|w| {
                Box::new(coin_gen_with_retry::<M, F>(cfg, w, policy).map(|(_, res)| res))
                    as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 111).run(machines).unwrap_all() {
            assert_eq!(
                out.unwrap_err(),
                ProtocolError::SeedBudgetExceeded { spent: 0, budget: 1 }
            );
        }
    }

    #[test]
    fn budget_of_exactly_min_seeds_per_attempt_succeeds() {
        // The boundary case: a budget of exactly MIN_SEEDS_PER_ATTEMPT
        // (challenge + one leader election) must be allowed to start —
        // and a healthy first try spends precisely that.
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        let policy = RetryPolicy { max_attempts: 2, seed_budget: MIN_SEEDS_PER_ATTEMPT };
        type Out = Result<(CoinBatch<F>, RetryReport), ProtocolError>;
        let machines: Vec<BoxedMachine<M, Out>> = wallets(n, t, 4, 130)
            .into_iter()
            .map(|w| {
                Box::new(coin_gen_with_retry::<M, F>(cfg, w, policy).map(|(_, res)| res))
                    as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 131).run(machines).unwrap_all() {
            let (batch, report) = out.unwrap();
            assert_eq!(report.attempts, 1);
            assert_eq!(report.seeds_spent, MIN_SEEDS_PER_ATTEMPT);
            assert_eq!(batch.seeds_consumed, MIN_SEEDS_PER_ATTEMPT);
        }
    }

    #[test]
    fn budget_exhausted_mid_attempt_reports_overshoot() {
        // Consumption is accounted when an attempt lands, so a failing
        // attempt can overshoot the budget mid-flight (each failed leader
        // election inside the run burns another wallet coin). The loop
        // must then refuse the next attempt and report the *actual*
        // spend — spent > budget, not a clamped figure — identically at
        // every surviving party.
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        // Deep wallet: the crashed run fails with NoAgreement after its
        // internal leader-attempt cap, leaving seeds in the wallet but a
        // spend far past the budget.
        let ws = wallets(n, t, 36, 140);
        let plan = FaultPlan::explicit(n, vec![5, 6, 7]);
        let policy = RetryPolicy { max_attempts: 4, seed_budget: 8 };
        let machines = plan.machines::<M, Option<Result<RetryReport, ProtocolError>>>(
            |id| {
                let w = ws[id - 1].clone();
                Box::new(
                    coin_gen_with_retry::<M, F>(cfg, w, policy)
                        .map(|(_, res)| Some(res.map(|(_, report)| report))),
                )
            },
            |_| Box::new(from_fn(|_view: RoundView<'_, M>| Step::Done(None))),
        );
        let res = StepRunner::new(n, 141).run(machines);
        let mut errors = Vec::new();
        for id in plan.honest() {
            let out = res.outputs[id - 1].clone().unwrap().unwrap();
            errors.push(out.unwrap_err());
        }
        assert!(errors.windows(2).all(|w| w[0] == w[1]), "parties disagree: {errors:?}");
        match &errors[0] {
            ProtocolError::SeedBudgetExceeded { spent, budget } => {
                assert_eq!(*budget, 8);
                assert!(
                    *spent > *budget,
                    "a mid-attempt exhaustion must report the overshoot (spent {spent})"
                );
                // Exact figure: the one failed attempt burned 9 seeds
                // (challenge + its leader elections) — one past the
                // budget, reported as-is rather than clamped.
                assert_eq!(*spent, 9);
            }
            other => panic!("expected SeedBudgetExceeded, got {other:?}"),
        }
    }

    #[test]
    fn retry_single_surfaces_exact_spend_figures() {
        // RetryPolicy::single disables retry but keeps the budget
        // discipline: an unaffordable budget surfaces SeedBudgetExceeded
        // with exact figures (nothing spent, the budget as configured),
        // and an affordable one succeeds in exactly one attempt.
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        type Out = Result<(CoinBatch<F>, RetryReport), ProtocolError>;
        for budget in 0..MIN_SEEDS_PER_ATTEMPT {
            let policy = RetryPolicy::single(budget);
            let machines: Vec<BoxedMachine<M, Out>> = wallets(n, t, 4, 150)
                .into_iter()
                .map(|w| {
                    Box::new(coin_gen_with_retry::<M, F>(cfg, w, policy).map(|(_, res)| res))
                        as BoxedMachine<M, _>
                })
                .collect();
            for out in StepRunner::new(n, 151).run(machines).unwrap_all() {
                assert_eq!(
                    out.unwrap_err(),
                    ProtocolError::SeedBudgetExceeded { spent: 0, budget },
                    "budget {budget} must be rejected before any seed is popped"
                );
            }
        }
        let machines: Vec<BoxedMachine<M, Out>> = wallets(n, t, 4, 150)
            .into_iter()
            .map(|w| {
                Box::new(
                    coin_gen_with_retry::<M, F>(cfg, w, RetryPolicy::single(2))
                        .map(|(_, res)| res),
                ) as BoxedMachine<M, _>
            })
            .collect();
        for out in StepRunner::new(n, 151).run(machines).unwrap_all() {
            let (_, report) = out.unwrap();
            assert_eq!((report.attempts, report.seeds_spent), (1, 2));
        }
    }

    #[test]
    fn over_threshold_crashes_exhaust_budget_gracefully() {
        // 3 of 7 parties crash with t = 1 (f > t): no n − 2t clique can
        // form, so every leader attempt fails and burns a seed. The retry
        // loop must stop with an explicit budget/exhaustion error rather
        // than loop forever — and all surviving parties must agree on it.
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        let ws = wallets(n, t, 5, 120);
        let plan = FaultPlan::explicit(n, vec![5, 6, 7]);
        let machines = plan.machines::<M, Option<Result<RetryReport, ProtocolError>>>(
            |id| {
                let w = ws[id - 1].clone();
                let policy = RetryPolicy { max_attempts: 4, seed_budget: 4 };
                Box::new(
                    coin_gen_with_retry::<M, F>(cfg, w, policy)
                        .map(|(_, res)| Some(res.map(|(_, report)| report))),
                )
            },
            |_| Box::new(from_fn(|_view: RoundView<'_, M>| Step::Done(None))),
        );
        let res = StepRunner::new(n, 121).run(machines);
        let mut errors = Vec::new();
        for id in plan.honest() {
            let out = res.outputs[id - 1].clone().unwrap().unwrap();
            errors.push(out.unwrap_err());
        }
        // Unanimous graceful failure.
        assert!(errors.windows(2).all(|w| w[0] == w[1]), "parties disagree: {errors:?}");
        match &errors[0] {
            ProtocolError::SeedBudgetExceeded { spent, budget } => {
                assert!(*spent >= *budget + 1 - MIN_SEEDS_PER_ATTEMPT);
            }
            ProtocolError::SeedExhausted | ProtocolError::NoAgreement { .. } => {}
            other => panic!("unexpected terminal error {other:?}"),
        }
    }
}
