//! Graceful degradation: bounded retry with explicit seed-budget
//! accounting.
//!
//! The paper's protocols consume *sealed coins* as a resource: Coin-Gen
//! burns `1 + attempts` wallet coins per run (the challenge plus one per
//! leader election). When a run fails — seed exhaustion, a failed expose,
//! no agreement — the natural recovery is to retry, but naive retry loops
//! can silently drain the distributed seed that the whole system's
//! amortized cost story depends on (Theorem 2 charges `O(1)` seeds per
//! batch *in expectation*; an adversary that forces retries attacks
//! exactly that expectation).
//!
//! [`coin_gen_with_retry`] makes the trade-off explicit: the caller sets a
//! [`RetryPolicy`] with an attempt cap **and a seed budget**, every wallet
//! coin consumed (by successes and failures alike) is accounted against
//! the budget, and the loop refuses to start an attempt the budget cannot
//! cover — surfacing [`ProtocolError::SeedBudgetExceeded`] with exact
//! spending figures instead of an empty wallet. All honest parties make
//! identical retry decisions (failures are symmetric deterministic
//! functions of the same traffic), so the loop stays in lock-step without
//! extra coordination.

use dprbg_field::Field;
use dprbg_sim::PartyCtx;

use crate::coin::CoinWallet;
use crate::coin_gen::{coin_gen, CoinBatch, CoinGenConfig, CoinGenWire};
use crate::errors::ProtocolError;

/// The cheapest possible Coin-Gen run: one challenge coin plus one
/// leader-election coin.
pub const MIN_SEEDS_PER_ATTEMPT: usize = 2;

/// Bounds on a retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum protocol runs (≥ 1; the first run counts as an attempt).
    pub max_attempts: usize,
    /// Total wallet coins the loop may consume across all attempts.
    pub seed_budget: usize,
}

impl RetryPolicy {
    /// A single attempt with `budget` seeds — retry disabled.
    pub fn single(budget: usize) -> Self {
        RetryPolicy { max_attempts: 1, seed_budget: budget }
    }
}

/// What a (successful) retry loop actually cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryReport {
    /// Protocol runs made, including the successful one.
    pub attempts: usize,
    /// Wallet coins consumed across all runs (failures included).
    pub seeds_spent: usize,
}

/// Run Coin-Gen under `policy`, retrying failed runs while the attempt
/// cap and seed budget allow.
///
/// Every attempt's wallet consumption is measured as the wallet-length
/// delta, so the accounting covers failed runs (which still burn the
/// challenge and any leader coins popped before the failure). The
/// seed-budget bound is asserted on success: a batch is never returned
/// with more than `policy.seed_budget` coins spent.
///
/// # Errors
///
/// [`ProtocolError::SeedBudgetExceeded`] when the budget cannot cover the
/// next attempt (including a budget below [`MIN_SEEDS_PER_ATTEMPT`] up
/// front); otherwise the final attempt's error, converted into the
/// unified taxonomy.
///
/// # Panics
///
/// If `policy.max_attempts` is zero.
pub fn coin_gen_with_retry<M: CoinGenWire<F>, F: Field>(
    ctx: &mut PartyCtx<M>,
    cfg: &CoinGenConfig,
    wallet: &mut CoinWallet<F>,
    policy: RetryPolicy,
) -> Result<(CoinBatch<F>, RetryReport), ProtocolError> {
    assert!(policy.max_attempts >= 1, "retry policy must allow one attempt");
    let mut attempts = 0;
    let mut seeds_spent = 0;
    loop {
        if seeds_spent + MIN_SEEDS_PER_ATTEMPT > policy.seed_budget {
            return Err(ProtocolError::SeedBudgetExceeded {
                spent: seeds_spent,
                budget: policy.seed_budget,
            });
        }
        let before = wallet.len();
        let res = coin_gen(ctx, cfg, wallet);
        seeds_spent += before - wallet.len();
        attempts += 1;
        match res {
            Ok(batch) => {
                debug_assert_eq!(
                    batch.seeds_consumed,
                    before - wallet.len(),
                    "wallet delta must match the batch's own accounting"
                );
                assert!(
                    seeds_spent <= policy.seed_budget + batch.seeds_consumed,
                    "seed spending {seeds_spent} violates budget {} by more than the \
                     final attempt's own cost",
                    policy.seed_budget
                );
                return Ok((batch, RetryReport { attempts, seeds_spent }));
            }
            Err(e) => {
                if attempts >= policy.max_attempts || wallet.len() < MIN_SEEDS_PER_ATTEMPT {
                    return Err(e.into());
                }
                // Otherwise loop: the budget check at the top decides
                // whether another run may start.
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coin_gen::CoinGenMsg;
    use crate::dealer::TrustedDealer;
    use crate::params::Params;
    use dprbg_field::Gf2k;
    use dprbg_sim::{run_network, Behavior, FaultPlan};

    type F = Gf2k<32>;
    type M = CoinGenMsg<F>;

    fn wallets(n: usize, t: usize, count: usize, seed: u64) -> Vec<CoinWallet<F>> {
        let params = Params::p2p_model(n, t).unwrap();
        TrustedDealer::deal_wallets::<F>(params, count, seed)
    }

    #[test]
    fn first_try_success_accounts_exactly() {
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        let mut ws = wallets(n, t, 8, 100);
        type Out = Result<(CoinBatch<F>, RetryReport), ProtocolError>;
        let behaviors: Vec<Behavior<M, Out>> = (1..=n)
            .map(|_| {
                let mut wallet = ws.remove(0);
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    let policy = RetryPolicy { max_attempts: 3, seed_budget: 8 };
                    coin_gen_with_retry(ctx, &cfg, &mut wallet, policy)
                }) as Behavior<M, _>
            })
            .collect();
        for out in run_network(n, 101, behaviors).unwrap_all() {
            let (batch, report) = out.unwrap();
            assert_eq!(report.attempts, 1);
            assert_eq!(report.seeds_spent, batch.seeds_consumed);
            assert!(report.seeds_spent <= 8);
        }
    }

    #[test]
    fn unaffordable_budget_rejected_up_front() {
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        let mut ws = wallets(n, t, 8, 110);
        type Out = Result<(CoinBatch<F>, RetryReport), ProtocolError>;
        let behaviors: Vec<Behavior<M, Out>> = (1..=n)
            .map(|_| {
                let mut wallet = ws.remove(0);
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    // A budget of 1 cannot cover even the cheapest run.
                    let policy = RetryPolicy::single(1);
                    coin_gen_with_retry(ctx, &cfg, &mut wallet, policy)
                }) as Behavior<M, _>
            })
            .collect();
        for out in run_network(n, 111, behaviors).unwrap_all() {
            assert_eq!(
                out.unwrap_err(),
                ProtocolError::SeedBudgetExceeded { spent: 0, budget: 1 }
            );
        }
    }

    #[test]
    fn over_threshold_crashes_exhaust_budget_gracefully() {
        // 3 of 7 parties crash with t = 1 (f > t): no n − 2t clique can
        // form, so every leader attempt fails and burns a seed. The retry
        // loop must stop with an explicit budget/exhaustion error rather
        // than loop forever — and all surviving parties must agree on it.
        let n = 7;
        let t = 1;
        let cfg = CoinGenConfig { params: Params::p2p_model(n, t).unwrap(), batch_size: 4 };
        let ws = wallets(n, t, 5, 120);
        let plan = FaultPlan::explicit(n, vec![5, 6, 7]);
        let behaviors = plan.behaviors::<M, Option<Result<RetryReport, ProtocolError>>>(
            |id| {
                let mut wallet = ws[id - 1].clone();
                Box::new(move |ctx| {
                    let policy = RetryPolicy { max_attempts: 4, seed_budget: 4 };
                    Some(
                        coin_gen_with_retry(ctx, &cfg, &mut wallet, policy)
                            .map(|(_, report)| report),
                    )
                })
            },
            |_| Box::new(|_ctx| None),
        );
        let res = run_network(n, 121, behaviors);
        let mut errors = Vec::new();
        for id in plan.honest() {
            let out = res.outputs[id - 1].clone().unwrap().unwrap();
            errors.push(out.unwrap_err());
        }
        // Unanimous graceful failure.
        assert!(errors.windows(2).all(|w| w[0] == w[1]), "parties disagree: {errors:?}");
        match &errors[0] {
            ProtocolError::SeedBudgetExceeded { spent, budget } => {
                assert!(*spent >= *budget + 1 - MIN_SEEDS_PER_ATTEMPT);
            }
            ProtocolError::SeedExhausted | ProtocolError::NoAgreement { .. } => {}
            other => panic!("unexpected terminal error {other:?}"),
        }
    }
}
