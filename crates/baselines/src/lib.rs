#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! Baseline protocols the paper compares against (§1.4 and §3.1).
//!
//! Every comparator in the paper's "History and comparisons" section is
//! implemented so the benchmark harness can regenerate the comparison in
//! measured numbers rather than citations:
//!
//! - [`ccd`] — the **cut-and-choose VSS** of Chaum, Crépeau and Damgård
//!   \[9\]: "the dealer … is asked to share k additional polynomials … the
//!   players decide whether to reconstruct g_j(x) or f(x) + g_j(x) …
//!   Thus, in this approach k polynomial interpolations are computed in
//!   order to achieve a probability of error less than ½^k" (vs. **one**
//!   interpolation for the paper's VSS).
//! - [`feldman`] — **Feldman's VSS** \[12\]: discrete-log commitments,
//!   non-interactive verification costing `t` exponentiations
//!   (≈ `t·log p` multiplications) per player.
//! - [`from_scratch`] — the **from-scratch shared coin**: every
//!   contributor runs a full (cut-and-choose) VSS of a random secret and
//!   the coin is the sum — "a straightforward way to generate a coin
//!   would be to interpolate a number of polynomials which at least
//!   equals the number of the faults to be tolerated. Coins generated
//!   this way, however, would still be highly expensive" (§4).
//! - [`rabin_dealer`] — **Rabin's trusted dealer** \[17\]: pre-generated
//!   expendable coins, "the approach of \[17\] requires the dealer to
//!   continuously provide them" (§1.2).

pub mod ccd;
pub mod feldman;
pub mod from_scratch;
pub mod rabin_dealer;

pub use ccd::{CcdMachine, CcdMsg, CcdOpts};
pub use feldman::{FeldmanMachine, FeldmanMsg, FeldmanVerdict};
pub use from_scratch::{from_scratch_coin, FromScratchMsg};
pub use rabin_dealer::RabinDealer;
