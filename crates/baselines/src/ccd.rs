//! Cut-and-choose VSS (Chaum–Crépeau–Damgård \[9\]) — the paper's main VSS
//! comparator.
//!
//! "The dealer who shared the secret is asked to share k additional
//! polynomials, g_1(x), …, g_k(x). For each j, 1 ≤ j ≤ k, the players
//! decide whether to reconstruct g_j(x) or f(x) + g_j(x), and check if the
//! reconstructed polynomial is of degree ≤ t. Thus, in this approach k
//! polynomial interpolations are computed in order to achieve a
//! probability of error less than ½^k." (§3.1.)
//!
//! Model note: the per-round challenge bits are public common randomness.
//! Their production is *not charged* to this baseline (the harness derives
//! them from a seed) — a deliberately generous accounting that still
//! leaves the baseline `k` interpolations behind the paper's single one.

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::{interpolate, Poly};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::{RngExt, SeedableRng};
use dprbg_sim::{Embeds, PartyId, RoundMachine, RoundView, Step};

pub use dprbg_core::{VssMode, VssVerdict};

/// Wire messages of the cut-and-choose VSS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcdMsg<F: Field> {
    /// Dealing: the secret share `f(i)` plus the `k` masking shares
    /// `g_1(i) … g_k(i)`.
    Deal {
        /// `f(i)`.
        alpha: F,
        /// `g_j(i)` for `j = 1..=k`.
        gammas: Vec<F>,
    },
    /// Reveal round: for each challenge `j`, either `g_j(i)` or
    /// `f(i) + g_j(i)` per the public challenge bit.
    Reveal(Vec<F>),
}

impl<F: Field> WireSize for CcdMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            CcdMsg::Deal { alpha, gammas } => alpha.wire_bytes() + gammas.wire_bytes(),
            CcdMsg::Reveal(vals) => vals.wire_bytes(),
        }
    }
}

/// Options of the cut-and-choose run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcdOpts {
    /// Number of cut-and-choose rounds `k` (soundness error `2^-k`).
    pub rounds: usize,
    /// Seed of the public challenge bits (identical at every party —
    /// models the common random string).
    pub challenge_seed: u64,
}

/// How this party deals (or doesn't).
enum CcdDeal<F> {
    /// Share this secret (the party must carry the dealer id).
    Secret(F),
    /// Share a secret drawn fresh from the party RNG at deal time.
    Random,
    /// Pure verifier (also used by adversarial wrappers dealing manually).
    No,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CcdStage {
    /// Round 0: the dealer distributes `f` and the `k` maskings.
    Deal,
    /// Round 1: everyone broadcasts the challenged reveals.
    Reveal,
    /// Round 2: `k` interpolations decide the verdict.
    Decide,
}

/// One cut-and-choose VSS as a sans-IO round machine: `dealer` shares a
/// secret among all parties; everyone outputs `(verdict, my share)`.
///
/// 3 communication rounds (deal, reveal broadcasts, decide) and
/// `opts.rounds` polynomial interpolations per player — the cost the
/// paper's Batch-VSS amortizes away.
pub struct CcdMachine<M, F: Field> {
    dealer: PartyId,
    deal: CcdDeal<F>,
    t: usize,
    opts: CcdOpts,
    /// My secret share, fixed once the deal arrives.
    alpha: F,
    stage: CcdStage,
    _wire: std::marker::PhantomData<fn() -> M>,
}

impl<M, F: Field> CcdMachine<M, F> {
    /// A machine for one VSS of `secret_if_dealer` from `dealer`.
    ///
    /// `None` as the secret means this party does not act as dealer even
    /// if it carries the dealer id — used by adversarial wrappers that
    /// deal manually.
    pub fn new(dealer: PartyId, secret_if_dealer: Option<F>, t: usize, opts: CcdOpts) -> Self {
        let deal = match secret_if_dealer {
            Some(s) => CcdDeal::Secret(s),
            None => CcdDeal::No,
        };
        CcdMachine {
            dealer,
            deal,
            t,
            opts,
            alpha: F::zero(),
            stage: CcdStage::Deal,
            _wire: std::marker::PhantomData,
        }
    }

    /// Like [`CcdMachine::new`], but the dealer's secret is drawn from the
    /// party RNG at deal time — how the from-scratch coin's contributors
    /// share fresh randomness.
    pub fn random_dealer(dealer: PartyId, t: usize, opts: CcdOpts) -> Self {
        let mut m = Self::new(dealer, None, t, opts);
        m.deal = CcdDeal::Random;
        m
    }
}

impl<M, F> RoundMachine<M> for CcdMachine<M, F>
where
    M: Clone + WireSize + Embeds<CcdMsg<F>>,
    F: Field,
{
    type Output = (VssVerdict, F);

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output> {
        let n = view.n;
        let k = self.opts.rounds;
        match self.stage {
            CcdStage::Deal => {
                let mut out = view.outbox();
                let secret = match std::mem::replace(&mut self.deal, CcdDeal::No) {
                    CcdDeal::Secret(s) => Some(s),
                    CcdDeal::Random => Some(F::random(view.rng)),
                    CcdDeal::No => None,
                };
                if let (true, Some(secret)) = (view.id == self.dealer, secret) {
                    let f = Poly::random_with_constant(secret, self.t, view.rng);
                    let gs: Vec<Poly<F>> =
                        (0..k).map(|_| Poly::random(self.t, view.rng)).collect();
                    for i in 1..=n {
                        let x = F::element(i as u64);
                        out.send(
                            i,
                            <M as Embeds<CcdMsg<F>>>::wrap(CcdMsg::Deal {
                                alpha: f.eval(x),
                                gammas: gs.iter().map(|g| g.eval(x)).collect(),
                            }),
                        );
                    }
                }
                self.stage = CcdStage::Reveal;
                Step::Continue(out)
            }
            CcdStage::Reveal => {
                let dealt = view
                    .inbox
                    .first_from(self.dealer)
                    .and_then(|r| <M as Embeds<CcdMsg<F>>>::peek(&r.msg))
                    .and_then(|m| match m {
                        CcdMsg::Deal { alpha, gammas } if gammas.len() == k => {
                            Some((*alpha, gammas.clone()))
                        }
                        _ => None,
                    });
                let was_dealt = dealt.is_some();
                let (alpha, gammas) = dealt.unwrap_or_else(|| (F::zero(), vec![F::zero(); k]));
                self.alpha = alpha;

                // Public challenge bits (common randomness, uncharged).
                let mut crng = StdRng::seed_from_u64(self.opts.challenge_seed);
                let challenges: Vec<bool> = (0..k).map(|_| crng.random()).collect();

                // Broadcast the chosen reveals. A player the dealer skipped
                // broadcasts random values so a silent/partial dealer cannot
                // pass as an implicit all-zero sharing.
                let reveals: Vec<F> = if was_dealt {
                    challenges
                        .iter()
                        .zip(&gammas)
                        .map(|(&c, &g)| if c { alpha + g } else { g })
                        .collect()
                } else {
                    (0..k).map(|_| F::random(view.rng)).collect()
                };
                let mut out = view.outbox();
                out.broadcast(<M as Embeds<CcdMsg<F>>>::wrap(CcdMsg::Reveal(reveals)));
                self.stage = CcdStage::Decide;
                Step::Continue(out)
            }
            CcdStage::Decide => {
                let mut per_party: Vec<Option<Vec<F>>> = vec![None; n];
                for rcv in view.inbox.broadcasts() {
                    if let Some(CcdMsg::Reveal(vals)) = <M as Embeds<CcdMsg<F>>>::peek(&rcv.msg)
                    {
                        if vals.len() == k && per_party[rcv.from - 1].is_none() {
                            per_party[rcv.from - 1] = Some(vals.clone());
                        }
                    }
                }

                // k interpolations: each revealed polynomial must have
                // degree ≤ t.
                for j in 0..k {
                    let points: Vec<(F, F)> = per_party
                        .iter()
                        .enumerate()
                        .filter_map(|(i, vals)| {
                            vals.as_ref().map(|v| (F::element(i as u64 + 1), v[j]))
                        })
                        .collect();
                    if points.len() < n {
                        return Step::Done((VssVerdict::Reject, self.alpha));
                    }
                    match interpolate(&points) {
                        Ok(p) if p.degree().is_none_or(|d| d <= self.t) => {}
                        _ => return Step::Done((VssVerdict::Reject, self.alpha)),
                    }
                }
                Step::Done((VssVerdict::Accept, self.alpha))
            }
        }
    }

    fn phase_name(&self) -> &'static str {
        match self.stage {
            CcdStage::Deal => "ccd/deal",
            CcdStage::Reveal => "ccd/reveal",
            CcdStage::Decide => "ccd/decide",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_sim::{from_fn, BoxedMachine, StepRunner};

    type F = Gf2k<32>;
    type M = CcdMsg<F>;

    fn run(
        n: usize,
        t: usize,
        k: usize,
        seed: u64,
        bad_degree: Option<usize>,
    ) -> Vec<(VssVerdict, F)> {
        let machines: Vec<BoxedMachine<M, (VssVerdict, F)>> = (1..=n)
            .map(|id| {
                let opts = CcdOpts { rounds: k, challenge_seed: seed ^ 0xABCD };
                if id == 1 {
                    if let Some(bad) = bad_degree {
                        return cheating_dealer(n, t, bad, opts, seed);
                    }
                }
                let secret = (id == 1).then(|| F::from_u64(0x5EC2E7));
                Box::new(CcdMachine::new(1, secret, t, opts)) as BoxedMachine<M, _>
            })
            .collect();
        StepRunner::new(n, seed).run(machines).unwrap_all()
    }

    /// A dealer that shares a too-high-degree f but honest maskings and
    /// honest reveals of its own shares.
    fn cheating_dealer(
        n: usize,
        t: usize,
        bad_degree: usize,
        opts: CcdOpts,
        seed: u64,
    ) -> BoxedMachine<M, (VssVerdict, F)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC4EA7);
        let f = Poly::<F>::random(bad_degree, &mut rng);
        let gs: Vec<Poly<F>> = (0..opts.rounds).map(|_| Poly::random(t, &mut rng)).collect();
        Box::new(from_fn(move |view: RoundView<'_, M>| match view.round {
            0 => {
                let mut out = view.outbox();
                for i in 1..=n {
                    let x = F::element(i as u64);
                    out.send(
                        i,
                        CcdMsg::Deal {
                            alpha: f.eval(x),
                            gammas: gs.iter().map(|g| g.eval(x)).collect(),
                        },
                    );
                }
                Step::Continue(out)
            }
            1 => {
                // Honest reveals of its own (share of the bad) dealing.
                let mut crng = StdRng::seed_from_u64(opts.challenge_seed);
                let x = F::element(1);
                let alpha = f.eval(x);
                let reveals: Vec<F> = gs
                    .iter()
                    .map(|g| if crng.random() { alpha + g.eval(x) } else { g.eval(x) })
                    .collect();
                let mut out = view.outbox();
                out.broadcast(CcdMsg::Reveal(reveals));
                Step::Continue(out)
            }
            _ => Step::Done((VssVerdict::Reject, F::zero())),
        }))
    }

    #[test]
    fn honest_dealer_accepted() {
        for (verdict, _) in run(7, 2, 8, 1, None) {
            assert_eq!(verdict, VssVerdict::Accept);
        }
    }

    #[test]
    fn shares_reconstruct() {
        let outs = run(7, 2, 8, 2, None);
        let shares: Vec<dprbg_poly::Share<F>> = outs
            .iter()
            .enumerate()
            .map(|(i, (_, a))| dprbg_poly::Share { x: F::element(i as u64 + 1), y: *a })
            .collect();
        assert_eq!(
            dprbg_poly::reconstruct_secret(&shares, 2).unwrap(),
            F::from_u64(0x5EC2E7)
        );
    }

    #[test]
    fn high_degree_dealer_rejected_whp() {
        // With k = 12 challenge rounds the cheat survives w.p. 2^-12;
        // a handful of seeds must all reject. (Honest parties only — the
        // cheating script's own output is a placeholder.)
        for seed in 10..16 {
            for (verdict, _) in run(7, 2, 12, seed, Some(4)).into_iter().skip(1) {
                assert_eq!(verdict, VssVerdict::Reject, "seed {seed}");
            }
        }
    }

    #[test]
    fn soundness_halves_per_round() {
        // With k = 1 a wrong-degree dealer survives ≈ half the time: the
        // challenge either hits f+g (reveals the cheat) or g (hides it).
        let trials = 60;
        let mut accepts = 0;
        for seed in 0..trials {
            let outs = run(4, 1, 1, 100 + seed, Some(2));
            if outs[1].0 == VssVerdict::Accept {
                accepts += 1;
            }
        }
        let rate = accepts as f64 / trials as f64;
        assert!(
            (0.25..=0.75).contains(&rate),
            "single-round survival rate {rate} should be ≈ 1/2"
        );
    }

    #[test]
    fn interpolation_cost_is_k_per_player() {
        // The headline comparison: CCD burns k interpolations where the
        // paper's VSS uses 1 (plus the challenge expose).
        let n = 4;
        let t = 1;
        let k = 16;
        let machines: Vec<BoxedMachine<M, (VssVerdict, F)>> = (1..=n)
            .map(|id| {
                let opts = CcdOpts { rounds: k, challenge_seed: 5 };
                let secret = (id == 1).then(|| F::from_u64(9));
                Box::new(CcdMachine::new(1, secret, t, opts)) as BoxedMachine<M, _>
            })
            .collect();
        let res = StepRunner::new(n, 50).run(machines);
        for pc in &res.report.per_party {
            assert_eq!(pc.cost.interpolations, k as u64, "party {}", pc.party);
        }
    }
}
