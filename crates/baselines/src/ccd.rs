//! Cut-and-choose VSS (Chaum–Crépeau–Damgård \[9\]) — the paper's main VSS
//! comparator.
//!
//! "The dealer who shared the secret is asked to share k additional
//! polynomials, g_1(x), …, g_k(x). For each j, 1 ≤ j ≤ k, the players
//! decide whether to reconstruct g_j(x) or f(x) + g_j(x), and check if the
//! reconstructed polynomial is of degree ≤ t. Thus, in this approach k
//! polynomial interpolations are computed in order to achieve a
//! probability of error less than ½^k." (§3.1.)
//!
//! Model note: the per-round challenge bits are public common randomness.
//! Their production is *not charged* to this baseline (the harness derives
//! them from a seed) — a deliberately generous accounting that still
//! leaves the baseline `k` interpolations behind the paper's single one.

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::{interpolate, Poly};
use dprbg_sim::{Embeds, PartyCtx, PartyId};
use dprbg_rng::rngs::StdRng;
use dprbg_rng::{RngExt, SeedableRng};

pub use dprbg_core::{VssMode, VssVerdict};

/// Wire messages of the cut-and-choose VSS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CcdMsg<F: Field> {
    /// Dealing: the secret share `f(i)` plus the `k` masking shares
    /// `g_1(i) … g_k(i)`.
    Deal {
        /// `f(i)`.
        alpha: F,
        /// `g_j(i)` for `j = 1..=k`.
        gammas: Vec<F>,
    },
    /// Reveal round: for each challenge `j`, either `g_j(i)` or
    /// `f(i) + g_j(i)` per the public challenge bit.
    Reveal(Vec<F>),
}

impl<F: Field> WireSize for CcdMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            CcdMsg::Deal { alpha, gammas } => alpha.wire_bytes() + gammas.wire_bytes(),
            CcdMsg::Reveal(vals) => vals.wire_bytes(),
        }
    }
}

/// Options of the cut-and-choose run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CcdOpts {
    /// Number of cut-and-choose rounds `k` (soundness error `2^-k`).
    pub rounds: usize,
    /// Seed of the public challenge bits (identical at every party —
    /// models the common random string).
    pub challenge_seed: u64,
}

/// Run one cut-and-choose VSS: `dealer` shares `secret_if_dealer` among
/// all parties; everyone outputs a verdict.
///
/// 3 communication rounds (deal, challenge barrier, reveal broadcasts) and
/// `opts.rounds` polynomial interpolations per player — the cost the
/// paper's Batch-VSS amortizes away.
///
/// Returns `(verdict, my secret share)`.
pub fn ccd_vss<M, F>(
    ctx: &mut PartyCtx<M>,
    dealer: PartyId,
    secret_if_dealer: Option<F>,
    t: usize,
    opts: CcdOpts,
) -> (VssVerdict, F)
where
    M: Clone + Send + WireSize + Embeds<CcdMsg<F>> + 'static,
    F: Field,
{
    let n = ctx.n();
    let k = opts.rounds;

    // Round 1: deal f and the k masking polynomials. (`None` as the
    // secret means this party does not act as dealer even if it carries
    // the dealer id — used by adversarial wrappers that deal manually.)
    let mut dealt: Option<(Poly<F>, Vec<Poly<F>>)> = None;
    if let (true, Some(secret)) = (ctx.id() == dealer, secret_if_dealer) {
        let f = Poly::random_with_constant(secret, t, ctx.rng());
        let gs: Vec<Poly<F>> = (0..k).map(|_| Poly::random(t, ctx.rng())).collect();
        for i in 1..=n {
            let x = F::element(i as u64);
            ctx.send(
                i,
                <M as Embeds<CcdMsg<F>>>::wrap(CcdMsg::Deal {
                    alpha: f.eval(x),
                    gammas: gs.iter().map(|g| g.eval(x)).collect(),
                }),
            );
        }
        dealt = Some((f, gs));
    }
    let _ = dealt;
    let inbox = ctx.next_round();
    let dealt = inbox
        .first_from(dealer)
        .and_then(|r| <M as Embeds<CcdMsg<F>>>::peek(&r.msg))
        .and_then(|m| match m {
            CcdMsg::Deal { alpha, gammas } if gammas.len() == k => {
                Some((*alpha, gammas.clone()))
            }
            _ => None,
        });
    let was_dealt = dealt.is_some();
    let (alpha, gammas) = dealt.unwrap_or_else(|| (F::zero(), vec![F::zero(); k]));

    // Public challenge bits (common randomness, uncharged).
    let mut crng = StdRng::seed_from_u64(opts.challenge_seed);
    let challenges: Vec<bool> = (0..k).map(|_| crng.random()).collect();

    // Round 2: broadcast the chosen reveals. A player the dealer skipped
    // broadcasts random values so a silent/partial dealer cannot pass as
    // an implicit all-zero sharing.
    let reveals: Vec<F> = if was_dealt {
        challenges
            .iter()
            .zip(&gammas)
            .map(|(&c, &g)| if c { alpha + g } else { g })
            .collect()
    } else {
        (0..k).map(|_| F::random(ctx.rng())).collect()
    };
    ctx.broadcast(<M as Embeds<CcdMsg<F>>>::wrap(CcdMsg::Reveal(reveals)));
    let inbox = ctx.next_round();

    let mut per_party: Vec<Option<Vec<F>>> = vec![None; n];
    for rcv in inbox.broadcasts() {
        if let Some(CcdMsg::Reveal(vals)) = <M as Embeds<CcdMsg<F>>>::peek(&rcv.msg) {
            if vals.len() == k && per_party[rcv.from - 1].is_none() {
                per_party[rcv.from - 1] = Some(vals.clone());
            }
        }
    }

    // k interpolations: each revealed polynomial must have degree ≤ t.
    for j in 0..k {
        let points: Vec<(F, F)> = per_party
            .iter()
            .enumerate()
            .filter_map(|(i, vals)| {
                vals.as_ref().map(|v| (F::element(i as u64 + 1), v[j]))
            })
            .collect();
        if points.len() < n {
            return (VssVerdict::Reject, alpha);
        }
        match interpolate(&points) {
            Ok(p) if p.degree().is_none_or(|d| d <= t) => {}
            _ => return (VssVerdict::Reject, alpha),
        }
    }
    (VssVerdict::Accept, alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_sim::{run_network, Behavior};
    use dprbg_field::Gf2k;

    type F = Gf2k<32>;
    type M = CcdMsg<F>;

    fn run(
        n: usize,
        t: usize,
        k: usize,
        seed: u64,
        bad_degree: Option<usize>,
    ) -> Vec<(VssVerdict, F)> {
        let behaviors: Vec<Behavior<M, (VssVerdict, F)>> = (1..=n)
            .map(|id| {
                let opts = CcdOpts { rounds: k, challenge_seed: seed ^ 0xABCD };
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    if id == 1 {
                        if let Some(bad) = bad_degree {
                            return cheating_dealer(ctx, t, bad, opts);
                        }
                    }
                    let secret = (id == 1).then(|| F::from_u64(0x5EC2E7));
                    ccd_vss(ctx, 1, secret, t, opts)
                }) as Behavior<M, _>
            })
            .collect();
        run_network(n, seed, behaviors).unwrap_all()
    }

    /// A dealer that shares a too-high-degree f but honest maskings and
    /// honest reveals.
    fn cheating_dealer(
        ctx: &mut PartyCtx<M>,
        t: usize,
        bad_degree: usize,
        opts: CcdOpts,
    ) -> (VssVerdict, F) {
        let n = ctx.n();
        let k = opts.rounds;
        let f = Poly::<F>::random(bad_degree, ctx.rng());
        let gs: Vec<Poly<F>> = (0..k).map(|_| Poly::random(t, ctx.rng())).collect();
        for i in 1..=n {
            let x = F::element(i as u64);
            ctx.send(
                i,
                CcdMsg::Deal {
                    alpha: f.eval(x),
                    gammas: gs.iter().map(|g| g.eval(x)).collect(),
                },
            );
        }
        // Then behave like a regular participant.
        ccd_vss(ctx, 1, None::<F>, t, opts)
    }

    #[test]
    fn honest_dealer_accepted() {
        for (verdict, _) in run(7, 2, 8, 1, None) {
            assert_eq!(verdict, VssVerdict::Accept);
        }
    }

    #[test]
    fn shares_reconstruct() {
        let outs = run(7, 2, 8, 2, None);
        let shares: Vec<dprbg_poly::Share<F>> = outs
            .iter()
            .enumerate()
            .map(|(i, (_, a))| dprbg_poly::Share { x: F::element(i as u64 + 1), y: *a })
            .collect();
        assert_eq!(
            dprbg_poly::reconstruct_secret(&shares, 2).unwrap(),
            F::from_u64(0x5EC2E7)
        );
    }

    #[test]
    fn high_degree_dealer_rejected_whp() {
        // With k = 12 challenge rounds the cheat survives w.p. 2^-12;
        // a handful of seeds must all reject.
        for seed in 10..16 {
            for (verdict, _) in run(7, 2, 12, seed, Some(4)) {
                assert_eq!(verdict, VssVerdict::Reject, "seed {seed}");
            }
        }
    }

    #[test]
    fn soundness_halves_per_round() {
        // With k = 1 a wrong-degree dealer survives ≈ half the time: the
        // challenge either hits f+g (reveals the cheat) or g (hides it).
        let trials = 60;
        let mut accepts = 0;
        for seed in 0..trials {
            let outs = run(4, 1, 1, 100 + seed, Some(2));
            if outs[1].0 == VssVerdict::Accept {
                accepts += 1;
            }
        }
        let rate = accepts as f64 / trials as f64;
        assert!(
            (0.25..=0.75).contains(&rate),
            "single-round survival rate {rate} should be ≈ 1/2"
        );
    }

    #[test]
    fn interpolation_cost_is_k_per_player() {
        // The headline comparison: CCD burns k interpolations where the
        // paper's VSS uses 1 (plus the challenge expose).
        let n = 4;
        let t = 1;
        let k = 16;
        let behaviors: Vec<Behavior<M, (VssVerdict, F)>> = (1..=n)
            .map(|id| {
                let opts = CcdOpts { rounds: k, challenge_seed: 5 };
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    let secret = (id == 1).then(|| F::from_u64(9));
                    ccd_vss(ctx, 1, secret, t, opts)
                }) as Behavior<M, _>
            })
            .collect();
        let res = run_network(n, 50, behaviors);
        for pc in &res.report.per_party {
            assert_eq!(pc.cost.interpolations, k as u64, "party {}", pc.party);
        }
    }
}
