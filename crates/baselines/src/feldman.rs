//! Feldman's non-interactive VSS \[12\] — the paper's discrete-log
//! comparator.
//!
//! "Feldman's protocol depends on the unproven assumption of the hardness
//! of the discrete log problem. After defining the polynomial (à la
//! Shamir) and computing all the private shares f(i) of the players, the
//! dealer generates public information which aids in the verification. A
//! consequence of this is that both the dealer and the players have to
//! carry out t exponentiations (i.e., t·log p multiplications)." (§3.1.)
//!
//! Instantiated in the order-`q` subgroup of `F_p^*` for the safe prime
//! `p = 2q + 1` ([`SAFE_PRIME_P`]): the secret polynomial lives over
//! `Z_q` (exponents), the commitments `C_j = g^{a_j}` live in `F_p`, and
//! player `i` accepts iff `g^{f(i)} = Π_j C_j^{i^j} (mod p)`.
//! Exponentiations go through [`Field::pow`], so their `log p`
//! multiplications are charged to the cost counters — exactly the unit
//! the paper uses for this comparison.

use dprbg_field::{Field, Fp, SAFE_PRIME_GEN, SAFE_PRIME_P, SAFE_PRIME_Q};
use dprbg_metrics::WireSize;
use dprbg_poly::Poly;
use dprbg_sim::{Embeds, PartyId, RoundMachine, RoundView, Step};

/// The exponent field `Z_q` (the subgroup order).
pub type Exp = Fp<SAFE_PRIME_Q>;

/// The commitment group's ambient field `F_p`.
pub type Grp = Fp<SAFE_PRIME_P>;

/// Wire messages of Feldman VSS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FeldmanMsg {
    /// Private share `f(i)` (an exponent).
    Share(Exp),
    /// The public commitment vector `g^{a_0} … g^{a_t}` (broadcast).
    Commitments(Vec<Grp>),
}

impl WireSize for FeldmanMsg {
    fn wire_bytes(&self) -> usize {
        match self {
            FeldmanMsg::Share(s) => s.wire_bytes(),
            FeldmanMsg::Commitments(c) => c.wire_bytes(),
        }
    }
}

/// A player's verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeldmanVerdict {
    /// `g^{f(i)}` matched the committed polynomial-in-the-exponent.
    Accept,
    /// Mismatch (or missing data): the dealer cheated this player.
    Reject,
}

/// One Feldman VSS as a sans-IO round machine: `dealer` shares
/// `secret_if_dealer ∈ Z_q`; every party outputs `(verdict, my share)`.
///
/// One dealing round (private shares + broadcast commitments), then a
/// purely local verification of `t + 1` exponentiations per player
/// (≈ `t·log p` multiplications, all counted).
///
/// `None` as the secret means this party does not act as dealer even if
/// it carries the dealer id (adversarial wrappers deal manually).
pub struct FeldmanMachine<M> {
    dealer: PartyId,
    secret_if_dealer: Option<Exp>,
    t: usize,
    dealt: bool,
    _wire: std::marker::PhantomData<fn() -> M>,
}

impl<M> FeldmanMachine<M> {
    /// A machine for one VSS of `secret_if_dealer` from `dealer`.
    pub fn new(dealer: PartyId, secret_if_dealer: Option<Exp>, t: usize) -> Self {
        FeldmanMachine {
            dealer,
            secret_if_dealer,
            t,
            dealt: false,
            _wire: std::marker::PhantomData,
        }
    }
}

impl<M> RoundMachine<M> for FeldmanMachine<M>
where
    M: Clone + WireSize + Embeds<FeldmanMsg>,
{
    type Output = (FeldmanVerdict, Exp);

    fn round(&mut self, view: RoundView<'_, M>) -> Step<M, Self::Output> {
        let n = view.n;
        let t = self.t;
        let g = Grp::from_u64(SAFE_PRIME_GEN);
        if !self.dealt {
            self.dealt = true;
            let mut out = view.outbox();
            if let (true, Some(secret)) = (view.id == self.dealer, self.secret_if_dealer.take())
            {
                let f = Poly::random_with_constant(secret, t, view.rng);
                // Commit to every coefficient: t + 1 exponentiations.
                let commitments: Vec<Grp> =
                    (0..=t).map(|j| g.pow(f.coeff(j).to_u64() as u128)).collect();
                out.broadcast(<M as Embeds<FeldmanMsg>>::wrap(FeldmanMsg::Commitments(
                    commitments,
                )));
                for i in 1..=n {
                    let share = f.eval(Exp::element(i as u64));
                    out.send(i, <M as Embeds<FeldmanMsg>>::wrap(FeldmanMsg::Share(share)));
                }
            }
            return Step::Continue(out);
        }

        let mut share = Exp::zero();
        let mut commitments: Option<Vec<Grp>> = None;
        for rcv in view.inbox.from(self.dealer) {
            match <M as Embeds<FeldmanMsg>>::peek(&rcv.msg) {
                Some(FeldmanMsg::Share(s)) => share = *s,
                Some(FeldmanMsg::Commitments(c))
                    if rcv.broadcast && commitments.is_none() && c.len() == t + 1 =>
                {
                    commitments = Some(c.clone());
                }
                _ => {}
            }
        }

        let Some(commitments) = commitments else {
            return Step::Done((FeldmanVerdict::Reject, share));
        };

        // Verify g^{f(i)} = Π_j C_j^{i^j}: t + 1 exponentiations.
        let i = view.id as u64;
        let lhs = g.pow(share.to_u64() as u128);
        let mut rhs = Grp::one();
        let mut ij: u128 = 1; // i^j as an integer exponent, reduced mod q.
        for c in &commitments {
            rhs *= c.pow(ij);
            ij = (ij * i as u128) % SAFE_PRIME_Q as u128;
        }
        let verdict = if lhs == rhs { FeldmanVerdict::Accept } else { FeldmanVerdict::Reject };
        Step::Done((verdict, share))
    }

    fn phase_name(&self) -> &'static str {
        if self.dealt {
            "feldman/verify"
        } else {
            "feldman/deal"
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_rng::rngs::StdRng;
    use dprbg_rng::SeedableRng;
    use dprbg_sim::{from_fn, BoxedMachine, StepRunner};

    type M = FeldmanMsg;

    fn run(n: usize, t: usize, seed: u64, cheat: bool) -> Vec<(FeldmanVerdict, Exp)> {
        let machines: Vec<BoxedMachine<M, (FeldmanVerdict, Exp)>> = (1..=n)
            .map(|id| {
                if id == 1 && cheat {
                    return cheating_dealer(n, t, seed);
                }
                let secret = (id == 1).then(|| Exp::from_u64(0xFACE));
                Box::new(FeldmanMachine::new(1, secret, t)) as BoxedMachine<M, _>
            })
            .collect();
        StepRunner::new(n, seed).run(machines).unwrap_all()
    }

    /// Commits to one polynomial but sends party 2 a share of another.
    fn cheating_dealer(n: usize, t: usize, seed: u64) -> BoxedMachine<M, (FeldmanVerdict, Exp)> {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFE1D);
        let f = Poly::<Exp>::random(t, &mut rng);
        Box::new(from_fn(move |view: RoundView<'_, M>| match view.round {
            0 => {
                let g = Grp::from_u64(SAFE_PRIME_GEN);
                let commitments: Vec<Grp> =
                    (0..=t).map(|j| g.pow(f.coeff(j).to_u64() as u128)).collect();
                let mut out = view.outbox();
                out.broadcast(FeldmanMsg::Commitments(commitments));
                for i in 1..=n {
                    let mut share = f.eval(Exp::element(i as u64));
                    if i == 2 {
                        share += Exp::one(); // the lie
                    }
                    out.send(i, FeldmanMsg::Share(share));
                }
                Step::Continue(out)
            }
            _ => Step::Done((FeldmanVerdict::Reject, Exp::zero())),
        }))
    }

    #[test]
    fn honest_dealer_accepted_by_all() {
        for (verdict, _) in run(7, 2, 1, false) {
            assert_eq!(verdict, FeldmanVerdict::Accept);
        }
    }

    #[test]
    fn shares_reconstruct() {
        let outs = run(7, 2, 2, false);
        let shares: Vec<dprbg_poly::Share<Exp>> = outs
            .iter()
            .enumerate()
            .map(|(i, (_, s))| dprbg_poly::Share {
                x: Exp::element(i as u64 + 1),
                y: *s,
            })
            .collect();
        assert_eq!(
            dprbg_poly::reconstruct_secret(&shares, 2).unwrap(),
            Exp::from_u64(0xFACE)
        );
    }

    #[test]
    fn bad_share_detected_by_its_holder() {
        let outs = run(7, 2, 3, true);
        assert_eq!(outs[1].0, FeldmanVerdict::Reject, "party 2 got the lie");
        // Parties with consistent shares accept — Feldman verification is
        // local, which is exactly why the dealer can cheat *some* player
        // without global detection (unlike the paper's global check).
        assert_eq!(outs[2].0, FeldmanVerdict::Accept);
    }

    #[test]
    fn exponentiation_cost_scales_with_t_log_p() {
        // Each verification is t+1 exponentiations of ~62-bit exponents:
        // ≈ t·log p multiplications — vastly more than the paper's VSS.
        let n = 7;
        let t = 2;
        let machines: Vec<BoxedMachine<M, (FeldmanVerdict, Exp)>> = (1..=n)
            .map(|id| {
                let secret = (id == 1).then(|| Exp::from_u64(5));
                Box::new(FeldmanMachine::new(1, secret, t)) as BoxedMachine<M, _>
            })
            .collect();
        let res = StepRunner::new(n, 4).run(machines);
        // The dealer commits to t+1 full-size coefficients: (t+1)·log p
        // multiplications at ~62-bit exponents.
        let dealer_cost = &res.report.per_party[0].cost;
        assert!(
            dealer_cost.field_muls > (t as u64 + 1) * 62,
            "dealer muls = {} should reflect (t+1) log p",
            dealer_cost.field_muls
        );
        // A verifier computes at least the full-size g^{f(i)}: ~log p
        // multiplications (its C_j^{i^j} exponents are small for small i,
        // so the paper's t·log p is the large-n shape).
        let verifier = &res.report.per_party[2].cost;
        assert!(
            verifier.field_muls > 60,
            "verifier muls = {} should reflect log p",
            verifier.field_muls
        );
        assert_eq!(verifier.interpolations, 0, "Feldman interpolates nothing");
    }

    #[test]
    fn silent_dealer_rejected() {
        let n = 4;
        let machines: Vec<BoxedMachine<M, (FeldmanVerdict, Exp)>> = (1..=n)
            .map(|id| {
                if id == 1 {
                    // The dealer never deals.
                    Box::new(from_fn(|view: RoundView<'_, M>| match view.round {
                        0 => Step::Continue(view.outbox()),
                        _ => Step::Done((FeldmanVerdict::Reject, Exp::zero())),
                    })) as BoxedMachine<M, _>
                } else {
                    Box::new(FeldmanMachine::new(1, None, 1)) as BoxedMachine<M, _>
                }
            })
            .collect();
        for (verdict, _) in StepRunner::new(n, 5).run(machines).unwrap_all() {
            assert_eq!(verdict, FeldmanVerdict::Reject);
        }
    }
}
