//! The from-scratch shared coin — what generating every coin individually
//! costs without a D-PRBG.
//!
//! "A straightforward way to generate a coin would be to interpolate a
//! number of polynomials which at least equals the number of the faults
//! to be tolerated. Coins generated this way, however, would still be
//! highly expensive." (§4.)
//!
//! Here, `t + 1` designated contributors each run a full cut-and-choose
//! VSS ([`crate::ccd`]) of a random secret (no pre-existing shared coins
//! exist to power the paper's cheap VSS — that absence is the whole
//! point); the coin is the sum of the accepted contributions, exposed by
//! one final interpolation. Per coin this costs `(t + 1)·k`
//! interpolations and `O(t·n·k)` field elements of traffic, against the
//! paper's amortized **one** interpolation and `O(n)` messages.

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::interpolate;
use dprbg_sim::{Embeds, PartyCtx, PartyId};

use crate::ccd::{ccd_vss, CcdMsg, CcdOpts, VssVerdict};

/// Wire messages of the from-scratch coin: cut-and-choose traffic plus
/// the final share reveal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromScratchMsg<F: Field> {
    /// One contributor's VSS traffic, tagged by contributor.
    Ccd {
        /// Which contributor's VSS instance this belongs to.
        instance: PartyId,
        /// The inner cut-and-choose message.
        inner: CcdMsg<F>,
    },
    /// The final expose: this party's summed share.
    Sum(F),
}

impl<F: Field> WireSize for FromScratchMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            FromScratchMsg::Ccd { inner, .. } => 1 + inner.wire_bytes(),
            FromScratchMsg::Sum(s) => s.wire_bytes(),
        }
    }
}

/// Generate ONE shared coin from scratch.
///
/// Contributors `1..=t+1` each cut-and-choose-VSS a random secret
/// (sequentially — their instances could be interleaved round-wise, but
/// the per-coin cost is identical and the paper's comparison is about
/// totals); the coin is the sum of accepted contributions.
///
/// `challenge_seed` seeds the public cut-and-choose challenges.
///
/// Returns the coin value, or `None` when reconstruction fails (more
/// faults than the model allows).
pub fn from_scratch_coin<F: Field>(
    ctx: &mut PartyCtx<FromScratchMsg<F>>,
    t: usize,
    ccd_rounds: usize,
    challenge_seed: u64,
) -> Option<F>
where
    FromScratchMsg<F>: Embeds<CcdMsg<F>>,
{
    let contributors: Vec<PartyId> = (1..=t + 1).collect();
    let mut my_sum = F::zero();
    let mut accepted = 0usize;

    for (idx, &dealer) in contributors.iter().enumerate() {
        CURRENT_INSTANCE.with(|c| c.set(dealer));
        let secret = (ctx.id() == dealer).then(|| F::random(ctx.rng()));
        let opts = CcdOpts {
            rounds: ccd_rounds,
            challenge_seed: challenge_seed.wrapping_add(idx as u64),
        };
        let (verdict, share) = ccd_vss::<FromScratchMsg<F>, F>(ctx, dealer, secret, t, opts);
        if verdict == VssVerdict::Accept {
            my_sum += share;
            accepted += 1;
        }
    }
    if accepted == 0 {
        return None;
    }

    // Final expose of the summed shares: one interpolation.
    ctx.broadcast(FromScratchMsg::Sum(my_sum));
    let inbox = ctx.next_round();
    let mut points: Vec<(F, F)> = Vec::new();
    for rcv in inbox.broadcasts() {
        if let FromScratchMsg::Sum(s) = &rcv.msg {
            let x = F::element(rcv.from as u64);
            if points.iter().all(|(px, _)| *px != x) {
                points.push((x, *s));
            }
        }
    }
    if points.len() <= t {
        return None;
    }
    let poly = interpolate(&points).ok()?;
    (poly.degree().is_none_or(|d| d <= t)).then(|| poly.constant_term())
}

thread_local! {
    /// The CCD instance currently running on this party's thread — used
    /// by the [`Embeds`] adapter to tag outgoing messages.
    static CURRENT_INSTANCE: std::cell::Cell<PartyId> = const { std::cell::Cell::new(0) };
}

impl<F: Field> Embeds<CcdMsg<F>> for FromScratchMsg<F> {
    fn wrap(inner: CcdMsg<F>) -> Self {
        FromScratchMsg::Ccd {
            instance: CURRENT_INSTANCE.with(|c| c.get()),
            inner,
        }
    }
    fn peek(&self) -> Option<&CcdMsg<F>> {
        match self {
            FromScratchMsg::Ccd { instance, inner }
                if *instance == CURRENT_INSTANCE.with(|c| c.get()) =>
            {
                Some(inner)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_sim::{run_network, Behavior};

    type F = Gf2k<32>;
    type M = FromScratchMsg<F>;

    fn run(n: usize, t: usize, k: usize, seed: u64) -> (Vec<Option<F>>, dprbg_metrics::CostReport) {
        let behaviors: Vec<Behavior<M, Option<F>>> = (1..=n)
            .map(|_| {
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    from_scratch_coin(ctx, t, k, seed ^ 0x5EED)
                }) as Behavior<M, _>
            })
            .collect();
        let res = run_network(n, seed, behaviors);
        let report = res.report.clone();
        (res.unwrap_all(), report)
    }

    #[test]
    fn coin_is_unanimous() {
        let (outs, _) = run(7, 2, 8, 1);
        let v = outs[0].expect("coin must be produced");
        assert!(outs.iter().all(|o| *o == Some(v)));
    }

    #[test]
    fn different_seeds_different_coins() {
        let (a, _) = run(7, 2, 8, 2);
        let (b, _) = run(7, 2, 8, 3);
        assert_ne!(a[0], b[0], "coins from independent runs should differ");
    }

    #[test]
    fn per_coin_cost_scales_with_t_times_k_interpolations() {
        let n = 7;
        let t = 2;
        let k = 8;
        let (_, report) = run(n, t, k, 4);
        // Each player: (t+1) VSS instances × k interpolations + 1 expose.
        let expected = ((t + 1) * k + 1) as u64;
        for pc in &report.per_party {
            assert_eq!(pc.cost.interpolations, expected, "party {}", pc.party);
        }
    }

    #[test]
    fn no_contributors_yields_none() {
        // t = 0 → single contributor; if it crashes the coin fails.
        let n = 4;
        let behaviors: Vec<Behavior<M, Option<F>>> = (1..=n)
            .map(|id| {
                Box::new(move |ctx: &mut PartyCtx<M>| {
                    if id == 1 {
                        // The only contributor goes silent entirely.
                        return None;
                    }
                    from_scratch_coin(ctx, 0, 4, 99)
                }) as Behavior<M, _>
            })
            .collect();
        let res = run_network(n, 5, behaviors);
        for id in 2..=n {
            assert_eq!(res.outputs[id - 1], Some(None), "party {id}");
        }
    }
}
