//! The from-scratch shared coin — what generating every coin individually
//! costs without a D-PRBG.
//!
//! "A straightforward way to generate a coin would be to interpolate a
//! number of polynomials which at least equals the number of the faults
//! to be tolerated. Coins generated this way, however, would still be
//! highly expensive." (§4.)
//!
//! Here, `t + 1` designated contributors each run a full cut-and-choose
//! VSS ([`crate::ccd`]) of a random secret (no pre-existing shared coins
//! exist to power the paper's cheap VSS — that absence is the whole
//! point); the coin is the sum of the accepted contributions, exposed by
//! one final interpolation. Per coin this costs `(t + 1)·k`
//! interpolations and `O(t·n·k)` field elements of traffic, against the
//! paper's amortized **one** interpolation and `O(n)` messages.

use dprbg_field::Field;
use dprbg_metrics::WireSize;
use dprbg_poly::interpolate;
use dprbg_sim::{
    from_fn, looping, Inbox, LoopControl, MachineExt, PartyId, Received, RoundMachine,
    RoundView, Step,
};

use crate::ccd::{CcdMachine, CcdMsg, CcdOpts, VssVerdict};

/// Wire messages of the from-scratch coin: cut-and-choose traffic plus
/// the final share reveal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FromScratchMsg<F: Field> {
    /// One contributor's VSS traffic, tagged by contributor.
    Ccd {
        /// Which contributor's VSS instance this belongs to.
        instance: PartyId,
        /// The inner cut-and-choose message.
        inner: CcdMsg<F>,
    },
    /// The final expose: this party's summed share.
    Sum(F),
}

impl<F: Field> WireSize for FromScratchMsg<F> {
    fn wire_bytes(&self) -> usize {
        match self {
            FromScratchMsg::Ccd { inner, .. } => 1 + inner.wire_bytes(),
            FromScratchMsg::Sum(s) => s.wire_bytes(),
        }
    }
}

/// Adapter running one contributor's VSS on the tagged wire: the inner
/// machine sees plain [`CcdMsg`] traffic while every message on the real
/// network carries the `instance` tag — the runtime analogue of
/// [`dprbg_sim::Embeds`], needed because a *value* (the current
/// contributor) selects the sub-protocol, not a type.
struct Instanced<A, F: Field> {
    instance: PartyId,
    round: u64,
    inner: A,
    _field: std::marker::PhantomData<fn() -> F>,
}

impl<A, F: Field> Instanced<A, F> {
    fn new(instance: PartyId, inner: A) -> Self {
        Instanced { instance, round: 0, inner, _field: std::marker::PhantomData }
    }
}

impl<A, F> RoundMachine<FromScratchMsg<F>> for Instanced<A, F>
where
    A: RoundMachine<CcdMsg<F>>,
    F: Field,
{
    type Output = A::Output;

    fn round(
        &mut self,
        view: RoundView<'_, FromScratchMsg<F>>,
    ) -> Step<FromScratchMsg<F>, A::Output> {
        let mut msgs: Vec<Received<CcdMsg<F>>> = Vec::new();
        for rcv in view.inbox.iter() {
            if let FromScratchMsg::Ccd { instance, inner } = &rcv.msg {
                if *instance == self.instance {
                    msgs.push(Received {
                        from: rcv.from,
                        broadcast: rcv.broadcast,
                        seq: rcv.seq,
                        msg: inner.clone(),
                    });
                }
            }
        }
        let inner_inbox = Inbox::from_messages(msgs);
        let inner_view = RoundView {
            id: view.id,
            n: view.n,
            round: self.round,
            inbox: &inner_inbox,
            rng: view.rng,
        };
        match self.inner.round(inner_view) {
            Step::Continue(out) => {
                self.round += 1;
                let tag = self.instance;
                Step::Continue(out.map(|m| FromScratchMsg::Ccd { instance: tag, inner: m }))
            }
            Step::Done(o) => Step::Done(o),
        }
    }

    fn phase_name(&self) -> &'static str {
        self.inner.phase_name()
    }
}

/// Final expose: broadcast the summed share, interpolate the sums.
fn expose_sum<F: Field>(
    t: usize,
    my_sum: F,
) -> impl RoundMachine<FromScratchMsg<F>, Output = Option<F>> {
    let mut sum = Some(my_sum);
    from_fn(move |view: RoundView<'_, FromScratchMsg<F>>| match sum.take() {
        Some(s) => {
            let mut out = view.outbox();
            out.broadcast(FromScratchMsg::Sum(s));
            Step::Continue(out)
        }
        None => {
            let mut points: Vec<(F, F)> = Vec::new();
            for rcv in view.inbox.broadcasts() {
                if let FromScratchMsg::Sum(s) = &rcv.msg {
                    let x = F::element(rcv.from as u64);
                    if points.iter().all(|(px, _)| *px != x) {
                        points.push((x, *s));
                    }
                }
            }
            if points.len() <= t {
                return Step::Done(None);
            }
            let Ok(poly) = interpolate(&points) else {
                return Step::Done(None);
            };
            Step::Done(
                (poly.degree().is_none_or(|d| d <= t)).then(|| poly.constant_term()),
            )
        }
    })
    .labelled("from-scratch/expose")
}

/// Loop state between contributor VSS instances.
enum FsFlow<F> {
    /// About to run contributor `dealer`'s instance.
    Vss {
        /// Next contributor (1-based; contributors are `1..=t+1`).
        dealer: PartyId,
        /// Sum of accepted shares so far.
        sum: F,
        /// Accepted contributions so far.
        accepted: usize,
    },
    /// The expose finished with this coin.
    Exposed(Option<F>),
}

/// A machine generating ONE shared coin from scratch at party `my_id`.
///
/// Contributors `1..=t+1` each cut-and-choose-VSS a random secret
/// (sequentially — their instances could be interleaved round-wise, but
/// the per-coin cost is identical and the paper's comparison is about
/// totals); the coin is the sum of accepted contributions.
///
/// `challenge_seed` seeds the public cut-and-choose challenges. The
/// output is the coin value, or `None` when reconstruction fails (more
/// faults than the model allows).
pub fn from_scratch_coin<F: Field>(
    my_id: PartyId,
    t: usize,
    ccd_rounds: usize,
    challenge_seed: u64,
) -> impl RoundMachine<FromScratchMsg<F>, Output = Option<F>> {
    looping(
        FsFlow::Vss { dealer: 1, sum: F::zero(), accepted: 0 },
        move |flow: FsFlow<F>| match flow {
            FsFlow::Vss { dealer, sum, accepted } if dealer <= t + 1 => {
                let opts = CcdOpts {
                    rounds: ccd_rounds,
                    challenge_seed: challenge_seed.wrapping_add(dealer as u64 - 1),
                };
                let vss = if my_id == dealer {
                    CcdMachine::random_dealer(dealer, t, opts)
                } else {
                    CcdMachine::new(dealer, None, t, opts)
                };
                LoopControl::Continue(Box::new(Instanced::new(dealer, vss).map(
                    move |(verdict, share): (VssVerdict, F)| {
                        let (sum, accepted) = if verdict == VssVerdict::Accept {
                            (sum + share, accepted + 1)
                        } else {
                            (sum, accepted)
                        };
                        FsFlow::Vss { dealer: dealer + 1, sum, accepted }
                    },
                )))
            }
            FsFlow::Vss { accepted: 0, .. } => LoopControl::Break(None),
            FsFlow::Vss { sum, .. } => {
                LoopControl::Continue(Box::new(expose_sum(t, sum).map(FsFlow::Exposed)))
            }
            FsFlow::Exposed(coin) => LoopControl::Break(coin),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use dprbg_field::Gf2k;
    use dprbg_sim::{BoxedMachine, StepRunner};

    type F = Gf2k<32>;
    type M = FromScratchMsg<F>;

    fn run(n: usize, t: usize, k: usize, seed: u64) -> (Vec<Option<F>>, dprbg_metrics::CostReport) {
        let machines: Vec<BoxedMachine<M, Option<F>>> = (1..=n)
            .map(|id| {
                Box::new(from_scratch_coin::<F>(id, t, k, seed ^ 0x5EED))
                    as BoxedMachine<M, _>
            })
            .collect();
        let res = StepRunner::new(n, seed).run(machines);
        let report = res.report.clone();
        (res.unwrap_all(), report)
    }

    #[test]
    fn coin_is_unanimous() {
        let (outs, _) = run(7, 2, 8, 1);
        let v = outs[0].expect("coin must be produced");
        assert!(outs.iter().all(|o| *o == Some(v)));
    }

    #[test]
    fn different_seeds_different_coins() {
        let (a, _) = run(7, 2, 8, 2);
        let (b, _) = run(7, 2, 8, 3);
        assert_ne!(a[0], b[0], "coins from independent runs should differ");
    }

    #[test]
    fn per_coin_cost_scales_with_t_times_k_interpolations() {
        let n = 7;
        let t = 2;
        let k = 8;
        let (_, report) = run(n, t, k, 4);
        // Each player: (t+1) VSS instances × k interpolations + 1 expose.
        let expected = ((t + 1) * k + 1) as u64;
        for pc in &report.per_party {
            assert_eq!(pc.cost.interpolations, expected, "party {}", pc.party);
        }
    }

    #[test]
    fn no_contributors_yields_none() {
        // t = 0 → single contributor; if it crashes the coin fails.
        let n = 4;
        let machines: Vec<BoxedMachine<M, Option<F>>> = (1..=n)
            .map(|id| {
                if id == 1 {
                    // The only contributor goes silent entirely.
                    Box::new(from_fn(|_view: RoundView<'_, M>| Step::Done(None)))
                        as BoxedMachine<M, _>
                } else {
                    Box::new(from_scratch_coin::<F>(id, 0, 4, 99)) as BoxedMachine<M, _>
                }
            })
            .collect();
        let res = StepRunner::new(n, 5).run(machines);
        for id in 2..=n {
            assert_eq!(res.outputs[id - 1], Some(None), "party {id}");
        }
    }
}
