//! The generator traits: [`Rng`] (raw word stream), [`RngExt`] (typed
//! sampling) and [`SeedableRng`] (deterministic construction).
//!
//! The split mirrors the `rand` crate so protocol code written against
//! `rand` 0.10 compiles unchanged against this crate: `Rng` is the
//! object-safe core every generic bound uses (`R: Rng + ?Sized`), and
//! `RngExt` carries the generic convenience methods via a blanket impl.

use crate::dist::{SampleRange, StandardUniform};

/// A raw source of uniformly random words.
///
/// Object-safe; all protocol code takes `R: Rng + ?Sized`.
pub trait Rng {
    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;

    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: Rng + ?Sized> Rng for Box<R> {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    #[inline]
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Typed sampling methods, blanket-implemented for every [`Rng`].
pub trait RngExt: Rng {
    /// A uniformly random value of `T` (integers over their full range,
    /// `bool` as a fair coin, floats uniform in `[0, 1)`).
    #[inline]
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform value in `range` (`a..b` or `a..=b`). Unbiased
    /// (multiply-shift with rejection).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "random_bool: p = {p} out of range");
        // 53 uniform mantissa bits, exactly representable in f64.
        let x = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        x < p
    }

    /// Fill `dest` with random data (alias of [`Rng::fill_bytes`], kept for
    /// `rand`'s `Rng::fill` call-site compatibility).
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A generator constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Sized + Default + AsRef<[u8]> + AsMut<[u8]>;

    /// Build from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanded to a full seed with SplitMix64 — the
    /// same convenience (and expansion algorithm) `rand` offers, so every
    /// experiment in the workspace can keep its single-integer seeds.
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64 { state };
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }

    /// Derive a new generator from an existing one.
    fn from_rng<R: Rng + ?Sized>(source: &mut R) -> Self {
        let mut seed = Self::Seed::default();
        source.fill_bytes(seed.as_mut());
        Self::from_seed(seed)
    }
}

/// SplitMix64 (Steele–Lea–Flood 2014): the standard seed-expansion mixer.
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn fill_bytes_handles_unaligned_tails() {
        let mut rng = StdRng::seed_from_u64(3);
        for len in 0..9 {
            let mut buf = vec![0u8; len];
            rng.fill_bytes(&mut buf);
            if len >= 4 {
                assert!(buf.iter().any(|&b| b != 0), "len {len} all zero");
            }
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c (Vigna).
        let mut sm = SplitMix64 { state: 1234567 };
        assert_eq!(sm.next(), 6457827717110365317);
        assert_eq!(sm.next(), 3203168211198807973);
    }

    #[test]
    fn trait_objects_and_refs_sample() {
        let mut rng = StdRng::seed_from_u64(9);
        let dyn_rng: &mut dyn Rng = &mut rng;
        let _: u64 = dyn_rng.random();
        let _ = dyn_rng.random_range(0u64..17);
        let boxed: &mut Box<dyn Rng> = &mut (Box::new(StdRng::seed_from_u64(9)) as Box<dyn Rng>);
        let _: bool = boxed.random();
    }
}
