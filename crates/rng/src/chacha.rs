//! The ChaCha stream-cipher core used by [`crate::rngs::StdRng`].
//!
//! ChaCha (Bernstein 2008) with a compile-time round count. The workspace
//! uses 12 rounds — the same core the `rand` crate's `StdRng` is built on —
//! which keeps a large safety margin over the best known distinguishers
//! while being ~40% cheaper than ChaCha20. The block function is verified
//! against the RFC 8439 test vector (at 20 rounds) in this module's tests,
//! so the quarter-round plumbing itself is vector-checked even though the
//! 12-round profile has no official vectors.

/// Number of 32-bit words in a ChaCha state / output block.
const STATE_WORDS: usize = 16;

/// The "expand 32-byte k" constants.
const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha keystream generator with `R` double-rounds worth of mixing
/// (`R = 6` ⇒ ChaCha12, `R = 10` ⇒ ChaCha20).
#[derive(Clone, Debug)]
pub struct ChaCha<const R: usize> {
    /// Input state: constants ‖ key ‖ counter ‖ nonce.
    state: [u32; STATE_WORDS],
    /// Current output block.
    buf: [u32; STATE_WORDS],
    /// Next unread word index into `buf`; `STATE_WORDS` means "refill".
    idx: usize,
}

impl<const R: usize> ChaCha<R> {
    /// Build a generator from a 32-byte key, zero nonce, zero counter.
    pub fn new(key: [u8; 32]) -> Self {
        let mut state = [0u32; STATE_WORDS];
        state[..4].copy_from_slice(&CONSTANTS);
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Words 12..16: 64-bit block counter + 64-bit nonce (zero).
        ChaCha { state, buf: [0; STATE_WORDS], idx: STATE_WORDS }
    }

    #[inline]
    fn quarter_round(s: &mut [u32; STATE_WORDS], a: usize, b: usize, c: usize, d: usize) {
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(16);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(12);
        s[a] = s[a].wrapping_add(s[b]);
        s[d] = (s[d] ^ s[a]).rotate_left(8);
        s[c] = s[c].wrapping_add(s[d]);
        s[b] = (s[b] ^ s[c]).rotate_left(7);
    }

    /// Run the block function on the current state into `buf`, then advance
    /// the 64-bit block counter.
    fn refill(&mut self) {
        dprbg_metrics::ops::count_prg(1);
        let mut w = self.state;
        for _ in 0..R {
            // Column round.
            Self::quarter_round(&mut w, 0, 4, 8, 12);
            Self::quarter_round(&mut w, 1, 5, 9, 13);
            Self::quarter_round(&mut w, 2, 6, 10, 14);
            Self::quarter_round(&mut w, 3, 7, 11, 15);
            // Diagonal round.
            Self::quarter_round(&mut w, 0, 5, 10, 15);
            Self::quarter_round(&mut w, 1, 6, 11, 12);
            Self::quarter_round(&mut w, 2, 7, 8, 13);
            Self::quarter_round(&mut w, 3, 4, 9, 14);
        }
        for (out, (wi, si)) in self.buf.iter_mut().zip(w.iter().zip(self.state.iter())) {
            *out = wi.wrapping_add(*si);
        }
        // 64-bit counter over words 12 and 13.
        self.state[12] = self.state[12].wrapping_add(1);
        if self.state[12] == 0 {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.idx = 0;
    }

    /// Next 32 bits of keystream.
    #[inline]
    pub fn next_word(&mut self) -> u32 {
        if self.idx == STATE_WORDS {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    /// Set the 64-bit block counter (words 12–13) and flush the buffer.
    #[cfg(test)]
    fn set_counter(&mut self, ctr: u64) {
        self.state[12] = ctr as u32;
        self.state[13] = (ctr >> 32) as u32;
        self.idx = STATE_WORDS;
    }

    /// Set the 64-bit nonce (words 14–15) and flush the buffer.
    #[cfg(test)]
    fn set_nonce(&mut self, nonce: u64) {
        self.state[14] = nonce as u32;
        self.state[15] = (nonce >> 32) as u32;
        self.idx = STATE_WORDS;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 block-function test vector (ChaCha20).
    ///
    /// The RFC uses a 32-bit-counter/96-bit-nonce layout; ours is the
    /// original 64/64 split, so we reproduce the RFC's state words 12..16
    /// (counter 1, nonce `00:00:00:09 00:00:00:4a 00:00:00:00`) by putting
    /// 0x0900_0000 in the high counter half and 0x4a00_0000 in word 14.
    #[test]
    fn rfc8439_block_vector() {
        let key: [u8; 32] = core::array::from_fn(|i| i as u8);
        let mut c: ChaCha<10> = ChaCha::new(key);
        // RFC state words 12..16 = counter 1, nonce 00:00:00:09, 00:00:00:4a, 00:00:00:00.
        c.set_counter(1 | ((0x0900_0000u64) << 32));
        c.set_nonce(0x4a00_0000);
        let expect: [u32; 16] = [
            0xe4e7_f110, 0x1559_3bd1, 0x1fdd_0f50, 0xc471_20a3, 0xc7f4_d1c7, 0x0368_c033,
            0x9aaa_2204, 0x4e6c_d4c3, 0x4664_82d2, 0x09aa_9f07, 0x05d7_c214, 0xa202_8bd9,
            0xd19c_12b5, 0xb94e_16de, 0xe883_d0cb, 0x4e3c_50a2,
        ];
        let got: Vec<u32> = (0..16).map(|_| c.next_word()).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn counter_advances_blocks_differ() {
        let mut c: ChaCha<6> = ChaCha::new([7u8; 32]);
        let b0: Vec<u32> = (0..16).map(|_| c.next_word()).collect();
        let b1: Vec<u32> = (0..16).map(|_| c.next_word()).collect();
        assert_ne!(b0, b1);
    }

    #[test]
    fn keystream_is_deterministic() {
        let mut a: ChaCha<6> = ChaCha::new([42u8; 32]);
        let mut b: ChaCha<6> = ChaCha::new([42u8; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_word(), b.next_word());
        }
    }
}
