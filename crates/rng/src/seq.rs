//! Sequence helpers, mirroring `rand::seq`.

use crate::core::Rng;
use crate::dist::sample_below_u64;

/// Randomized slice operations.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Shuffle the slice in place (Fisher–Yates, unbiased).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = sample_below_u64(rng, i as u64 + 1) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[sample_below_u64(rng, self.len() as u64) as usize])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(21);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_edge_cases() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut empty: [u8; 0] = [];
        empty.shuffle(&mut rng);
        let mut one = [9u8];
        one.shuffle(&mut rng);
        assert_eq!(one, [9]);
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn choose_hits_all_elements() {
        let mut rng = StdRng::seed_from_u64(4);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
