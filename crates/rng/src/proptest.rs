//! An in-tree, seed-deterministic property-testing harness with a
//! `proptest`-compatible macro surface.
//!
//! Supports the subset of `proptest` the workspace uses:
//!
//! - `proptest! { #[test] fn name(a: u64, x in 0usize..8) { .. } }`
//! - an optional leading `#![proptest_config(ProptestConfig::with_cases(N))]`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//!
//! Each case runs from its own [`StdRng`] seed derived deterministically
//! from a per-test base. There is no shrinking; instead every failure
//! prints the exact case seed and the environment variables that replay
//! that single case:
//!
//! ```text
//! DPRBG_PROPTEST_SEED=<failing-seed> DPRBG_PROPTEST_CASES=1 cargo test <name>
//! ```
//!
//! `DPRBG_PROPTEST_SEED` overrides the base seed of case 0 (subsequent
//! cases use `base + case_index`), and `DPRBG_PROPTEST_CASES` overrides
//! every test's case count.

use crate::core::{Rng, SeedableRng};
use crate::rngs::StdRng;

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, matching `proptest`'s default.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is redrawn, not failed.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build the failure variant (used by the `prop_assert*` macros).
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Value source for a `name: Type` parameter (implicit strategy).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self {
                <$t as $crate::dist::StandardUniform>::sample(rng)
            }
        }
    )*};
}

impl_arbitrary_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

/// Explicit strategy for a `name in <expr>` parameter.
///
/// Integer ranges are strategies; so is any `Vec` of strategies via
/// [`vec_of`]. `Strategy` is consumed per case, so implementors are
/// `Clone`d by the runner.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Value;
}

macro_rules! impl_strategy_range {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[inline]
            fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                use crate::dist::SampleRange;
                self.clone().sample(rng)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                use crate::dist::SampleRange;
                self.clone().sample(rng)
            }
        }
    )*};
}

impl_strategy_range!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

/// A strategy producing `Vec`s with lengths in `len` and elements from
/// `elem` — the analogue of `proptest::collection::vec`.
#[derive(Clone)]
pub struct VecStrategy<S: Strategy> {
    elem: S,
    len: std::ops::Range<usize>,
}

/// Build a [`VecStrategy`].
pub fn vec_of<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// FNV-1a, used to give every property its own default seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The driver behind `proptest!`: run `cfg.cases` cases of `property`,
/// panicking with a replay recipe on the first failure.
///
/// Each case's generator is `StdRng::seed_from_u64(base + case_index)`.
/// `prop_assume!` rejections redraw the case (with a budget of 16× the
/// case count) instead of failing it, matching `proptest`'s semantics.
pub fn run_cases<F>(name: &str, cfg: &ProptestConfig, mut property: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = match std::env::var("DPRBG_PROPTEST_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("DPRBG_PROPTEST_SEED is not a u64: {v:?}")),
        Err(_) => hash_name(name),
    };
    let cases = std::env::var("DPRBG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let reject_budget = cases.saturating_mul(16).max(256);
    let mut case_index = 0u64;
    while passed < cases {
        let seed = base.wrapping_add(case_index);
        case_index += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        match property(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "property `{name}`: prop_assume! rejected {rejected} cases \
                     (budget {reject_budget}); strategy is too narrow"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {} (seed {seed}): {msg}\n\
                     replay just this case with:\n  \
                     DPRBG_PROPTEST_SEED={seed} DPRBG_PROPTEST_CASES=1 cargo test {name}",
                    case_index - 1,
                );
            }
        }
    }
}

/// Define properties as `#[test]` functions over seeded random inputs.
///
/// See the [module docs](crate::proptest) for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::proptest::ProptestConfig = $cfg;
                $crate::proptest::run_cases(
                    stringify!($name),
                    &__cfg,
                    |__proptest_rng| {
                        $crate::__proptest_bind!(__proptest_rng, $($params)*);
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(<$crate::proptest::ProptestConfig as ::core::default::Default>::default())]
            $(
                $(#[$meta])*
                fn $name($($params)*) $body
            )*
        }
    };
}

/// Parameter binder for [`proptest!`]: `name: Type` draws via
/// [`Arbitrary`], `name in strategy` draws via [`Strategy`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident $(,)?) => {};
    ($rng:ident, $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        let $name: $ty = <$ty as $crate::proptest::Arbitrary>::arbitrary($rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
    ($rng:ident, $name:ident in $strategy:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::proptest::Strategy::generate(&$strategy, $rng);
        $crate::__proptest_bind!($rng $(, $($rest)*)?);
    };
}

/// `assert!` that reports the failing property seed instead of panicking
/// mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::proptest::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), lhs
        );
    }};
}

/// Filter the current case: a false condition redraws instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::proptest::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::RngExt;

    proptest! {
        #[test]
        fn addition_commutes(a: u32, b: u32) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn range_strategy_in_bounds(x in 3usize..9, y in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn assume_redraws(n: u64) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn configured_case_count(seed: u64) {
            // Exercises the config path; the body draws from the per-case rng.
            let mut rng = crate::rngs::StdRng::seed_from_u64(seed);
            let v: bool = rng.random();
            prop_assert!(v || !v);
        }
    }

    #[test]
    fn failing_property_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            super::run_cases(
                "always_fails",
                &super::ProptestConfig::with_cases(5),
                |_| Err(super::TestCaseError::Fail("boom".into())),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("DPRBG_PROPTEST_SEED="), "message: {msg}");
        assert!(msg.contains("boom"), "message: {msg}");
    }

    #[test]
    fn narrow_assume_exhausts_budget() {
        let err = std::panic::catch_unwind(|| {
            super::run_cases(
                "always_rejects",
                &super::ProptestConfig::with_cases(4),
                |_| Err(super::TestCaseError::Reject),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("too narrow"), "message: {msg}");
    }

    #[test]
    fn vec_strategy_generates_in_spec() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(8);
        let strat = super::vec_of(0u32..10, 2..5);
        for _ in 0..50 {
            let v = super::Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }
}
