//! An in-tree, seed-deterministic property-testing harness with a
//! `proptest`-compatible macro surface.
//!
//! Supports the subset of `proptest` the workspace uses:
//!
//! - `proptest! { #[test] fn name(a: u64, x in 0usize..8) { .. } }`
//! - an optional leading `#![proptest_config(ProptestConfig::with_cases(N))]`
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`
//! - bisection shrinking: on failure the inputs are greedily minimized
//!   before the panic is reported
//!
//! Each case runs from its own [`StdRng`] seed derived deterministically
//! from a per-test base. On failure the runner re-checks smaller candidate
//! inputs (integers bisect toward the range start or zero, `Vec`s halve
//! toward their minimum length and shrink element-wise) and reports both
//! the minimal failing input and the environment variables that replay
//! the original, unshrunk case:
//!
//! ```text
//! DPRBG_PROPTEST_SEED=<failing-seed> DPRBG_PROPTEST_CASES=1 cargo test <name>
//! ```
//!
//! `DPRBG_PROPTEST_SEED` overrides the base seed of case 0 (subsequent
//! cases use `base + case_index`), and `DPRBG_PROPTEST_CASES` overrides
//! every test's case count.

use crate::core::{Rng, SeedableRng};
use crate::rngs::StdRng;

/// Per-block configuration, mirroring `proptest::test_runner::Config`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, matching `proptest`'s default.
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the inputs; the case is redrawn, not failed.
    Reject,
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    /// Build the failure variant (used by the `prop_assert*` macros).
    pub fn fail(msg: String) -> Self {
        TestCaseError::Fail(msg)
    }
}

/// Value source for a `name: Type` parameter (implicit strategy).
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_arbitrary_standard {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[inline]
            fn arbitrary<R: Rng + ?Sized>(rng: &mut R) -> Self {
                <$t as $crate::dist::StandardUniform>::sample(rng)
            }
        }
    )*};
}

impl_arbitrary_standard!(
    u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64
);

/// Candidate simpler values for a failing input, biased toward the type's
/// origin (zero / `false`). An empty list means the value is already
/// minimal. Drives shrinking for `name: Type` parameters via [`any`].
pub trait Shrink: Sized {
    /// Strictly "simpler" candidates, most aggressive first.
    fn shrink(&self) -> Vec<Self> {
        Vec::new()
    }
}

macro_rules! impl_shrink_unsigned {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                if v / 2 != 0 {
                    out.push(v / 2);
                }
                if v - 1 != 0 && v - 1 != v / 2 {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}

impl_shrink_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_shrink_signed {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0 {
                    return Vec::new();
                }
                let mut out = vec![0];
                let half = v / 2; // rounds toward zero for both signs
                if half != 0 {
                    out.push(half);
                }
                let step = if v > 0 { v - 1 } else { v + 1 };
                if step != 0 && step != half {
                    out.push(step);
                }
                out
            }
        }
    )*};
}

impl_shrink_signed!(i8, i16, i32, i64, i128, isize);

impl Shrink for bool {
    fn shrink(&self) -> Vec<Self> {
        if *self {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

macro_rules! impl_shrink_float {
    ($($t:ty),*) => {$(
        impl Shrink for $t {
            fn shrink(&self) -> Vec<Self> {
                let v = *self;
                if v == 0.0 {
                    return Vec::new();
                }
                if !v.is_finite() {
                    return vec![0.0];
                }
                vec![0.0, v / 2.0]
            }
        }
    )*};
}

impl_shrink_float!(f32, f64);

/// Explicit strategy for a `name in <expr>` parameter.
///
/// Integer ranges are strategies; so is any `Vec` of strategies via
/// [`vec_of`]. `Strategy` is consumed per case, so implementors are
/// `Clone`d by the runner.
pub trait Strategy: Clone {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Value;

    /// Candidate simpler values for `v`, all of which must still satisfy
    /// the strategy's invariants (e.g. stay inside the range). Empty means
    /// `v` is minimal; the default performs no shrinking.
    fn shrink(&self, _v: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

macro_rules! impl_strategy_range {
    ($($t:ty => $mid:expr),* $(,)?) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[inline]
            fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                use crate::dist::SampleRange;
                self.clone().sample(rng)
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                let (lo, v) = (self.start, *v);
                if v <= lo {
                    return Vec::new();
                }
                let mid: $t = ($mid)(lo, v);
                let mut out = vec![lo];
                if mid > lo && mid < v {
                    out.push(mid);
                }
                if v - 1 > lo && v - 1 != mid {
                    out.push(v - 1);
                }
                out
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            #[inline]
            fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> $t {
                use crate::dist::SampleRange;
                self.clone().sample(rng)
            }

            fn shrink(&self, v: &$t) -> Vec<$t> {
                let (lo, v) = (*self.start(), *v);
                if v <= lo {
                    return Vec::new();
                }
                let mid: $t = ($mid)(lo, v);
                let mut out = vec![lo];
                if mid > lo && mid < v {
                    out.push(mid);
                }
                if v - 1 > lo && v - 1 != mid {
                    out.push(v - 1);
                }
                out
            }
        }
    )*};
}

// Ranges shrink toward their start: the midpoint between `lo` and the
// failing value bisects, `v - 1` handles the final linear steps. Unsigned
// arithmetic cannot overflow (`v >= lo`); signed types widen through i128.
impl_strategy_range!(
    u8 => |lo, v| lo + (v - lo) / 2,
    u16 => |lo, v| lo + (v - lo) / 2,
    u32 => |lo, v| lo + (v - lo) / 2,
    u64 => |lo, v| lo + (v - lo) / 2,
    u128 => |lo, v| lo + (v - lo) / 2,
    usize => |lo, v| lo + (v - lo) / 2,
    i8 => |lo, v| (i128::from(lo) + (i128::from(v) - i128::from(lo)) / 2) as i8,
    i16 => |lo, v| (i128::from(lo) + (i128::from(v) - i128::from(lo)) / 2) as i16,
    i32 => |lo, v| (i128::from(lo) + (i128::from(v) - i128::from(lo)) / 2) as i32,
    i64 => |lo, v| (i128::from(lo) + (i128::from(v) - i128::from(lo)) / 2) as i64,
    isize => |lo, v| (lo as i128 + (v as i128 - lo as i128) / 2) as isize,
);

/// The [`Strategy`] behind `name: Type` parameters: generates via
/// [`Arbitrary`], shrinks via [`Shrink`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T> Clone for AnyStrategy<T> {
    fn clone(&self) -> Self {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }
}

/// Build the implicit whole-domain strategy for `T`.
pub fn any<T: Arbitrary + Shrink>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

impl<T: Arbitrary + Shrink> Strategy for AnyStrategy<T> {
    type Value = T;

    #[inline]
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> T {
        T::arbitrary(rng)
    }

    fn shrink(&self, v: &T) -> Vec<T> {
        Shrink::shrink(v)
    }
}

/// A strategy producing `Vec`s with lengths in `len` and elements from
/// `elem` — the analogue of `proptest::collection::vec`.
#[derive(Clone)]
pub struct VecStrategy<S: Strategy> {
    elem: S,
    len: std::ops::Range<usize>,
}

/// Build a [`VecStrategy`].
pub fn vec_of<S: Strategy>(elem: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
    VecStrategy { elem, len }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Clone,
{
    type Value = Vec<S::Value>;

    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<S::Value> {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, v: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
        let mut out = Vec::new();
        let min = self.len.start;
        // Structural shrinks first: halve the length toward the minimum,
        // then drop a single trailing element.
        if v.len() > min {
            let half = min + (v.len() - min) / 2;
            out.push(v[..half].to_vec());
            if v.len() - 1 != half {
                out.push(v[..v.len() - 1].to_vec());
            }
        }
        // Element-wise shrinks, one position at a time.
        for (i, x) in v.iter().enumerate() {
            for cand in self.elem.shrink(x) {
                let mut next = v.clone();
                next[i] = cand;
                out.push(next);
            }
        }
        out
    }
}

/// A fixed tuple of [`Strategy`]s, generated and shrunk together — the
/// input shape of [`run_cases_shrink`]. Shrinking proposes candidates that
/// change exactly one tuple position at a time.
pub trait StrategyTuple: Clone {
    /// The generated tuple of values.
    type Values: Clone + std::fmt::Debug;

    /// Draw one tuple of values, one strategy at a time, in order.
    fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Values;

    /// Candidate simpler tuples, each differing from `values` in exactly
    /// one position.
    fn shrink(&self, values: &Self::Values) -> Vec<Self::Values>;
}

impl StrategyTuple for () {
    type Values = ();

    fn generate<R: Rng + ?Sized>(&self, _rng: &mut R) -> Self::Values {}

    fn shrink(&self, _values: &Self::Values) -> Vec<Self::Values> {
        Vec::new()
    }
}

macro_rules! impl_strategy_tuple {
    ($(($($s:ident $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> StrategyTuple for ($($s,)+)
        where
            $($s::Value: Clone + std::fmt::Debug,)+
        {
            type Values = ($($s::Value,)+);

            fn generate<R: Rng + ?Sized>(&self, rng: &mut R) -> Self::Values {
                ($(self.$idx.generate(rng),)+)
            }

            fn shrink(&self, values: &Self::Values) -> Vec<Self::Values> {
                let mut out = Vec::new();
                $(
                    for cand in self.$idx.shrink(&values.$idx) {
                        let mut next = values.clone();
                        next.$idx = cand;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )+};
}

impl_strategy_tuple!(
    (S0 0),
    (S0 0, S1 1),
    (S0 0, S1 1, S2 2),
    (S0 0, S1 1, S2 2, S3 3),
    (S0 0, S1 1, S2 2, S3 3, S4 4),
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5),
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6),
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5, S6 6, S7 7),
);

/// FNV-1a, used to give every property its own default seed stream.
fn hash_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn base_seed(name: &str) -> u64 {
    match std::env::var("DPRBG_PROPTEST_SEED") {
        Ok(v) => v
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("DPRBG_PROPTEST_SEED is not a u64: {v:?}")),
        Err(_) => hash_name(name),
    }
}

fn case_count(cfg: &ProptestConfig) -> u32 {
    std::env::var("DPRBG_PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(cfg.cases)
}

/// The rng-level driver: run `cfg.cases` cases of `property`, panicking
/// with a replay recipe on the first failure. No shrinking — the property
/// draws directly from the per-case rng, so the runner has no value to
/// minimize. The `proptest!` macro uses [`run_cases_shrink`] instead.
///
/// Each case's generator is `StdRng::seed_from_u64(base + case_index)`.
/// `prop_assume!` rejections redraw the case (with a budget of 16× the
/// case count) instead of failing it, matching `proptest`'s semantics.
pub fn run_cases<F>(name: &str, cfg: &ProptestConfig, mut property: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    let base = base_seed(name);
    let cases = case_count(cfg);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let reject_budget = cases.saturating_mul(16).max(256);
    let mut case_index = 0u64;
    while passed < cases {
        let seed = base.wrapping_add(case_index);
        case_index += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        match property(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "property `{name}`: prop_assume! rejected {rejected} cases \
                     (budget {reject_budget}); strategy is too narrow"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property `{name}` failed at case {} (seed {seed}): {msg}\n\
                     replay just this case with:\n  \
                     DPRBG_PROPTEST_SEED={seed} DPRBG_PROPTEST_CASES=1 cargo test {name}",
                    case_index - 1,
                );
            }
        }
    }
}

/// Total extra property evaluations a single failure may spend minimizing
/// its input before reporting.
const SHRINK_BUDGET: usize = 1024;

/// Greedy bisection shrink: repeatedly adopt the first candidate that
/// still fails, restarting candidate generation from the improved value,
/// until no candidate fails or the budget runs out.
fn shrink_failure<S, C>(
    strategies: &S,
    mut values: S::Values,
    mut msg: String,
    check: &mut C,
) -> (S::Values, String, usize)
where
    S: StrategyTuple,
    C: FnMut(&S::Values) -> Result<(), TestCaseError>,
{
    let mut budget = SHRINK_BUDGET;
    let mut steps = 0usize;
    'outer: loop {
        for cand in strategies.shrink(&values) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            // A passing or rejected candidate is simply not adopted.
            if let Err(TestCaseError::Fail(m)) = check(&cand) {
                values = cand;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (values, msg, steps)
}

/// The driver behind `proptest!`: like [`run_cases`], but the runner owns
/// value generation (via a [`StrategyTuple`]), so a failing case is
/// bisection-shrunk to a minimal failing input before panicking.
///
/// The replay recipe in the panic reproduces the *original* (unshrunk)
/// case; the minimal input is printed alongside it.
pub fn run_cases_shrink<S, C>(name: &str, cfg: &ProptestConfig, strategies: S, mut check: C)
where
    S: StrategyTuple,
    C: FnMut(&S::Values) -> Result<(), TestCaseError>,
{
    let base = base_seed(name);
    let cases = case_count(cfg);

    let mut passed = 0u32;
    let mut rejected = 0u32;
    let reject_budget = cases.saturating_mul(16).max(256);
    let mut case_index = 0u64;
    while passed < cases {
        let seed = base.wrapping_add(case_index);
        case_index += 1;
        let mut rng = StdRng::seed_from_u64(seed);
        let values = strategies.generate(&mut rng);
        match check(&values) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= reject_budget,
                    "property `{name}`: prop_assume! rejected {rejected} cases \
                     (budget {reject_budget}); strategy is too narrow"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                let (min_values, min_msg, steps) =
                    shrink_failure(&strategies, values, msg, &mut check);
                panic!(
                    "property `{name}` failed at case {} (seed {seed}): {min_msg}\n\
                     minimal failing input (after {steps} shrink steps): {min_values:?}\n\
                     replay the original case with:\n  \
                     DPRBG_PROPTEST_SEED={seed} DPRBG_PROPTEST_CASES=1 cargo test {name}",
                    case_index - 1,
                );
            }
        }
    }
}

/// Define properties as `#[test]` functions over seeded random inputs.
///
/// See the [module docs](mod@crate::proptest) for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::proptest::ProptestConfig = $cfg;
                let __strategies = $crate::__proptest_strategies!([] $($params)*);
                $crate::proptest::run_cases_shrink(
                    stringify!($name),
                    &__cfg,
                    __strategies,
                    |__proptest_vals| {
                        $crate::__proptest_destructure!(__proptest_vals, [] $($params)*);
                        $body
                        ::core::result::Result::Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($params:tt)*) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config(<$crate::proptest::ProptestConfig as ::core::default::Default>::default())]
            $(
                $(#[$meta])*
                fn $name($($params)*) $body
            )*
        }
    };
}

/// Strategy collector for [`proptest!`]: folds the parameter list into a
/// tuple of strategies. `name: Type` becomes [`any::<Type>()`](any),
/// `name in strategy` passes the strategy through.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_strategies {
    ([$($acc:expr,)*]) => {
        ($($acc,)*)
    };
    ([$($acc:expr,)*] $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        $crate::__proptest_strategies!([$($acc,)* $crate::proptest::any::<$ty>(),] $($($rest)*)?)
    };
    ([$($acc:expr,)*] $name:ident in $strategy:expr $(, $($rest:tt)*)?) => {
        $crate::__proptest_strategies!([$($acc,)* $strategy,] $($($rest)*)?)
    };
}

/// Pattern collector for [`proptest!`]: folds the parameter list into one
/// tuple destructuring of the generated values reference.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_destructure {
    ($vals:ident, [$($bound:ident,)*]) => {
        let ($($bound,)*) = ::core::clone::Clone::clone($vals);
    };
    ($vals:ident, [$($bound:ident,)*] $name:ident : $ty:ty $(, $($rest:tt)*)?) => {
        $crate::__proptest_destructure!($vals, [$($bound,)* $name,] $($($rest)*)?)
    };
    ($vals:ident, [$($bound:ident,)*] $name:ident in $strategy:expr $(, $($rest:tt)*)?) => {
        $crate::__proptest_destructure!($vals, [$($bound,)* $name,] $($($rest)*)?)
    };
}

/// `assert!` that reports the failing property seed instead of panicking
/// mid-case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::proptest::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` for properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($lhs), stringify!($rhs), lhs, rhs
        );
    }};
}

/// `assert_ne!` for properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($lhs), stringify!($rhs), lhs
        );
    }};
}

/// Filter the current case: a false condition redraws instead of failing.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::proptest::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::RngExt;

    proptest! {
        #[test]
        fn addition_commutes(a: u32, b: u32) {
            prop_assert_eq!(a as u64 + b as u64, b as u64 + a as u64);
        }

        #[test]
        fn range_strategy_in_bounds(x in 3usize..9, y in 1u64..=4) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1..=4).contains(&y));
        }

        #[test]
        fn assume_redraws(n: u64) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn vec_params_bind(v in vec_of(0u32..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn configured_case_count(seed: u64) {
            // Exercises the config path; the body draws from the per-case rng.
            let mut rng = crate::rngs::StdRng::seed_from_u64(seed);
            let v: bool = rng.random();
            prop_assert!(v || !v);
        }
    }

    #[test]
    fn failing_property_reports_seed() {
        let err = std::panic::catch_unwind(|| {
            super::run_cases(
                "always_fails",
                &super::ProptestConfig::with_cases(5),
                |_| Err(super::TestCaseError::Fail("boom".into())),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("DPRBG_PROPTEST_SEED="), "message: {msg}");
        assert!(msg.contains("boom"), "message: {msg}");
    }

    #[test]
    fn narrow_assume_exhausts_budget() {
        let err = std::panic::catch_unwind(|| {
            super::run_cases(
                "always_rejects",
                &super::ProptestConfig::with_cases(4),
                |_| Err(super::TestCaseError::Reject),
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("too narrow"), "message: {msg}");
    }

    #[test]
    fn vec_strategy_generates_in_spec() {
        let mut rng = crate::rngs::StdRng::seed_from_u64(8);
        let strat = super::vec_of(0u32..10, 2..5);
        for _ in 0..50 {
            let v = super::Strategy::generate(&strat, &mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn range_shrink_bisects_toward_start() {
        use super::Strategy;
        let strat = 3usize..100;
        assert!(strat.shrink(&3).is_empty(), "range start is minimal");
        let cands = strat.shrink(&80);
        assert!(cands.contains(&3), "must offer the range start");
        assert!(cands.contains(&41), "must offer the midpoint toward start");
        assert!(cands.contains(&79), "must offer the linear step");
        // Signed ranges stay in bounds even around extreme values.
        let signed = (i64::MIN..i64::MAX).shrink(&(i64::MAX - 1));
        assert!(signed.iter().all(|&c| c < i64::MAX - 1 && c >= i64::MIN));
    }

    #[test]
    fn int_shrink_targets_zero() {
        use super::Shrink;
        assert!(0u32.shrink().is_empty());
        assert_eq!(1u32.shrink(), vec![0]);
        assert_eq!(40u32.shrink(), vec![0, 20, 39]);
        assert_eq!((-40i32).shrink(), vec![0, -20, -39]);
        assert_eq!(true.shrink(), vec![false]);
        assert!(false.shrink().is_empty());
    }

    #[test]
    fn tuple_shrink_changes_one_position() {
        use super::StrategyTuple;
        let strats = (0u32..10, 0u32..10);
        let cands = strats.shrink(&(4, 7));
        assert!(!cands.is_empty());
        for (a, b) in cands {
            assert!(
                (a, b) != (4, 7) && (a == 4 || b == 7),
                "candidate ({a}, {b}) must differ in exactly one position"
            );
        }
    }

    #[test]
    fn shrinking_minimizes_range_failure() {
        let err = std::panic::catch_unwind(|| {
            super::run_cases_shrink(
                "shrink_to_threshold",
                &super::ProptestConfig::with_cases(64),
                (0u64..1000,),
                |&(x,)| {
                    if x >= 10 {
                        Err(super::TestCaseError::Fail(format!("x = {x}")))
                    } else {
                        Ok(())
                    }
                },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("minimal failing input") && msg.contains("(10,)"),
            "expected the threshold value 10, got: {msg}"
        );
        assert!(msg.contains("DPRBG_PROPTEST_SEED="), "message: {msg}");
    }

    #[test]
    fn shrinking_minimizes_vec_failure() {
        let err = std::panic::catch_unwind(|| {
            super::run_cases_shrink(
                "shrink_to_shortest_vec",
                &super::ProptestConfig::with_cases(64),
                (super::vec_of(0u32..100, 0..8),),
                |(v,)| {
                    if v.len() >= 3 {
                        Err(super::TestCaseError::Fail(format!("len = {}", v.len())))
                    } else {
                        Ok(())
                    }
                },
            );
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(
            msg.contains("([0, 0, 0],)"),
            "expected the 3-element all-zero vec, got: {msg}"
        );
    }
}
