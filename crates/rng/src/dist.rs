//! Sampling distributions: full-range values ([`StandardUniform`]) and
//! uniform ranges ([`SampleRange`] for `a..b` / `a..=b`).
//!
//! Range sampling uses Lemire's multiply-shift with rejection, so it is
//! exactly uniform and — crucially for the reproduction — consumes a
//! deterministic prefix of the generator's word stream for a given
//! (seed, call-sequence) pair.

use std::ops::{Range, RangeInclusive};

use crate::core::Rng;

/// Types samplable uniformly over their whole domain.
pub trait StandardUniform: Sized {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_32 {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u32() as $t
            }
        }
    )*};
}

macro_rules! impl_standard_64 {
    ($($t:ty),*) => {$(
        impl StandardUniform for $t {
            #[inline]
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_32!(u8, i8, u16, i16, u32, i32);
impl_standard_64!(u64, i64, usize, isize);

impl StandardUniform for u128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        let lo = rng.next_u64() as u128;
        let hi = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl StandardUniform for i128 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl StandardUniform for bool {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl StandardUniform for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: StandardUniform, const N: usize> StandardUniform for [T; N] {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        core::array::from_fn(|_| T::sample(rng))
    }
}

/// Unbiased uniform `u64` in `[0, bound)` via Lemire multiply-shift.
///
/// # Panics
///
/// Panics if `bound == 0`.
#[inline]
pub(crate) fn sample_below_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    assert!(bound > 0, "empty sampling range");
    let mut m = rng.next_u64() as u128 * bound as u128;
    if (m as u64) < bound {
        // Rejection threshold 2^64 mod bound, computed without u128 division.
        let t = bound.wrapping_neg() % bound;
        while (m as u64) < t {
            m = rng.next_u64() as u128 * bound as u128;
        }
    }
    (m >> 64) as u64
}

/// Unbiased uniform `u128` in `[0, bound)` (widening rejection).
#[inline]
pub(crate) fn sample_below_u128<R: Rng + ?Sized>(rng: &mut R, bound: u128) -> u128 {
    assert!(bound > 0, "empty sampling range");
    if bound <= u64::MAX as u128 {
        return sample_below_u64(rng, bound as u64) as u128;
    }
    // Plain rejection from a power-of-two envelope.
    let mask = u128::MAX >> (bound - 1).leading_zeros();
    loop {
        let x = u128::sample(rng) & mask;
        if x < bound {
            return x;
        }
    }
}

/// A range argument accepted by `RngExt::random_range`.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty, $below:ident);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as $wide;
                self.start.wrapping_add($below(rng, span) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as $wide).wrapping_sub(start as $wide).wrapping_add(1);
                if span == 0 {
                    // Full domain of $t.
                    return <$t as StandardUniform>::sample(rng);
                }
                start.wrapping_add($below(rng, span) as $t)
            }
        }
    )*};
}

impl_sample_range! {
    u8 => u64, sample_below_u64;
    u16 => u64, sample_below_u64;
    u32 => u64, sample_below_u64;
    u64 => u64, sample_below_u64;
    usize => u64, sample_below_u64;
    u128 => u128, sample_below_u128;
}

macro_rules! impl_sample_range_signed {
    ($($t:ty => $u:ty);* $(;)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add(sample_below_u64(rng, span as u64) as $t)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in random_range");
                let span = (end as $u).wrapping_sub(start as $u).wrapping_add(1);
                if span == 0 {
                    return <$t as StandardUniform>::sample(rng);
                }
                start.wrapping_add(sample_below_u64(rng, span as u64) as $t)
            }
        }
    )*};
}

impl_sample_range_signed! {
    i8 => u8;
    i16 => u16;
    i32 => u32;
    i64 => u64;
    isize => usize;
}

#[cfg(test)]
mod tests {
    use crate::core::{RngExt, SeedableRng};
    use crate::rngs::StdRng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..2000 {
            let x = rng.random_range(10u64..17);
            assert!((10..17).contains(&x));
            let y = rng.random_range(3usize..=9);
            assert!((3..=9).contains(&y));
            let z = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn all_residues_hit() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut seen = [false; 7];
        for _ in 0..500 {
            seen[rng.random_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn single_element_range() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.random_range(4u32..5), 4);
        assert_eq!(rng.random_range(4u32..=4), 4);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(5u64..5);
    }

    #[test]
    fn full_u64_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = rng.random_range(0u64..=u64::MAX);
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }
}
