//! Named generators ([`StdRng`]), mirroring `rand::rngs`.

use crate::chacha::ChaCha;
use crate::core::{Rng, SeedableRng};

/// The workspace's standard deterministic generator: ChaCha12.
///
/// Same core as the `rand` crate's `StdRng`, so it keeps `StdRng`'s
/// statistical quality and (crypto-grade) unpredictability margin while
/// being fully in-tree. Streams are stable across platforms and releases:
/// a seed printed in a test failure or an `EXPERIMENTS.md` table will
/// reproduce the identical transcript anywhere.
///
/// # Examples
///
/// ```
/// use dprbg_rng::rngs::StdRng;
/// use dprbg_rng::{RngExt, SeedableRng};
///
/// let mut a = StdRng::seed_from_u64(42);
/// let mut b = StdRng::seed_from_u64(42);
/// assert_eq!(a.random::<u64>(), b.random::<u64>());
/// ```
#[derive(Clone, Debug)]
pub struct StdRng(ChaCha<6>);

impl SeedableRng for StdRng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        StdRng(ChaCha::new(seed))
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        self.0.next_word()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(1996);
        let mut b = StdRng::seed_from_u64(1996);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn nearby_seeds_decorrelate() {
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn clone_forks_the_stream_position() {
        let mut a = StdRng::seed_from_u64(7);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn output_is_roughly_balanced() {
        // Sanity: popcount of 10_000 words ≈ half the bits.
        let mut rng = StdRng::seed_from_u64(123);
        let ones: u64 = (0..10_000).map(|_| rng.next_u64().count_ones() as u64).sum();
        let total = 64 * 10_000u64;
        assert!((ones as f64) > 0.49 * total as f64);
        assert!((ones as f64) < 0.51 * total as f64);
    }
}
