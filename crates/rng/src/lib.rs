#![forbid(unsafe_code)]
#![warn(missing_docs)]

//! # dprbg-rng — hermetic deterministic randomness for the workspace
//!
//! An in-tree replacement for the external `rand` stack, providing exactly
//! the surface the PODC '96 reproduction uses, with two extra guarantees
//! the external crates do not make:
//!
//! 1. **Hermetic**: no registry access, no build scripts, no platform
//!    entropy. `cargo build --offline` always works.
//! 2. **Bit-reproducible**: every generator is seeded; the same seed yields
//!    the same stream on every platform and in every release, so the
//!    paper's error-probability and operation-count experiments (Lemmas
//!    1–8, §1.4) replay exactly from the seeds printed in reports.
//!
//! The API mirrors `rand` 0.10 ([`rngs::StdRng`], [`SeedableRng`], [`Rng`],
//! [`RngExt`], [`seq::SliceRandom`], [`rng()`]) so call sites read
//! identically; only the crate path differs. [`rngs::StdRng`] is ChaCha12 —
//! the same core the external `StdRng` uses.
//!
//! The crate also hosts the in-tree property-testing harness (the
//! [`proptest!`](crate::proptest!) macro; see [`proptest`](mod@crate::proptest)
//! and [`prelude`]) used across `field`, `poly` and `protocols`.
//!
//! ```
//! use dprbg_rng::rngs::StdRng;
//! use dprbg_rng::{RngExt, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1996);
//! let share: u64 = rng.random_range(0..dprbg_rng::SMOKE_MODULUS);
//! assert!(share < dprbg_rng::SMOKE_MODULUS);
//! ```

mod chacha;
mod core;
pub mod dist;
pub mod proptest;
pub mod seq;
mod std_rng;

pub use crate::core::{Rng, RngExt, SeedableRng};
pub use crate::dist::{SampleRange, StandardUniform};

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    pub use crate::std_rng::StdRng;
}

/// Everything the property-test modules need: the `proptest!` macro family
/// plus its config and strategy types.
pub mod prelude {
    pub use crate::proptest::{
        any, vec_of, AnyStrategy, Arbitrary, ProptestConfig, Shrink, Strategy, StrategyTuple,
    };
    pub use crate::rngs::StdRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Rng, RngExt,
        SeedableRng,
    };
}

/// A small prime used by the crate-level doctest.
#[doc(hidden)]
pub const SMOKE_MODULUS: u64 = 65_537;

use std::cell::RefCell;

thread_local! {
    static THREAD_RNG: RefCell<rngs::StdRng> = RefCell::new(seed_thread_rng());
}

fn seed_thread_rng() -> rngs::StdRng {
    // Deterministic by default (hermetic builds must not read platform
    // entropy); override with DPRBG_SEED for ad-hoc exploration.
    let seed = std::env::var("DPRBG_SEED")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(0xb6ab_1996_0d15_ea5e); // "BGR-1996" house seed
    rngs::StdRng::seed_from_u64(seed)
}

/// Handle to a thread-local deterministic generator (mirrors `rand::rng()`).
///
/// Unlike `rand`'s, this one is **seeded, not entropy-backed**: it starts
/// from a fixed default (or `DPRBG_SEED` if set) so that even "don't care"
/// randomness stays reproducible. Protocol code should still prefer an
/// explicit `StdRng::seed_from_u64`.
pub fn rng() -> ThreadRng {
    ThreadRng { _private: () }
}

/// The type returned by [`rng()`].
pub struct ThreadRng {
    _private: (),
}

impl Rng for ThreadRng {
    fn next_u32(&mut self) -> u32 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u32())
    }
    fn next_u64(&mut self) -> u64 {
        THREAD_RNG.with(|r| r.borrow_mut().next_u64())
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        THREAD_RNG.with(|r| r.borrow_mut().fill_bytes(dest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_rng_draws() {
        let mut r = rng();
        let a: u64 = r.random();
        let b: u64 = r.random();
        assert_ne!(a, b);
    }
}
